"""Bench: Figure 6 — robustness to failure intensity (f_gen and p).

Reproduces both sweeps on a road-like and a scale-free dataset.
The paper's decisive observation — DISO- degrades sharply with the
random failure rate ``p`` while DISO stays flat — is asserted.
"""

from __future__ import annotations

from repro.experiments.figure6 import format_figure6, run_figure6

from bench_util import SEED, write_result


def test_figure6_road(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure6(
            dataset="NY",
            scale=0.5,
            f_gen_values=(0, 5, 10),
            # The sweep reaches p = 4% so the DISO- degradation is well
            # above wall-clock noise at this graph scale (at the paper's
            # edge counts, p = 0.05% already yields tens of failures).
            p_values=(0.0, 0.002, 0.01, 0.04),
            query_count=10,
            seed=SEED,
            methods=("DISO-", "DISO", "ADISO", "ADISO-P", "A*", "DI"),
        ),
        rounds=1,
        iterations=1,
    )
    write_result("figure6_road", format_figure6(data))
    diso_minus = data["query_ms_vs_p"]["DISO-"]
    diso = data["query_ms_vs_p"]["DISO"]
    # The paper's Figure 6(b) shape: at the top of the sweep DISO-'s
    # BFS-detect + from-scratch recompute is clearly behind DISO's
    # index-based handling, and DISO- got worse as p grew.
    assert diso_minus[-1] > diso[-1]
    assert diso_minus[-1] > diso_minus[0]


def test_figure6_social(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure6(
            dataset="POKE",
            scale=0.4,
            f_gen_values=(0, 5, 10),
            p_values=(0.0, 0.0005, 0.002),
            query_count=8,
            seed=SEED,
            methods=("DISO-", "DISO", "DISO-S", "DI"),
        ),
        rounds=1,
        iterations=1,
    )
    write_result("figure6_social", format_figure6(data))
    # DISO-S (sparsified) is at least competitive with DISO on the
    # dense scale-free dataset — the reason the technique exists.
    diso_s = sum(data["query_ms_vs_fgen"]["DISO-S"])
    diso = sum(data["query_ms_vs_fgen"]["DISO"])
    assert diso_s <= diso * 1.5
