"""Unit tests for the DiGraph representation."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    NegativeWeightError,
    NodeNotFoundError,
)
from repro.graph.digraph import DiGraph


class TestNodes:
    def test_add_node(self):
        g = DiGraph()
        g.add_node(1)
        assert g.has_node(1)
        assert g.number_of_nodes() == 1

    def test_add_node_idempotent(self):
        g = DiGraph([(1, 2, 1.0)])
        g.add_node(1)
        assert g.number_of_edges() == 1

    def test_add_nodes_bulk(self):
        g = DiGraph()
        g.add_nodes(range(5))
        assert g.number_of_nodes() == 5

    def test_remove_node_drops_incident_edges(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
        g.remove_node(1)
        assert not g.has_node(1)
        assert g.number_of_edges() == 0
        assert g.number_of_nodes() == 2

    def test_remove_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(9)

    def test_contains_and_iter(self):
        g = DiGraph([(0, 1, 1.0)])
        assert 0 in g
        assert 2 not in g
        assert sorted(g) == [0, 1]
        assert len(g) == 2


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge(3, 7, 2.5)
        assert g.has_node(3)
        assert g.has_node(7)
        assert g.weight(3, 7) == 2.5

    def test_edges_are_directed(self):
        g = DiGraph([(0, 1, 1.0)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_multi_edge_keeps_minimum(self):
        g = DiGraph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 2.0
        assert g.number_of_edges() == 1

    def test_negative_weight_rejected(self):
        g = DiGraph()
        with pytest.raises(NegativeWeightError):
            g.add_edge(0, 1, -0.5)

    def test_zero_weight_allowed(self):
        g = DiGraph([(0, 1, 0.0)])
        assert g.weight(0, 1) == 0.0

    def test_set_weight_overrides_upward(self):
        g = DiGraph([(0, 1, 1.0)])
        g.set_weight(0, 1, 4.0)
        assert g.weight(0, 1) == 4.0

    def test_set_weight_missing_edge_raises(self):
        g = DiGraph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(EdgeNotFoundError):
            g.set_weight(0, 1, 1.0)

    def test_remove_edge(self):
        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.number_of_edges() == 1

    def test_remove_missing_edge_raises(self):
        g = DiGraph([(0, 1, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 0)

    def test_weight_missing_edge_raises(self):
        g = DiGraph([(0, 1, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            g.weight(1, 0)

    def test_edges_iteration(self):
        triples = [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]
        g = DiGraph(triples)
        assert sorted(g.edges()) == sorted(triples)

    def test_edge_set(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 2.0)])
        assert g.edge_set() == {(0, 1), (1, 2)}


class TestNeighborhoods:
    def test_successors_and_predecessors(self):
        g = DiGraph([(0, 1, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
        assert g.successors(0) == {1: 1.0, 2: 2.0}
        assert g.predecessors(1) == {0: 1.0, 2: 3.0}

    def test_successors_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.successors(0)

    def test_degrees(self):
        g = DiGraph([(0, 1, 1.0), (2, 1, 1.0), (1, 3, 1.0)])
        assert g.in_degree(1) == 2
        assert g.out_degree(1) == 1
        assert g.degree(1) == 3


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph([(0, 1, 1.0)])
        clone = g.copy()
        clone.add_edge(1, 0, 2.0)
        assert not g.has_edge(1, 0)
        assert clone.has_edge(1, 0)

    def test_copy_preserves_isolated_nodes(self):
        g = DiGraph()
        g.add_node(5)
        assert g.copy().has_node(5)

    def test_reverse(self):
        g = DiGraph([(0, 1, 1.5), (1, 2, 2.5)])
        rev = g.reverse()
        assert rev.weight(1, 0) == 1.5
        assert rev.weight(2, 1) == 2.5
        assert not rev.has_edge(0, 1)

    def test_reverse_twice_is_identity(self):
        g = DiGraph([(0, 1, 1.0), (2, 1, 3.0)])
        assert g.reverse().reverse() == g

    def test_subgraph(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        sub = g.subgraph({0, 1})
        assert sub.has_edge(0, 1)
        assert not sub.has_node(2)
        assert sub.number_of_edges() == 1

    def test_subgraph_ignores_unknown_nodes(self):
        g = DiGraph([(0, 1, 1.0)])
        sub = g.subgraph({0, 1, 99})
        assert not sub.has_node(99)


class TestStatistics:
    def test_average_degree(self):
        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0)])
        assert g.average_degree() == 1.0

    def test_average_degree_empty(self):
        assert DiGraph().average_degree() == 0.0

    def test_max_degree(self):
        g = DiGraph([(0, 1, 1.0), (2, 1, 1.0), (1, 3, 1.0)])
        assert g.max_degree() == 3

    def test_total_weight(self):
        g = DiGraph([(0, 1, 1.5), (1, 2, 2.5)])
        assert g.total_weight() == pytest.approx(4.0)

    def test_repr(self):
        g = DiGraph([(0, 1, 1.0)])
        assert "nodes=2" in repr(g)
        assert "edges=1" in repr(g)


class TestEquality:
    def test_equal_graphs(self):
        a = DiGraph([(0, 1, 1.0)])
        b = DiGraph([(0, 1, 1.0)])
        assert a == b

    def test_weight_difference_breaks_equality(self):
        a = DiGraph([(0, 1, 1.0)])
        b = DiGraph([(0, 1, 2.0)])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert DiGraph() != 42
