"""Build worker process: compute per-landmark units, ship shard bytes.

Mirrors the serving worker (:mod:`repro.serving.worker`) but for
construction: each worker loads the read-only build container exactly
once (no pickled graphs cross the pipe — the container is validated,
versioned, and identical for every worker), then answers chunk
messages until told to stop.

Protocol (tuples over a ``multiprocessing.Pipe``):

* ``("ready", worker_id, {"pid", "load_seconds"})`` — sent once after
  the container is loaded.
* ``("chunk", chunk_id, [(kind, label), ...])`` → ``("result",
  chunk_id, worker_id, [(kind, label, shard_bytes), ...],
  busy_seconds)`` — one shard frame per unit, in request order.
* ``("crash",)`` → ``os._exit(13)`` — test hook, as in serving.
* ``("stop",)`` or pipe EOF — clean exit.
* any per-unit exception → ``("error", worker_id, message)`` and exit:
  unit computation is deterministic, so a retry on another worker
  would fail identically; the coordinator surfaces the error instead.

Unit kinds:

* tree units run :func:`landmark_tree_unit` on the *working* graph
  (the sparsified input for DISO-S, the input graph otherwise);
* landmark units run the forward/backward Dijkstra pair on the
  *original* graph (landmark tables always live on ``G``), returning
  dense rows over the container's sorted node order.
"""

from __future__ import annotations

import os
import time

from repro.build.graph_store import load_build_graph
from repro.build.shards import (
    LANDMARK_KIND,
    TREE_KIND,
    encode_landmark_shard,
    encode_tree_shard,
)
from repro.overlay.distance_graph import landmark_tree_unit
from repro.pathing.dijkstra import dijkstra, reverse_dijkstra


def compute_unit(
    kind: int,
    label: int,
    graph,
    build_graph,
    transit: frozenset[int],
    node_ids: list[int],
) -> bytes:
    """Compute one work unit and return its shard frame.

    Shared by pool workers and the coordinator's inline (``jobs=0``)
    path, so both produce byte-identical shards by construction.
    """
    if kind == TREE_KIND:
        tree, out_edges = landmark_tree_unit(build_graph, label, transit)
        return encode_tree_shard(label, tree, out_edges)
    if kind == LANDMARK_KIND:
        outbound, _ = dijkstra(graph, label)
        inbound = reverse_dijkstra(graph, label)
        return encode_landmark_shard(label, node_ids, outbound, inbound)
    raise ValueError(f"unknown unit kind {kind}")


def build_worker_main(container_path, conn, worker_id: int) -> None:
    """Entry point for one build worker process."""
    try:
        started = time.perf_counter()
        loaded = load_build_graph(container_path)
        transit = frozenset(loaded.transit)
        load_seconds = time.perf_counter() - started
    except BaseException as exc:  # noqa: BLE001 — must reach the parent
        try:
            conn.send(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # dsolint: disable=DSO403 -- coordinator pipe is gone; no channel left to report on
            pass
        return
    conn.send(
        ("ready", worker_id, {"pid": os.getpid(),
                              "load_seconds": load_seconds})
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "chunk":
                _, chunk_id, units = message
                tick = time.perf_counter()
                try:
                    shards = [
                        (
                            unit_kind,
                            label,
                            compute_unit(
                                unit_kind,
                                label,
                                loaded.graph,
                                loaded.build_graph,
                                transit,
                                loaded.node_ids,
                            ),
                        )
                        for unit_kind, label in units
                    ]
                except Exception as exc:  # noqa: BLE001
                    conn.send(
                        ("error", worker_id,
                         f"{type(exc).__name__}: {exc}")
                    )
                    return
                busy = time.perf_counter() - tick
                conn.send(("result", chunk_id, worker_id, shards, busy))
            elif kind == "crash":
                os._exit(13)
            elif kind == "stop":
                return
            # Unknown messages are ignored (forward compatibility).
    except (BrokenPipeError, OSError):
        return
