"""DSO3xx — float and sentinel comparison hazards.

Protocol v2 encodes a failed query's answer as NaN
(:data:`repro.serving.worker.QUERY_ERROR`).  NaN compares unequal to
everything *including itself*, so ``answer == QUERY_ERROR`` is always
``False`` — code that looks like an error check and never fires.  The
only correct tests are ``math.isnan`` or the sparse error list that
travels beside the answers.  The batched kernel moved the sentinel
into NumPy arrays, where the same bug wears two more disguises:
``np.equal(arr, np.nan)`` (the call form of the constant-False
comparison) and the ``x != x`` self-comparison idiom — semantically a
NaN test, but elementwise sentinel checks in this codebase must spell
it ``np.isnan`` so intent survives review.  Distances are sums of
float edge weights; comparing them to non-integral literals with
``==`` is the classic representability trap (``0.1 + 0.2 != 0.3``).
Infinity is exempt: ``float("inf")`` is exact and the codebase uses
``INFINITY`` equality as the canonical unreachability test.
"""

from __future__ import annotations

import ast
import math

from repro.analysis.rules import Rule

_NAN_NAMES = frozenset({"QUERY_ERROR"})


def _is_nan_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id in _NAN_NAMES:
        return True
    if isinstance(node, ast.Attribute):
        if node.attr in _NAN_NAMES:
            return True
        if node.attr == "nan":  # math.nan / np.nan
            return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "float"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower() in {"nan", "-nan", "+nan"}
        ):
            return True
    return False


def _is_inf_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id in {"INFINITY", "inf", "INF"}:
        return True
    if isinstance(node, ast.Attribute) and node.attr in {"inf", "infinity"}:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "float"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower().lstrip("+-") == "inf"
        ):
            return True
    return False


class NanSentinelComparisonRule(Rule):
    """DSO301: ``==``/``!=`` against NaN or the ``QUERY_ERROR``
    sentinel — the comparison is constant-False/True by IEEE-754 and
    the error check it implies never fires.  Use ``math.isnan`` (or
    read the per-query error channel).
    """

    rule_id = "DSO301"
    severity = "error"
    summary = "==/!= against NaN / QUERY_ERROR (always False/True)"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_nan_expr(left) or _is_nan_expr(right)
            ):
                self.report(
                    node,
                    "NaN never compares equal — this check cannot fire; "
                    "use math.isnan(...) or the error channel",
                )
                break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # The call forms of the same constant comparison:
        # ``np.equal(x, np.nan)`` / ``np.not_equal(x, QUERY_ERROR)``.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"equal", "not_equal"}
            and any(_is_nan_expr(arg) for arg in node.args)
        ):
            self.report(
                node,
                "elementwise comparison against NaN is constant — "
                "use np.isnan(...)",
            )
        self.generic_visit(node)


class FloatLiteralEqualityRule(Rule):
    """DSO302: ``==``/``!=`` against a non-integral float literal.

    Computed distances are accumulated floats; exact equality with a
    decimal literal like ``0.3`` holds only when the arithmetic
    happens to round identically.  Compare with ``math.isclose`` (or
    restructure to avoid the comparison).  Integral literals
    (``0.0``, ``1.0``) and infinity are exact and exempt.
    """

    rule_id = "DSO302"
    severity = "warning"
    summary = "==/!= against a non-integral float literal (use isclose)"

    @staticmethod
    def _is_fractional_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and not math.isnan(node.value)  # NaN literals are DSO301's
            and node.value not in (float("inf"), float("-inf"))
            and node.value != int(node.value)
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_inf_expr(left) or _is_inf_expr(right):
                continue
            if self._is_fractional_literal(left) or self._is_fractional_literal(
                right
            ):
                self.report(
                    node,
                    "exact equality with a fractional float literal; "
                    "use math.isclose(...) for computed values",
                )
                break
        self.generic_visit(node)


class SelfComparisonNanRule(Rule):
    """DSO303: ``x == x`` / ``x != x`` — the NaN test in disguise.

    Self-comparison is the folklore NaN check (``x != x`` is ``True``
    exactly when ``x`` is NaN), and on a NumPy array it silently
    builds an elementwise NaN mask.  Both spellings hide intent and
    read as typos; sentinel handling in this codebase must use
    ``math.isnan`` / ``np.isnan``.  Only side-effect-free operands
    (names, attribute and subscript chains) are flagged — a repeated
    call could legitimately differ between evaluations.
    """

    rule_id = "DSO303"
    severity = "error"
    summary = "x == x / x != x self-comparison (use math.isnan/np.isnan)"

    _PURE_NODES = (
        ast.Name,
        ast.Attribute,
        ast.Subscript,
        ast.Constant,
        ast.Tuple,
        ast.Slice,
        ast.expr_context,
    )

    @classmethod
    def _is_pure(cls, node: ast.expr) -> bool:
        return all(
            isinstance(sub, cls._PURE_NODES) for sub in ast.walk(node)
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if not (self._is_pure(left) and self._is_pure(right)):
                continue
            if ast.dump(left) == ast.dump(right):
                self.report(
                    node,
                    "self-comparison is a hidden NaN test; spell it "
                    "math.isnan(...) / np.isnan(...)",
                )
                break
        self.generic_visit(node)
