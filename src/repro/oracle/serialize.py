"""Index serialization: persist a preprocessed oracle to disk.

Preprocessing dominates oracle cost (one bounded Dijkstra per transit
node plus landmark Dijkstras), so a production deployment builds the
index once and ships it.  The format is a single JSON document holding
the graph, the transit set, the overlay with weights, every bounded
tree (parents + distances), and — for ADISO — the landmark tables.
The inverted tree index is *not* stored: it is derivable from the trees
in linear time and rebuilding it on load is cheaper than parsing it.

JSON is chosen over pickle deliberately: the file is
interpreter-version independent, diffable, and cannot execute code on
load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.exceptions import FormatError
from repro.graph.digraph import DiGraph
from repro.landmarks.base import LandmarkTable
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.overlay.bsp_tree import BoundedTreeStore
from repro.overlay.distance_graph import DistanceGraph
from repro.overlay.inverted_index import InvertedTreeIndex
from repro.pathing.spt import ShortestPathTree

FORMAT_VERSION = 1


def _graph_to_obj(graph: DiGraph) -> dict[str, Any]:
    return {
        "nodes": sorted(graph.nodes()),
        "edges": [[t, h, w] for t, h, w in sorted(graph.edges())],
    }


def _graph_from_obj(obj: dict[str, Any]) -> DiGraph:
    graph = DiGraph()
    graph.add_nodes(obj["nodes"])
    for tail, head, weight in obj["edges"]:
        graph.add_edge(tail, head, weight)
    return graph


def _tree_to_obj(tree: ShortestPathTree) -> dict[str, Any]:
    return {
        "root": tree.root,
        # parent[root] is None; JSON null round-trips fine.
        "entries": [
            [node, tree.parent[node], tree.dist[node]]
            for node in sorted(tree.dist)
        ],
    }


def _tree_from_obj(obj: dict[str, Any]) -> ShortestPathTree:
    tree = ShortestPathTree(obj["root"])
    # Attach in distance order so parents precede children.
    pending = sorted(obj["entries"], key=lambda entry: entry[2])
    for node, parent, distance in pending:
        if parent is None:
            continue
        tree.attach(node, parent, distance)
    return tree


def save_index(oracle: DISO, target: str | Path | TextIO) -> None:
    """Serialize ``oracle`` (DISO, DISO-B, or ADISO) to JSON.

    The approximate variants (DISO-S, ADISO-P) hold extra derived
    structures and original-graph references; persist their base
    parameters and rebuild instead.
    """
    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "oracle": type(oracle).__name__,
        "graph": _graph_to_obj(oracle.graph),
        "transit": sorted(oracle.transit),
        "overlay": _graph_to_obj(oracle.distance_graph.graph),
        "trees": [
            _tree_to_obj(oracle.trees.tree(root))
            for root in sorted(oracle.trees.roots())
        ],
        "preprocess_seconds": oracle.preprocess_seconds,
    }
    if isinstance(oracle, ADISO):
        document["landmarks"] = {
            "nodes": list(oracle.landmarks.landmarks),
            "outbound": [
                {str(k): v for k, v in table.items()}
                for table in oracle.landmarks._outbound
            ],
            "inbound": [
                {str(k): v for k, v in table.items()}
                for table in oracle.landmarks._inbound
            ],
        }

    close_after = False
    if isinstance(target, (str, Path)):
        handle: TextIO = open(target, "w", encoding="utf-8")
        close_after = True
    else:
        handle = target
    try:
        json.dump(document, handle)
    finally:
        if close_after:
            handle.close()


def load_index(source: str | Path | TextIO) -> DISO:
    """Load an oracle previously written by :func:`save_index`.

    Returns a fully functional oracle of the persisted class; the
    inverted tree index is rebuilt from the stored trees.

    Raises
    ------
    FormatError
        On version mismatch or an unknown oracle class name.
    """
    close_after = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", encoding="utf-8")
        close_after = True
    else:
        handle = source
    try:
        document = json.load(handle)
    finally:
        if close_after:
            handle.close()

    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise FormatError(
            f"unsupported index format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    class_name = document.get("oracle")
    from repro.oracle.diso_bi import DISOBidirectional

    classes = {
        "DISO": DISO,
        "DISOBidirectional": DISOBidirectional,
        "ADISO": ADISO,
    }
    oracle_cls = classes.get(class_name)
    if oracle_cls is None:
        raise FormatError(f"unknown oracle class {class_name!r}")

    graph = _graph_from_obj(document["graph"])
    transit = frozenset(document["transit"])
    overlay = DistanceGraph(
        graph=_graph_from_obj(document["overlay"]), transit=transit
    )
    trees = {
        obj["root"]: _tree_from_obj(obj) for obj in document["trees"]
    }

    oracle = oracle_cls.__new__(oracle_cls)
    # Rebuild the object without re-running preprocessing.
    DISO.__bases__[0].__init__(oracle, graph)  # DistanceSensitivityOracle
    oracle.distance_graph = overlay
    oracle.transit = transit
    oracle.trees = BoundedTreeStore(trees, transit)
    oracle.inverted_index = InvertedTreeIndex.from_trees(trees)
    oracle.preprocess_seconds = document.get("preprocess_seconds", 0.0)

    if oracle_cls is ADISO:
        landmark_obj = document["landmarks"]
        table = LandmarkTable.__new__(LandmarkTable)
        table.landmarks = tuple(landmark_obj["nodes"])
        table._outbound = [
            {int(k): v for k, v in entry.items()}
            for entry in landmark_obj["outbound"]
        ]
        table._inbound = [
            {int(k): v for k, v in entry.items()}
            for entry in landmark_obj["inbound"]
        ]
        oracle.landmarks = table
    return oracle
