"""Stitched queries over a sharded index: the border overlay walk.

The exact decomposition (DESIGN.md §13): any ``s -> t`` path that
leaves ``shard(s)`` does so for the first time at a border node ``b1``
of ``shard(s)``, and enters ``shard(t)`` for the last time at a border
node ``b2`` of ``shard(t)``.  Between ``b1`` and ``b2`` the path is a
walk in the *border overlay graph* ``H``: its nodes are all border
nodes, its type-1 edges are the original cross-shard edges (both
endpoints are borders by definition), and its type-2 edges are the
within-shard border-to-border distances ``d_k(b, b')``.  So

``d(s, t, F) = min( d_local ,
min over b1 in B(shard(s)), b2 in B(shard(t)) of
d_{shard(s)}(s, b1, F_s)  +  d_H(b1, b2, F)  +  d_{shard(t)}(b2, t, F_t) )``

where ``d_local`` applies only when both endpoints share a shard
(shortest paths may still *escape* a shard and return — same-shard
queries therefore take the min of the local answer and the stitched
walk; the local answer alone is exact only when the shard has no
borders, i.e. no path can escape).

Failure handling: ``F`` is split by ownership.  Edges inside shard
``k`` form ``F_k`` and are forwarded to every leg computed on shard
``k``'s oracle; failed *cross* edges are dropped from the type-1 edges
of ``H``; and for every shard with ``F_k`` non-empty the precomputed
type-2 matrix rows are *repaired* per query by re-asking shard ``k``'s
oracle under ``F_k`` — which handles failure sets that hit border
nodes' incident edges exactly.  Failed edges unknown to the graph are
ignored, matching the unsharded oracles.

:class:`BorderOverlay` holds the thin, oracle-free overlay state (the
part a serving dispatcher keeps in memory); :class:`ShardedOracle`
adds the per-shard oracles for fully in-process stitched queries.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable

from repro.exceptions import QueryError
from repro.graph.digraph import Edge

INFINITY = float("inf")

#: ``adjacency(u)`` yields ``(v, weight)`` overlay edges out of ``u``.
AdjacencyFn = Callable[[int], Iterable[tuple[int, float]]]


def stitch_over_borders(
    sources: list[tuple[int, float]],
    targets: dict[int, float],
    adjacency: AdjacencyFn,
    upper_bound: float = INFINITY,
) -> float:
    """Multi-source Dijkstra over the border overlay graph.

    ``sources`` seeds each entry border with its ``d(s, b1)`` leg,
    ``targets`` maps each exit border to its ``d(b2, t)`` leg, and
    ``adjacency`` enumerates the overlay edges (type-1 cross edges plus
    type-2 within-shard border rows).  Returns the best completed
    ``source-leg + overlay-walk + target-leg`` total, never better than
    ``upper_bound`` (pass the local answer to prune the search).
    """
    best = upper_bound
    # With no reachable exit border, or no finite entry lead, no
    # stitched total can exist — skip the heap entirely rather than
    # seeding a walk that can only drain to ``upper_bound``.
    if not targets or not any(lead < INFINITY for _, lead in sources):
        return best
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for border, lead in sources:
        if lead < INFINITY and lead < dist.get(border, INFINITY):
            dist[border] = lead
            heapq.heappush(heap, (lead, border))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INFINITY) or d >= best:
            continue
        tail = targets.get(u)
        if tail is not None and d + tail < best:
            best = d + tail
        for v, weight in adjacency(u):
            nd = d + weight
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return best


class BorderOverlay:
    """The oracle-free overlay: assignment, borders, matrices, cross edges.

    This is everything a query router needs that is *not* a per-shard
    index: it fits in a dispatcher process without loading any shard
    snapshot, and is what the sharded manifest serializes.
    """

    def __init__(
        self,
        assignment: dict[int, int],
        shard_borders: tuple[tuple[int, ...], ...],
        cross_edges: Iterable[tuple[int, int, float]],
        border_matrices: list[list[list[float]]],
    ) -> None:
        self.assignment = assignment
        self.parts = len(shard_borders)
        self.shard_borders = tuple(tuple(b) for b in shard_borders)
        self.border_matrices = border_matrices
        #: Per shard, ``border -> row index`` into its matrix.
        self.border_index: list[dict[int, int]] = [
            {border: i for i, border in enumerate(borders)}
            for borders in self.shard_borders
        ]
        #: Type-1 overlay edges: ``u -> ((v, w), ...)``, plus the edge
        #: key set for failure filtering.
        cross_adj: dict[int, list[tuple[int, float]]] = {}
        cross_keys: set[Edge] = set()
        for tail, head, weight in cross_edges:
            cross_adj.setdefault(tail, []).append((head, weight))
            cross_keys.add((tail, head))
        self.cross_adjacency = {
            u: tuple(edges) for u, edges in cross_adj.items()
        }
        self.cross_keys = frozenset(cross_keys)
        #: Type-2 overlay edges, failure-free: per shard, per border
        #: row index, ``((b', w), ...)`` with inf/self entries dropped.
        self.type2: list[list[tuple[tuple[int, float], ...]]] = [
            [
                tuple(
                    (self.shard_borders[shard][j], weight)
                    for j, weight in enumerate(row)
                    if j != i and weight < INFINITY
                )
                for i, row in enumerate(matrix)
            ]
            for shard, matrix in enumerate(border_matrices)
        ]

    # ------------------------------------------------------------------
    # Failure routing
    # ------------------------------------------------------------------
    def split_failures(
        self, failed: Iterable[Edge] | None
    ) -> tuple[dict[int, frozenset[Edge]], frozenset[Edge]]:
        """Split ``F`` into per-shard sets and the failed cross edges.

        An edge whose endpoints share a shard joins that shard's
        ``F_k``; an edge matching a known cross edge joins the cross
        set; anything else (unknown nodes, non-edges spanning shards)
        is dropped — the unsharded oracles ignore unknown failures too.
        """
        per_shard: dict[int, set[Edge]] = {}
        cross: set[Edge] = set()
        if failed:
            for edge in failed:
                if not isinstance(edge, tuple) or len(edge) != 2:
                    raise QueryError(
                        f"failed edges must be (tail, head) tuples, "
                        f"got {edge!r}"
                    )
                tail, head = edge
                shard_t = self.assignment.get(tail)
                shard_h = self.assignment.get(head)
                if shard_t is None or shard_h is None:
                    continue
                if shard_t == shard_h:
                    per_shard.setdefault(shard_t, set()).add(edge)
                elif edge in self.cross_keys:
                    cross.add(edge)
        return (
            {k: frozenset(edges) for k, edges in per_shard.items()},
            frozenset(cross),
        )

    def shards_touched(self, per_shard: dict[int, frozenset[Edge]]) -> list[int]:
        """Shards whose type-2 rows need per-query repair (sorted)."""
        return sorted(
            shard for shard in per_shard if self.shard_borders[shard]
        )

    # ------------------------------------------------------------------
    # Overlay adjacency under a failure set
    # ------------------------------------------------------------------
    def adjacency(
        self,
        repaired: dict[int, list[list[float]]] | None = None,
        cross_failed: frozenset[Edge] | None = None,
    ) -> AdjacencyFn:
        """Overlay adjacency with repairs and cross failures applied.

        ``repaired`` maps a shard id to replacement matrix rows (same
        shape as its failure-free matrix) for shards whose ``F_k`` is
        non-empty; ``cross_failed`` removes type-1 edges.
        """
        if not repaired and not cross_failed:
            return self._adjacency_clean
        repaired = repaired or {}
        cross_failed = cross_failed or frozenset()

        def adjacency(u: int) -> Iterable[tuple[int, float]]:
            shard = self.assignment[u]
            rows = repaired.get(shard)
            if rows is None:
                yield from self.type2[shard][self.border_index[shard][u]]
            else:
                borders = self.shard_borders[shard]
                i = self.border_index[shard][u]
                for j, weight in enumerate(rows[i]):
                    if j != i and weight < INFINITY:
                        yield (borders[j], weight)
            for v, weight in self.cross_adjacency.get(u, ()):
                if (u, v) not in cross_failed:
                    yield (v, weight)

        return adjacency

    def _adjacency_clean(self, u: int) -> Iterable[tuple[int, float]]:
        shard = self.assignment[u]
        yield from self.type2[shard][self.border_index[shard][u]]
        yield from self.cross_adjacency.get(u, ())


class ShardedOracle:
    """In-process stitched queries: overlay + every shard oracle loaded.

    Answers are exact and — on graphs whose edge weights make float
    addition exact (integer or dyadic weights) — bitwise-equal to the
    unsharded frozen oracle, which the sharded parity suite asserts.
    """

    name = "DISO-SHARD"

    def __init__(
        self,
        overlay: BorderOverlay,
        shard_oracles: list,
    ) -> None:
        if overlay.parts != len(shard_oracles):
            raise ValueError(
                f"overlay has {overlay.parts} shards but "
                f"{len(shard_oracles)} oracles were supplied"
            )
        self.overlay = overlay
        self.shard_oracles = shard_oracles

    @classmethod
    def from_build(cls, build) -> "ShardedOracle":
        """Wrap a :class:`repro.sharding.build.ShardedBuild`."""
        overlay = BorderOverlay(
            build.plan.assignment,
            build.plan.shard_borders,
            build.plan.cross_edges,
            build.border_matrices,
        )
        return cls(overlay, build.shard_oracles)

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------
    def repair_rows(
        self, shard: int, failed: frozenset[Edge]
    ) -> list[list[float]]:
        """Recompute shard ``shard``'s border matrix under ``F_k``."""
        borders = self.overlay.shard_borders[shard]
        oracle = self.shard_oracles[shard]
        return [
            [
                0.0 if a == b else oracle.query(a, b, failed)
                for b in borders
            ]
            for a in borders
        ]

    def query(
        self,
        source: int,
        target: int,
        failed: Iterable[Edge] | None = None,
    ) -> float:
        """Return ``d(source, target, failed)`` via the stitched plan."""
        assignment = self.overlay.assignment
        if source not in assignment:
            raise QueryError(f"source node {source!r} is not in the graph")
        if target not in assignment:
            raise QueryError(f"target node {target!r} is not in the graph")
        shard_s = assignment[source]
        shard_t = assignment[target]
        per_shard, cross_failed = self.overlay.split_failures(failed)
        f_s = per_shard.get(shard_s, frozenset())
        f_t = per_shard.get(shard_t, frozenset())

        local = INFINITY
        if shard_s == shard_t:
            local = self.shard_oracles[shard_s].query(source, target, f_s)
        borders_s = self.overlay.shard_borders[shard_s]
        borders_t = self.overlay.shard_borders[shard_t]
        if not borders_s or not borders_t:
            # No escape from the source shard (or no entry into the
            # target shard): the local answer is already exact.
            return local

        oracle_s = self.shard_oracles[shard_s]
        oracle_t = self.shard_oracles[shard_t]
        sources = [
            (border, oracle_s.query(source, border, f_s))
            for border in borders_s
        ]
        targets = {
            border: leg
            for border in borders_t
            if (leg := oracle_t.query(border, target, f_t)) < INFINITY
        }
        repaired = {
            shard: self.repair_rows(shard, per_shard[shard])
            for shard in self.overlay.shards_touched(per_shard)
        }
        adjacency = self.overlay.adjacency(repaired, cross_failed)
        return stitch_over_borders(
            sources, targets, adjacency, upper_bound=local
        )
