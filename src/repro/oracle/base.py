"""Oracle interfaces and query result types.

A *distance sensitivity oracle* answers queries ``(s, t, F)`` asking for
``d(s, t, F)`` — the shortest distance from ``s`` to ``t`` in the graph
with the failed edge set ``F`` removed (Definition 3.1) — without any
index update, so queries never stall and can run concurrently on the
same index (the paper's central design requirement, Sections 1 and 4.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Edge

INFINITY = float("inf")


@dataclass
class QueryStats:
    """Per-phase instrumentation of a single query.

    The fields correspond to the columns broken out in the paper's
    Table 3: access time (bounded Dijkstra runs for the endpoints),
    recomputation time (lazy edge-weight recomputation for affected
    nodes), and the overall search effort.
    """

    affected_count: int = 0
    access_seconds: float = 0.0
    recompute_seconds: float = 0.0
    overlay_settled: int = 0
    graph_settled: int = 0
    recomputed_nodes: int = 0
    used_fallback: bool = False
    total_seconds: float = 0.0


@dataclass
class QueryResult:
    """The answer of a distance sensitivity query with instrumentation.

    Attributes
    ----------
    distance:
        ``d(s, t, F)`` (exact oracles) or an upper-bound estimate
        (approximate oracles: DISO-S, ADISO-P, FDDO); ``inf`` when ``t``
        is unreachable from ``s`` after removing ``F``.
    stats:
        Phase instrumentation; populated by ``query_detailed``.
    """

    distance: float
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def reachable(self) -> bool:
        """Whether a path avoiding the failures exists."""
        return self.distance < INFINITY


class DistanceSensitivityOracle(abc.ABC):
    """Abstract base for all oracles and baselines in this library.

    Subclasses must implement :meth:`query_detailed`; :meth:`query` is a
    thin convenience wrapper.  Oracles additionally expose their
    preprocessing wall-clock time and an index size estimate so the
    experiment harness can fill Tables 5 and 6 uniformly.
    """

    #: Short identifier used in experiment reports ("DISO", "ADISO", ...).
    name: str = "oracle"

    #: Whether answers are exact (DISO/ADISO/DI/A*) or approximate
    #: (DISO-S, ADISO-P, FDDO).
    exact: bool = True

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self.preprocess_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> float:
        """Return ``d(source, target, failed)``.

        Raises
        ------
        QueryError
            If either endpoint is not a node of the graph.
        """
        return self.query_detailed(source, target, failed).distance

    @abc.abstractmethod
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        """Answer the query and return instrumentation alongside."""

    def query_avoiding_nodes(
        self,
        source: int,
        target: int,
        failed_nodes: set[int],
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> float:
        """Answer a query with *node* failures (Section 3.1 extension).

        A failed node is modelled as the failure of all its incident
        edges, exactly the reduction the paper describes ("this work is
        easily extended to handle node failures").  Extra edge failures
        can be mixed in via ``failed``.

        Raises
        ------
        QueryError
            If ``source`` or ``target`` is itself a failed node (there
            is no defined answer in that case), or endpoints are
            missing from the graph.
        """
        if source in failed_nodes:
            raise QueryError(f"source node {source!r} is failed")
        if target in failed_nodes:
            raise QueryError(f"target node {target!r} is failed")
        edge_failures: set[Edge] = set(failed) if failed else set()
        for node in failed_nodes:
            if not self.graph.has_node(node):
                continue
            for head in self.graph.successors(node):
                edge_failures.add((node, head))
            for tail in self.graph.predecessors(node):
                edge_failures.add((tail, node))
        return self.query(source, target, edge_failures)

    def _validate_endpoints(self, source: int, target: int) -> None:
        """Shared endpoint validation for all oracles."""
        if not self.graph.has_node(source):
            raise QueryError(f"source node {source!r} is not in the graph")
        if not self.graph.has_node(target):
            raise QueryError(f"target node {target!r} is not in the graph")

    # ------------------------------------------------------------------
    # Sizing (Table 6)
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        """Return named entry counts of every index component.

        Subclasses override to describe their structures; the sizing
        module converts entries to byte estimates for Table 6.
        """
        return {}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()})"
        )


def canonical_failure_key(
    failed: set[Edge] | frozenset[Edge] | tuple[Edge, ...] | None,
) -> tuple[Edge, ...]:
    """Deterministic, hashable canonical form of a failure set.

    Two failure sets with the same members always canonicalize to the
    same tuple regardless of how they were constructed or in which
    order a ``set`` happens to iterate — the property that makes the
    tuple safe as cache-key material (the serving plane's result cache
    keys on ``(s, t, canonical_failure_key(F))``).  ``None`` and the
    empty set both mean "no failures" and canonicalize to ``()``.

    >>> canonical_failure_key({(3, 4), (1, 2)})
    ((1, 2), (3, 4))
    >>> canonical_failure_key(None)
    ()
    """
    if not failed:
        return ()
    return tuple(sorted(failed))


def normalize_failures(
    failed: set[Edge] | frozenset[Edge] | None,
) -> frozenset[Edge]:
    """Validate and freeze a failed edge set.

    ``None`` means no failures.  Members must be ``(tail, head)`` pairs.

    Raises
    ------
    QueryError
        If any member is not a 2-tuple.
    """
    if not failed:
        return frozenset()
    for item in failed:
        if not isinstance(item, tuple) or len(item) != 2:
            raise QueryError(
                f"failed edges must be (tail, head) tuples, got {item!r}"
            )
    return frozenset(failed)
