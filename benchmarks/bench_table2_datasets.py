"""Bench: Table 2 — dataset generation and statistics.

Measures synthetic dataset construction and records the Table 2
statistics rows (|V|, |E|, degree bands) used by every other bench.
"""

from __future__ import annotations

from repro.experiments.table2 import format_table2, run_table2
from repro.graph.generators import road_network, scale_free_network

from bench_util import SCALE, SEED, write_result


def test_generate_road_network(benchmark):
    graph = benchmark(road_network, 30, 22, SEED)
    assert graph.number_of_nodes() == 30 * 22


def test_generate_scale_free_network(benchmark):
    graph = benchmark(scale_free_network, 700, 3, SEED)
    assert graph.number_of_nodes() == 700


def test_table2_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table2(scale=SCALE, seed=SEED), rounds=1, iterations=1
    )
    assert len(rows) == 6
    write_result("table2", format_table2(rows))
