"""Dispatcher-level result cache with epoch-scoped invalidation.

At the traffic scale the serving plane targets, real query
distributions are heavily skewed: the same hot ``(s, t)`` pairs are
re-asked over and over, usually under a recurring handful of failure
sets (the paper's Example 1 is exactly this — one commuter, many
closure variants).  :mod:`repro.oracle.caching` exploits that skew
*inside* one oracle; this module exploits it *before any worker is
touched*: the dispatcher remembers finished answers keyed on
``(s, t, canonicalized F)`` and serves repeats as a dictionary lookup.

Correctness rests on two properties (argument in DESIGN.md §12):

* **Keys are canonical.**  :func:`canonical_query_key` routes the
  failure set through
  :func:`repro.oracle.base.canonical_failure_key`, so two equal
  failure sets produce the same key no matter how they were built or
  in which order a ``set`` iterates — a cache hit is definitionally
  the *same query*, and the oracles are deterministic, so the cached
  answer is bitwise-identical to what a worker would recompute.
* **Entries are epoch-scoped.**  Every entry records the *snapshot
  epoch* it was computed under.  A lookup under any other epoch
  removes the entry and reports a miss, so retiring a snapshot
  (hot-swap, rebuild) invalidates the whole cache for free — no
  enumeration, no distributed coordination, just a stamped integer
  comparison.  This mirrors the run-epoch fence of DESIGN.md §8: the
  dispatcher only ever inserts answers that passed that fence, so a
  stale-epoch delivery from an aborted run can never *enter* the
  cache, and the snapshot stamp guarantees it can never *leave* it
  after a retirement either.

Entries holding the NaN :data:`~repro.serving.worker.QUERY_ERROR`
sentinel are never admitted: an errored answer describes a transient
worker condition (or a poison query, which must keep paying its own
cost), not a reusable fact about the graph.

:class:`HotPairTracker` is the workload-skew observer feeding hot-pair
precomputation: decayed counters over canonical keys, cheap enough to
update on every query, whose ``top(k)`` drives
:meth:`repro.serving.QueryService.refresh_hot_pairs` during dispatcher
idle gaps.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Callable

from repro.oracle.base import canonical_failure_key

#: Canonical cache key: ``(source, target, sorted failure tuple)``.
QueryKey = tuple[int, int, tuple]


def canonical_query_key(source: int, target: int, failed) -> QueryKey:
    """The cache key of one wire query.

    ``failed`` may be ``None``, a tuple, a set, or a frozenset — every
    representation of the same failure set maps to the same key.

    >>> canonical_query_key(3, 9, ((5, 6), (1, 2)))
    (3, 9, ((1, 2), (5, 6)))
    >>> canonical_query_key(3, 9, None)
    (3, 9, ())
    """
    return (source, target, canonical_failure_key(failed))


class ResultCache:
    """LRU result cache whose entries die with their snapshot epoch.

    Parameters
    ----------
    capacity:
        Maximum number of cached answers (>= 1).  Eviction is LRU.

    Notes
    -----
    Thread-safe: the serving dispatcher is single-threaded today, but
    the cache is also reachable through :class:`~repro.oracle.parallel.
    QueryEngine` instances that callers may share across threads, so
    every mutation and every stats snapshot takes the lock (the same
    discipline as :class:`repro.oracle.caching.CachingDISO`'s endpoint
    cache).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        #: key -> (answer, snapshot_epoch, precomputed)
        self._entries: OrderedDict[
            QueryKey, tuple[float, int, bool]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._precomputed_hits = 0
        self._inserts = 0
        self._evictions = 0
        self._stale_drops = 0

    def get(self, key: QueryKey, epoch: int) -> tuple[float, bool] | None:
        """Return ``(answer, was_precomputed)`` if cached under ``epoch``.

        An entry stamped with any other snapshot epoch is removed on
        sight and reported as a miss — the epoch-scoped invalidation
        contract.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            answer, entry_epoch, precomputed = entry
            if entry_epoch != epoch:
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if precomputed:
                self._precomputed_hits += 1
            return answer, precomputed

    def put(
        self,
        key: QueryKey,
        answer: float,
        epoch: int,
        precomputed: bool = False,
    ) -> bool:
        """Admit one answer computed under snapshot ``epoch``.

        Returns ``False`` (and stores nothing) for the NaN
        ``QUERY_ERROR`` sentinel: error outcomes are never reusable.
        """
        if math.isnan(answer):
            return False
        with self._lock:
            self._entries[key] = (answer, epoch, precomputed)
            self._entries.move_to_end(key)
            self._inserts += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return True

    def contains(self, key: QueryKey) -> bool:
        """Membership test with no stats side effects (for precompute)."""
        with self._lock:
            return key in self._entries

    def retire_older_than(self, epoch: int) -> int:
        """Drop every entry stamped with a snapshot epoch < ``epoch``.

        Lookup already refuses mismatched epochs lazily; this eager
        sweep just returns the memory.  Returns the number dropped.
        """
        with self._lock:
            stale = [
                key
                for key, (_, entry_epoch, _) in self._entries.items()
                if entry_epoch < epoch
            ]
            for key in stale:
                del self._entries[key]
            self._stale_drops += len(stale)
            return len(stale)

    def entry_epochs(self) -> set[int]:
        """The set of snapshot epochs present in the cache (tests)."""
        with self._lock:
            return {epoch for _, epoch, _ in self._entries.values()}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """One consistent snapshot of every counter plus the size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "precomputed_hits": self._precomputed_hits,
                "inserts": self._inserts,
                "evictions": self._evictions,
                "stale_drops": self._stale_drops,
                "entries": len(self._entries),
                "capacity": self._capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class HotPairTracker:
    """Decayed frequency counters over canonical query keys.

    Observes every key the dispatcher sees and keeps an approximate
    leaderboard: each observation adds 1 to the key's score, and every
    ``decay_every`` observations all scores are multiplied by
    ``decay`` — so a pair that stops being asked ages out instead of
    squatting on the leaderboard forever (the behaviour a plain
    count-min sketch with no aging would get wrong under drift).  The
    table is bounded: when it outgrows ``capacity`` the lowest-scored
    keys are pruned.

    Deterministic: ranking ties break on the key itself, so the same
    observation sequence always yields the same ``top(k)``.
    """

    def __init__(
        self,
        capacity: int = 4096,
        decay: float = 0.5,
        decay_every: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracker capacity must be >= 1")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        if decay_every < 1:
            raise ValueError("decay_every must be >= 1")
        self._capacity = capacity
        self._decay = decay
        self._decay_every = decay_every
        self._scores: dict[QueryKey, float] = {}
        self._observed = 0

    def observe(self, key: QueryKey) -> None:
        """Record one sighting of ``key``."""
        self._scores[key] = self._scores.get(key, 0.0) + 1.0
        self._observed += 1
        if self._observed % self._decay_every == 0:
            self._age()

    def _age(self) -> None:
        """Decay all scores; prune the coldest keys past capacity."""
        decayed = {
            key: score * self._decay
            for key, score in self._scores.items()
            if score * self._decay >= 0.125
        }
        if len(decayed) > self._capacity:
            ranked = sorted(
                decayed.items(), key=lambda item: (-item[1], item[0])
            )
            decayed = dict(ranked[: self._capacity])
        self._scores = decayed

    def top(
        self,
        k: int,
        exclude: Callable[[QueryKey], bool] | None = None,
    ) -> list[QueryKey]:
        """The ``k`` hottest keys, hottest first, skipping ``exclude`` hits.

        ``exclude`` is typically ``ResultCache.contains`` — precompute
        should spend its budget on hot pairs that are *not* already
        answered.
        """
        if k < 1:
            return []
        ranked = sorted(
            self._scores.items(), key=lambda item: (-item[1], item[0])
        )
        selected: list[QueryKey] = []
        for key, _ in ranked:
            if exclude is not None and exclude(key):
                continue
            selected.append(key)
            if len(selected) == k:
                break
        return selected

    def __len__(self) -> int:
        return len(self._scores)
