"""Table 4 — ISC versus graph-partitioning transit sets.

The paper compares the ISC transit set against the *border nodes* of
three partitionings (UNIFORM random, METIS [34], SPA [17]) on a road
dataset (NY) and the densest social dataset (POKE), reporting |C|,
|E_D|, query time (QT), and access time (AT).  Expected shape: ISC gives
the sparsest overlay and the best query time; partitioning objectives
(edge cut) are only loosely related to overlay sparsity.
"""

from __future__ import annotations

import time

from repro.cover.isc import isc_path_cover
from repro.cover.partitioning import (
    border_nodes,
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import human_count, human_ms, render_table
from repro.oracle.diso import DISO
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries

#: Transit-set methods compared in Table 4.
PARTITION_METHODS = ("ISC", "UNIFORM", "METIS", "SPA")


def _transit_set(method: str, graph, spec, parts: int, seed: int):
    """Compute one transit set; returns (nodes, elapsed_seconds)."""
    started = time.perf_counter()
    if method == "ISC":
        transit = isc_path_cover(
            graph, tau=spec.tau_diso, theta=spec.theta
        ).cover
    elif method == "UNIFORM":
        transit = border_nodes(graph, uniform_partition(graph, parts, seed))
    elif method == "METIS":
        transit = border_nodes(
            graph, metis_like_partition(graph, parts, seed)
        )
    elif method == "SPA":
        transit = border_nodes(graph, spectral_partition(graph, parts, seed))
    else:
        raise ValueError(f"unknown partitioning method {method!r}")
    return transit, time.perf_counter() - started


def run_table4(
    datasets: tuple[str, ...] = ("NY", "POKE"),
    scale: float = 0.5,
    parts: int = 24,
    query_count: int = 20,
    seed: int = 7,
    methods: tuple[str, ...] = PARTITION_METHODS,
) -> list[dict[str, object]]:
    """Reproduce Table 4 rows.

    ``parts`` stands in for the paper's 3,000 partitions, scaled to the
    synthetic graph sizes.
    """
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        queries = generate_queries(
            graph, query_count, f_gen=5, p=0.0005, seed=seed
        )
        truth = exact_answers(graph, queries)
        for method in methods:
            transit, build_seconds = _transit_set(
                method, graph, spec, parts, seed
            )
            if not transit:
                rows.append({"dataset": name, "method": method, "failed": True})
                continue
            oracle = DISO(graph, transit=transit)
            batch = run_batch(oracle, queries, truth)
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "cover_size": len(transit),
                    "overlay_edges": oracle.distance_graph.num_edges,
                    "transit_seconds": build_seconds,
                    "query_ms": batch.query_ms,
                    "access_ms": batch.access_ms,
                    "failed": False,
                }
            )
    return rows


def format_table4(rows: list[dict[str, object]]) -> str:
    """Render :func:`run_table4` rows like the paper's Table 4."""
    display = []
    for row in rows:
        if row.get("failed"):
            display.append(
                {"dataset": row["dataset"], "method": row["method"]}
            )
            continue
        display.append(
            {
                "dataset": row["dataset"],
                "method": row["method"],
                "cover_size": human_count(row["cover_size"]),
                "overlay_edges": human_count(row["overlay_edges"]),
                "query": human_ms(row["query_ms"]),
                "access": human_ms(row["access_ms"]),
            }
        )
    return render_table(
        display,
        columns=[
            ("dataset", "Data"),
            ("method", "Method"),
            ("cover_size", "|C|"),
            ("overlay_edges", "|E_D|"),
            ("query", "QT(ms)"),
            ("access", "AT(ms)"),
        ],
        title="Table 4: ISC vs graph partitioning transit sets",
    )
