"""Parameter sensitivity experiments (paper supplemental material).

The paper's supplemental material tunes three knobs before the main
evaluation; these harnesses reproduce the sweeps:

* **theta** — Algorithm 1's density threshold: larger theta eliminates
  more nodes (smaller |C|) at the price of a denser overlay, with an
  intermediate optimum for query time (the paper settles on 1 for road
  and 16 for social networks);
* **alpha** — SLS's coverage slack: controls how demanding the
  pair-coverage test is during landmark selection (0.1 road / 0.25
  social in the paper);
* **affected-node count vs p** — how many transit nodes a random
  failure rate touches, the quantity driving lazy-recomputation cost
  (reported alongside Table 3 in the supplemental).

A fourth harness measures **parallel throughput scaling**, backing the
paper's multi-threaded no-stall claim (Section 1).
"""

from __future__ import annotations

from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import render_series
from repro.cover.isc import isc_path_cover
from repro.landmarks.selection import sls_landmarks
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.parallel import QueryEngine
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries


def run_theta_sweep(
    dataset: str = "DBLP",
    scale: float = 0.5,
    thetas: tuple[float, ...] = (0.0, 4.0, 16.0, 64.0),
    query_count: int = 12,
    seed: int = 7,
) -> dict[str, object]:
    """Sweep Algorithm 1's theta; report |C|, |E_D|, and query time."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    queries = generate_queries(graph, query_count, f_gen=5, p=0.0005, seed=seed)
    truth = exact_answers(graph, queries)
    cover_sizes: list[float] = []
    overlay_edges: list[float] = []
    query_ms: list[float] = []
    for theta in thetas:
        cover = isc_path_cover(graph, tau=spec.tau_diso, theta=theta).cover
        oracle = DISO(graph, transit=cover)
        batch = run_batch(oracle, queries, truth)
        cover_sizes.append(len(cover))
        overlay_edges.append(oracle.distance_graph.num_edges)
        query_ms.append(batch.query_ms)
    return {
        "dataset": dataset,
        "thetas": list(thetas),
        "cover_sizes": cover_sizes,
        "overlay_edges": overlay_edges,
        "query_ms": query_ms,
    }


def format_theta_sweep(data: dict[str, object]) -> str:
    """Render the theta sweep."""
    return render_series(
        f"Supplemental: theta sensitivity ({data['dataset']})",
        "theta",
        data["thetas"],
        {
            "|C|": data["cover_sizes"],
            "|E_D|": data["overlay_edges"],
            "query_ms": data["query_ms"],
        },
        fmt=lambda v: f"{v:.2f}",
    )


def run_alpha_sweep(
    dataset: str = "NY",
    scale: float = 0.5,
    alphas: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5),
    num_landmarks: int = 8,
    query_count: int = 12,
    seed: int = 7,
) -> dict[str, object]:
    """Sweep SLS's alpha; report ADISO query time per setting."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    queries = generate_queries(graph, query_count, f_gen=5, p=0.0005, seed=seed)
    truth = exact_answers(graph, queries)
    query_ms: list[float] = []
    for alpha in alphas:
        landmarks = sls_landmarks(
            graph, num_landmarks, seed=seed, alpha=alpha
        )
        oracle = ADISO(
            graph, tau=spec.tau_adiso, theta=spec.theta, landmarks=landmarks
        )
        batch = run_batch(oracle, queries, truth)
        query_ms.append(batch.query_ms)
    return {
        "dataset": dataset,
        "alphas": list(alphas),
        "query_ms": query_ms,
    }


def format_alpha_sweep(data: dict[str, object]) -> str:
    """Render the alpha sweep."""
    return render_series(
        f"Supplemental: alpha sensitivity ({data['dataset']})",
        "alpha",
        data["alphas"],
        {"ADISO query_ms": data["query_ms"]},
        fmt=lambda v: f"{v:.3f}",
    )


def run_affected_nodes_sweep(
    dataset: str = "NY",
    scale: float = 0.5,
    p_values: tuple[float, ...] = (0.0, 0.0005, 0.002, 0.008),
    query_count: int = 12,
    seed: int = 7,
) -> dict[str, object]:
    """Measure average affected-node counts as ``p`` grows."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    oracle = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    affected_avg: list[float] = []
    recompute_ms: list[float] = []
    for p in p_values:
        queries = generate_queries(
            graph, query_count, f_gen=5, p=p, seed=seed
        )
        batch = run_batch(oracle, queries)
        affected_avg.append(batch.affected_avg)
        recompute_ms.append(batch.recompute_ms)
    return {
        "dataset": dataset,
        "p_values": list(p_values),
        "affected_avg": affected_avg,
        "recompute_ms": recompute_ms,
        "transit_size": len(oracle.transit),
    }


def format_affected_nodes_sweep(data: dict[str, object]) -> str:
    """Render the affected-node sweep."""
    return render_series(
        f"Supplemental: affected nodes vs p ({data['dataset']}, "
        f"|C|={data['transit_size']})",
        "p",
        data["p_values"],
        {
            "avg affected": data["affected_avg"],
            "recompute_ms": data["recompute_ms"],
        },
        fmt=lambda v: f"{v:.3f}",
    )


def run_throughput_scaling(
    dataset: str = "NY",
    scale: float = 0.5,
    thread_counts: tuple[int, ...] = (1, 2, 4),
    query_count: int = 40,
    seed: int = 7,
) -> dict[str, object]:
    """Measure parallel query throughput on one shared DISO index."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    oracle = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    queries = generate_queries(
        graph, query_count, f_gen=5, p=0.002, seed=seed
    )
    qps: list[float] = []
    reference: list[float] | None = None
    for threads in thread_counts:
        engine = QueryEngine(oracle, threads=threads)
        report = engine.run(queries)
        if reference is None:
            reference = report.answers
        else:
            # Concurrency must never change answers.
            assert report.answers == reference
        qps.append(report.queries_per_second)
    return {
        "dataset": dataset,
        "thread_counts": list(thread_counts),
        "queries_per_second": qps,
    }


def format_throughput_scaling(data: dict[str, object]) -> str:
    """Render the throughput scaling sweep."""
    return render_series(
        f"Throughput scaling ({data['dataset']})",
        "threads",
        data["thread_counts"],
        {"queries/s": data["queries_per_second"]},
        fmt=lambda v: f"{v:.0f}",
    )
