"""Shared helpers for the benchmark suite.

Benchmarks reproduce the paper's tables and figures at reduced synthetic
scale.  Heavy artefacts (graphs, query batches, oracle indices) are
built once per session and cached; each bench then measures the
interesting operation with pytest-benchmark and writes the formatted
paper-style table to ``benchmarks/results/`` so EXPERIMENTS.md can quote
it.
"""

from __future__ import annotations

import json
import math
import statistics
from functools import lru_cache
from pathlib import Path

from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
LATENCY_JSON = REPO_ROOT / "BENCH_query_latency.json"

#: Benchmark scale: large enough to show the paper's separations,
#: small enough for a pure-Python suite to finish in minutes.
SCALE = 0.5
SEED = 7
QUERY_COUNT = 20


@lru_cache(maxsize=None)
def dataset(name: str, scale: float = SCALE):
    """Session-cached synthetic dataset."""
    return load_dataset(name, scale=scale, seed=SEED)


@lru_cache(maxsize=None)
def queries(name: str, f_gen: int = 5, p: float = 0.0005, count: int = QUERY_COUNT):
    """Session-cached query batch for a dataset (paper defaults)."""
    graph = dataset(name)
    return tuple(
        generate_queries(graph, count, f_gen=f_gen, p=p, seed=SEED)
    )


def write_result(name: str, text: str) -> Path:
    """Persist a formatted experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def latency_summary(build_s: float, query_seconds: list[float]) -> dict:
    """Collapse per-query wall-clock samples into the checked-in schema.

    ``p99`` is the nearest-rank 99th percentile, which degrades to the
    maximum for small sample counts instead of extrapolating.
    """
    ordered = sorted(query_seconds)
    rank = min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)
    return {
        "build_s": round(build_s, 6),
        "median_query_us": round(1e6 * statistics.median(ordered), 3),
        "p99_query_us": round(1e6 * ordered[rank], 3),
    }


def merge_latency_json(entries: dict[str, dict]) -> Path:
    """Merge ``{oracle: {build_s, median_query_us, p99_query_us}}`` into
    the repo-root ``BENCH_query_latency.json``.

    Merging (rather than overwriting) lets the table-5 bench and the
    frozen-plane bench each contribute their own oracles to one file.
    """
    merged: dict[str, dict] = {}
    if LATENCY_JSON.exists():
        merged = json.loads(LATENCY_JSON.read_text(encoding="utf-8"))
    merged.update(entries)
    LATENCY_JSON.write_text(
        json.dumps(dict(sorted(merged.items())), indent=2) + "\n",
        encoding="utf-8",
    )
    return LATENCY_JSON


def run_query_batch(oracle, batch) -> float:
    """Answer every query in ``batch``; return the distance checksum.

    Returning a value derived from every answer keeps the work honest
    under aggressive interpreters.
    """
    total = 0.0
    for query in batch:
        distance = oracle.query(query.source, query.target, query.failed)
        if distance != float("inf"):
            total += distance
    return total
