"""Tests for the partitioning-based transit set competitors (Table 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cover.partitioning import (
    border_nodes,
    edge_cut,
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.exceptions import PartitionError
from repro.graph.digraph import DiGraph
from repro.graph.generators import grid_network
from util import random_graph

PARTITIONERS = (uniform_partition, metis_like_partition, spectral_partition)


def _disconnected_graph() -> DiGraph:
    """Three separate 4-cycles: 12 nodes, no edges between components."""
    g = DiGraph()
    for base in (0, 10, 20):
        for i in range(4):
            g.add_edge(base + i, base + (i + 1) % 4, 1.0)
            g.add_edge(base + (i + 1) % 4, base + i, 1.0)
    return g


class TestUniform:
    def test_covers_all_nodes(self, small_road):
        assignment = uniform_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())
        assert set(assignment.values()) <= set(range(4))

    def test_deterministic(self, small_road):
        a = uniform_partition(small_road, 4, seed=1)
        b = uniform_partition(small_road, 4, seed=1)
        assert a == b

    def test_invalid_parts_raises(self, small_road):
        with pytest.raises(ValueError):
            uniform_partition(small_road, 0)


class TestMetisLike:
    def test_covers_all_nodes(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())

    def test_uses_requested_parts(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        assert len(set(assignment.values())) <= 4

    def test_beats_uniform_on_cut(self):
        g = grid_network(12, 12)
        uniform = uniform_partition(g, 4, seed=1)
        metis = metis_like_partition(g, 4, seed=1)
        assert edge_cut(g, metis) < edge_cut(g, uniform)

    def test_invalid_parts_raises(self, small_road):
        with pytest.raises(ValueError):
            metis_like_partition(small_road, 0)


class TestSpectral:
    def test_covers_all_nodes(self, small_road):
        assignment = spectral_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())

    def test_beats_uniform_on_cut(self):
        g = grid_network(12, 12)
        uniform = uniform_partition(g, 4, seed=1)
        spectral = spectral_partition(g, 4, seed=1)
        assert edge_cut(g, spectral) < edge_cut(g, uniform)

    def test_single_part(self, small_road):
        assignment = spectral_partition(small_road, 1, seed=1)
        assert set(assignment.values()) == {0}


class TestBorderNodes:
    def test_borders_have_cross_partition_neighbors(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        borders = border_nodes(small_road, assignment)
        for node in borders:
            neighbors = set(small_road.successors(node)) | set(
                small_road.predecessors(node)
            )
            assert any(
                assignment[other] != assignment[node] for other in neighbors
            )

    def test_non_borders_are_interior(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        borders = border_nodes(small_road, assignment)
        for node in small_road.nodes():
            if node in borders:
                continue
            neighbors = set(small_road.successors(node)) | set(
                small_road.predecessors(node)
            )
            assert all(
                assignment[other] == assignment[node] for other in neighbors
            )

    def test_single_partition_has_no_borders(self, small_road):
        assignment = {node: 0 for node in small_road.nodes()}
        assert border_nodes(small_road, assignment) == set()


class TestNonEmptyParts:
    """Regression: partitioners must never emit an empty part.

    Historically all three could — ``uniform_partition``'s randrange
    can skip a part id, the metis-like grower clamps to fewer blocks on
    small graphs, and recursive spectral bisection stops early — which
    downstream crashed per-shard oracle builds on empty node sets.
    """

    @pytest.mark.parametrize("partition", PARTITIONERS)
    @pytest.mark.parametrize("parts", [2, 3, 4])
    def test_every_part_nonempty(self, partition, parts):
        g = random_graph(3, n=24, extra=40)
        assignment = partition(g, parts, seed=0)
        counts = [0] * parts
        for part in assignment.values():
            counts[part] += 1
        assert all(count > 0 for count in counts)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_disconnected_graph_fills_every_part(self, partition):
        g = _disconnected_graph()
        assignment = partition(g, 3, seed=1)
        assert set(assignment) == set(g.nodes())
        counts = [0, 0, 0]
        for part in assignment.values():
            counts[part] += 1
        assert all(count > 0 for count in counts)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_more_parts_than_nodes_raises(self, partition):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 1.0)
        with pytest.raises(PartitionError):
            partition(g, 5, seed=0)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_parts_equal_nodes_is_singletons(self, partition):
        g = _disconnected_graph()
        n = g.number_of_nodes()
        assignment = partition(g, n, seed=2)
        assert sorted(assignment.values()) == list(range(n))

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_deterministic_after_rebalance(self, partition):
        g = _disconnected_graph()
        assert partition(g, 5, seed=3) == partition(g, 5, seed=3)


class TestPartitionProperties:
    """Property suite: total assignment + cut/border consistency."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=40),
        parts=st.integers(min_value=1, max_value=6),
        which=st.integers(min_value=0, max_value=2),
    )
    def test_total_nonempty_assignment(self, seed, n, parts, which):
        # ``extra`` must fit the edges a cycle leaves available, or the
        # generator's rejection loop can never terminate on tiny n.
        g = random_graph(seed, n=n, extra=min(2 * n, 40, n * (n - 2)))
        partition = PARTITIONERS[which]
        if parts > n:
            with pytest.raises(PartitionError):
                partition(g, parts, seed=seed)
            return
        assignment = partition(g, parts, seed=seed)
        # Total: every node assigned, ids in range.
        assert set(assignment) == set(g.nodes())
        assert set(assignment.values()) <= set(range(parts))
        # No empty part.
        assert len(set(assignment.values())) == parts

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        parts=st.integers(min_value=1, max_value=5),
        which=st.integers(min_value=0, max_value=2),
    )
    def test_cut_and_borders_consistent(self, seed, parts, which):
        g = random_graph(seed, n=18, extra=30)
        assignment = PARTITIONERS[which](g, parts, seed=seed)
        cut = edge_cut(g, assignment)
        borders = border_nodes(g, assignment)
        # Nonzero cut <=> nonempty border set.
        assert (cut > 0) == (len(borders) > 0)
        # Every cut edge's endpoints are borders; border count is
        # bounded by the endpoints the cut edges can supply.
        cut_endpoints = {
            endpoint
            for tail, head, _ in g.edges()
            if assignment[tail] != assignment[head]
            for endpoint in (tail, head)
        }
        assert borders == cut_endpoints
        assert len(borders) <= 2 * cut


class TestEdgeCut:
    def test_zero_for_single_partition(self, small_road):
        assignment = {node: 0 for node in small_road.nodes()}
        assert edge_cut(small_road, assignment) == 0

    def test_counts_cross_edges(self):
        g = grid_network(2, 2)  # nodes 0,1,2,3; bidirectional edges
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        # Crossing pairs: (0,2) both directions and (1,3) both = 4 edges.
        assert edge_cut(g, assignment) == 4
