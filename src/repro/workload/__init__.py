"""Query workloads and the synthetic dataset registry."""

from repro.workload.datasets import (
    DATASETS,
    ROAD_DATASETS,
    SOCIAL_DATASETS,
    DatasetSpec,
    dataset_statistics,
    load_dataset,
)
from repro.workload.scenarios import (
    FailureEvent,
    FailureSchedule,
    generate_failure_schedule,
    sample_bursty_query_times,
    sample_query_times,
)
from repro.workload.queries import (
    Query,
    essential_failures,
    generate_queries,
    generate_query,
    generate_zipf_queries,
    random_failures,
)

__all__ = [
    "Query",
    "generate_query",
    "generate_queries",
    "generate_zipf_queries",
    "essential_failures",
    "random_failures",
    "DATASETS",
    "ROAD_DATASETS",
    "SOCIAL_DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_statistics",
    "FailureEvent",
    "FailureSchedule",
    "generate_failure_schedule",
    "sample_query_times",
    "sample_bursty_query_times",
]
