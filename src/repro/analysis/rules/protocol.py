"""DSO4xx — exception-protocol hygiene.

The hardened serving plane's contract is that *no* failure is silent:
a poison query becomes a NaN answer plus a ``(position, message)``
entry on the per-query error channel; a dead worker becomes a restart
plus a counted stat; a corrupt snapshot becomes a raised
``FormatError``.  Handlers that swallow exceptions break that contract
at the root — the failure happened, nothing recorded it, and the
symptom surfaces three layers away as a parity mismatch or a hang.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import Rule

_BROAD = frozenset({"Exception", "BaseException"})


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    kind = handler.type
    nodes: list[ast.expr]
    if kind is None:
        return []
    nodes = list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _body_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _binds_and_uses_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for statement in handler.body:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
    return False


class BareExceptRule(Rule):
    """DSO401: bare ``except:``.

    Catches ``SystemExit``/``KeyboardInterrupt`` too, so a worker stuck
    in one cannot even be interrupted; always name the exception types
    (use ``BaseException`` explicitly when a cleanup genuinely must run
    for everything — and re-raise).
    """

    rule_id = "DSO401"
    severity = "error"
    summary = "bare except: clause"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except also traps KeyboardInterrupt/SystemExit; "
                "name the exception types",
            )
        self.generic_visit(node)


class SwallowedBroadExceptRule(Rule):
    """DSO402: ``except Exception``/``BaseException`` that neither
    re-raises nor reads the caught exception.

    A broad catch is sometimes right (worker loops must survive any
    query), but only when the handler *routes* the failure somewhere —
    the error channel, a log, a counter.  A broad catch whose body
    ignores the exception erases the failure entirely.
    """

    rule_id = "DSO402"
    severity = "error"
    summary = "broad except swallows the exception (no raise, unused)"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (
            node.type is not None
            and any(name in _BROAD for name in _handler_names(node))
            and not _body_reraises(node)
            and not _binds_and_uses_exception(node)
        ):
            self.report(
                node,
                "broad except discards the exception; narrow the types, "
                "re-raise, or route it through the error channel",
            )
        self.generic_visit(node)


class SilentWorkerHandlerRule(Rule):
    """DSO403 (worker profile only): a pass-only handler in
    serving/build code.

    Inside a worker loop even a *narrow* ``except ...: pass`` deserves
    scrutiny: the dispatcher cannot distinguish "worker ignored a
    benign EOF" from "worker lost my batch", so each silent handler
    must either route through the protocol or carry a justification
    explaining why silence is the protocol (e.g. parent already gone,
    nothing left to notify).  Bare/broad handlers are DSO401/DSO402's
    business and are not double-reported here.
    """

    rule_id = "DSO403"
    severity = "error"
    summary = "pass-only exception handler in worker-plane code"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        is_narrow = node.type is not None and not any(
            name in _BROAD for name in _handler_names(node)
        )
        body_is_pass = len(node.body) == 1 and isinstance(
            node.body[0], ast.Pass
        )
        if is_narrow and body_is_pass:
            self.report(
                node,
                "silent pass in a worker-plane handler; route the "
                "failure through the error channel or justify the "
                "silence",
            )
        self.generic_visit(node)
