"""Tests for the generic A* search and landmark heuristics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.landmarks.base import LandmarkTable
from repro.pathing.astar import (
    astar_distance,
    astar_path,
    astar_search_stats,
    zero_heuristic,
)
from repro.pathing.dijkstra import path_distance, shortest_distance
from util import random_failures_from, random_graph


class TestAStarBasics:
    def test_zero_heuristic_equals_dijkstra(self, small_road):
        for target in (5, 70, 143):
            assert astar_distance(
                small_road, 0, target, zero_heuristic
            ) == pytest.approx(shortest_distance(small_road, 0, target))

    def test_path_reconstruction(self, triangle):
        path = astar_path(triangle, 0, 2, zero_heuristic)
        assert path == [(0, 1), (1, 2)]

    def test_path_unreachable_is_none(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(2)
        assert astar_path(g, 0, 2, zero_heuristic) is None

    def test_missing_endpoints_raise(self, triangle):
        with pytest.raises(NodeNotFoundError):
            astar_distance(triangle, 42, 0, zero_heuristic)
        with pytest.raises(NodeNotFoundError):
            astar_distance(triangle, 0, 42, zero_heuristic)

    def test_failed_edges_avoided(self, diamond):
        assert astar_distance(
            diamond, 0, 3, zero_heuristic, failed={(1, 3)}
        ) == pytest.approx(4.0)

    def test_search_stats_counts_settled(self, small_road):
        distance, settled = astar_search_stats(
            small_road, 0, 1, zero_heuristic
        )
        assert distance == pytest.approx(
            shortest_distance(small_road, 0, 1)
        )
        assert settled >= 1


class TestLandmarkGuidedAStar:
    def test_landmark_heuristic_preserves_exactness(self, small_road):
        table = LandmarkTable(small_road, [0, 77, 143])
        for target in (12, 88, 140):
            h = table.heuristic_to(target)
            assert astar_distance(small_road, 3, target, h) == (
                pytest.approx(shortest_distance(small_road, 3, target))
            )

    def test_good_heuristic_prunes_search(self, small_road):
        table = LandmarkTable(small_road, [0, 11, 132, 143])
        h = table.heuristic_to(143)
        _, settled_alt = astar_search_stats(small_road, 0, 143, h)
        _, settled_dij = astar_search_stats(
            small_road, 0, 143, zero_heuristic
        )
        assert settled_alt <= settled_dij

    def test_exact_under_failures(self, small_road):
        table = LandmarkTable(small_road, [0, 77, 143])
        h = table.heuristic_to(100)
        failed = {(0, 1), (12, 13), (50, 51)}
        assert astar_distance(small_road, 3, 100, h, failed) == (
            pytest.approx(shortest_distance(small_road, 3, 100, failed))
        )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    target=st.integers(min_value=0, max_value=29),
)
def test_alt_astar_matches_dijkstra(seed, target):
    """Landmark A* is exact on random graphs (admissibility property)."""
    graph = random_graph(seed)
    table = LandmarkTable(graph, [1, 13, 27])
    h = table.heuristic_to(target)
    assert astar_distance(graph, 0, target, h) == pytest.approx(
        shortest_distance(graph, 0, target)
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    fail_seed=st.integers(min_value=0, max_value=5000),
)
def test_alt_astar_exact_under_failures(seed, fail_seed):
    """Failure-free landmark bounds stay admissible under failures."""
    graph = random_graph(seed)
    failed = random_failures_from(graph, fail_seed, 8)
    table = LandmarkTable(graph, [2, 17])
    h = table.heuristic_to(25)
    assert astar_distance(graph, 0, 25, h, failed) == pytest.approx(
        shortest_distance(graph, 0, 25, failed)
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_astar_path_distance_matches(seed):
    graph = random_graph(seed)
    table = LandmarkTable(graph, [5])
    h = table.heuristic_to(20)
    path = astar_path(graph, 0, 20, h)
    assert path is not None
    assert path_distance(graph, path) == pytest.approx(
        shortest_distance(graph, 0, 20)
    )
