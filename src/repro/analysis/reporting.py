"""Text and JSON renderings of a lint report."""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULE_CATALOGUE_VERSION, rule_catalogue


def to_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable listing: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in report.unsuppressed:
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"[{finding.severity}] {finding.message}"
        )
    if show_suppressed:
        for finding in report.suppressed:
            reason = finding.justification or "(no justification)"
            lines.append(
                f"{finding.location()}: {finding.rule_id} "
                f"[suppressed] {reason}"
            )
    unsuppressed = len(report.unsuppressed)
    lines.append(
        f"dsolint v{RULE_CATALOGUE_VERSION}: {len(report.files)} files, "
        f"{unsuppressed} finding{'s' if unsuppressed != 1 else ''}, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def to_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact schema)."""
    payload = {
        "tool": "dsolint",
        "catalogue_version": RULE_CATALOGUE_VERSION,
        "catalogue": rule_catalogue(),
        "files": report.files,
        "counts": {
            "files": len(report.files),
            "findings": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
        },
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
