"""A directed, weighted graph tailored for shortest-path workloads.

The paper formulates every structure over a directed graph ``G = (V, E)``
with non-negative real edge weights (Section 3.1).  :class:`DiGraph` is the
single graph representation used throughout this library: the input graph,
the distance graph ``D`` (Definition 4.1), and the second-level overlay
``H`` used by partial detouring are all instances of it.

Design notes
------------
* Nodes are integers.  They do not need to be contiguous, although the
  synthetic generators emit ``0..n-1``.
* Adjacency is stored as dict-of-dict in both directions
  (``successors`` and ``predecessors``), so that edge-weight lookup,
  failed-edge checks, and the reverse traversals needed by in-access node
  computation are all O(1) per edge.
* Weights are validated to be non-negative at insertion time, because every
  algorithm in the library (Dijkstra variants, landmark lower bounds)
  silently produces wrong answers on negative weights.
* Multi-edges collapse to the minimum weight, matching the paper's data
  preparation: "if there exist multiple edges defined over the same node
  pair, we only take the minimum weight edge" (Section 7.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import (
    EdgeNotFoundError,
    NegativeWeightError,
    NodeNotFoundError,
)

Edge = tuple[int, int]
WeightedEdge = tuple[int, int, float]


class DiGraph:
    """A mutable directed graph with non-negative edge weights.

    Parameters
    ----------
    edges:
        Optional iterable of ``(tail, head, weight)`` triples to insert at
        construction time.  Endpoints are added implicitly.

    Examples
    --------
    >>> g = DiGraph([(0, 1, 1.0), (1, 2, 2.5)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    >>> g.weight(1, 2)
    2.5
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(self, edges: Iterable[WeightedEdge] | None = None) -> None:
        self._succ: dict[int, dict[int, float]] = {}
        self._pred: dict[int, dict[int, float]] = {}
        self._num_edges = 0
        if edges is not None:
            for tail, head, weight in edges:
                self.add_edge(tail, head, weight)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Add ``node`` to the graph; a no-op if it already exists."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes(self, nodes: Iterable[int]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and every edge incident to it.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for head in list(self._succ[node]):
            self.remove_edge(node, head)
        for tail in list(self._pred[node]):
            self.remove_edge(tail, node)
        del self._succ[node]
        del self._pred[node]

    def has_node(self, node: int) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._succ

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(self._succ)

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._succ)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, tail: int, head: int, weight: float) -> None:
        """Insert a directed edge ``(tail, head)`` with ``weight``.

        Endpoints are created implicitly.  If the edge already exists the
        minimum of the old and new weight is kept (multi-edge collapse, as
        in the paper's data preparation).

        Raises
        ------
        NegativeWeightError
            If ``weight`` is negative.
        """
        if weight < 0:
            raise NegativeWeightError(tail, head, weight)
        self.add_node(tail)
        self.add_node(head)
        succ_tail = self._succ[tail]
        if head in succ_tail:
            if weight < succ_tail[head]:
                succ_tail[head] = weight
                self._pred[head][tail] = weight
        else:
            succ_tail[head] = weight
            self._pred[head][tail] = weight
            self._num_edges += 1

    def set_weight(self, tail: int, head: int, weight: float) -> None:
        """Overwrite the weight of an existing edge.

        Unlike :meth:`add_edge` this never keeps the old weight, which is
        what the maintenance strategies need for weight increases.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        NegativeWeightError
            If ``weight`` is negative.
        """
        if weight < 0:
            raise NegativeWeightError(tail, head, weight)
        if not self.has_edge(tail, head):
            raise EdgeNotFoundError(tail, head)
        self._succ[tail][head] = weight
        self._pred[head][tail] = weight

    def remove_edge(self, tail: int, head: int) -> None:
        """Remove the directed edge ``(tail, head)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        try:
            del self._succ[tail][head]
            del self._pred[head][tail]
        except KeyError:
            raise EdgeNotFoundError(tail, head) from None
        self._num_edges -= 1

    def has_edge(self, tail: int, head: int) -> bool:
        """Return whether the directed edge ``(tail, head)`` exists."""
        succ_tail = self._succ.get(tail)
        return succ_tail is not None and head in succ_tail

    def weight(self, tail: int, head: int) -> float:
        """Return the weight of edge ``(tail, head)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        try:
            return self._succ[tail][head]
        except KeyError:
            raise EdgeNotFoundError(tail, head) from None

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over ``(tail, head, weight)`` for every edge."""
        for tail, heads in self._succ.items():
            for head, weight in heads.items():
                yield tail, head, weight

    def edge_set(self) -> set[Edge]:
        """Return the set of ``(tail, head)`` pairs."""
        return {(tail, head) for tail, head, _ in self.edges()}

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhoods
    # ------------------------------------------------------------------
    def successors(self, node: int) -> dict[int, float]:
        """Return the ``{head: weight}`` map of out-edges of ``node``.

        The returned mapping is the live internal structure; callers must
        not mutate it.  This is the hot path of every Dijkstra variant, so
        no defensive copy is made.
        """
        try:
            return self._succ[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: int) -> dict[int, float]:
        """Return the ``{tail: weight}`` map of in-edges of ``node``."""
        try:
            return self._pred[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: int) -> int:
        """Return the number of out-edges of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: int) -> int:
        """Return the number of in-edges of ``node``."""
        return len(self.predecessors(node))

    def degree(self, node: int) -> int:
        """Return in-degree plus out-degree of ``node``."""
        return self.in_degree(node) + self.out_degree(node)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """Return a deep structural copy of this graph."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for tail, head, weight in self.edges():
            clone.add_edge(tail, head, weight)
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node)
        for tail, head, weight in self.edges():
            rev.add_edge(head, tail, weight)
        return rev

    def subgraph(self, nodes: Iterable[int]) -> "DiGraph":
        """Return the subgraph induced by ``nodes``.

        Nodes not present in this graph are ignored.
        """
        keep = {node for node in nodes if node in self._succ}
        sub = DiGraph()
        for node in keep:
            sub.add_node(node)
        for tail in keep:
            for head, weight in self._succ[tail].items():
                if head in keep:
                    sub.add_edge(tail, head, weight)
        return sub

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Return the average (out-)degree ``|E| / |V|``.

        Matches the "Avg. deg." column of the paper's Table 2 when the
        graph was symmetrised from an undirected one (each undirected edge
        counted once per direction over n nodes).
        """
        n = self.number_of_nodes()
        if n == 0:
            return 0.0
        return self._num_edges / n

    def max_degree(self) -> int:
        """Return the maximum total degree over all nodes."""
        best = 0
        for node in self._succ:
            d = len(self._succ[node]) + len(self._pred[node])
            if d > best:
                best = d
        return best

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(weight for _, _, weight in self.edges())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[int]:
        return iter(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._succ == other._succ

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
