"""Graph substrate: representation, I/O, generators, and transforms."""

from repro.graph.csr import (
    FrozenGraph,
    SearchArena,
    csr_dijkstra,
    csr_distance,
)
from repro.graph.digraph import DiGraph, Edge, WeightedEdge
from repro.graph.generators import (
    complete_network,
    gnm_random_graph,
    grid_network,
    path_network,
    ring_network,
    road_network,
    scale_free_network,
)
from repro.graph.io import (
    graph_from_string,
    read_dimacs,
    read_edge_list,
    write_dimacs,
    write_edge_list,
)
from repro.graph.transforms import (
    assign_uniform_weights,
    is_strongly_connected,
    largest_strongly_connected_subgraph,
    remove_self_loops,
    scale_weights,
    strongly_connected_components,
    symmetrize,
    without_edges,
)

__all__ = [
    "DiGraph",
    "FrozenGraph",
    "SearchArena",
    "csr_dijkstra",
    "csr_distance",
    "Edge",
    "WeightedEdge",
    "road_network",
    "scale_free_network",
    "gnm_random_graph",
    "ring_network",
    "path_network",
    "complete_network",
    "grid_network",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "graph_from_string",
    "symmetrize",
    "assign_uniform_weights",
    "scale_weights",
    "remove_self_loops",
    "strongly_connected_components",
    "largest_strongly_connected_subgraph",
    "is_strongly_connected",
    "without_edges",
]
