"""Protocol-conformance machines: the DSO6xx rule family.

Where DSO1xx–DSO4xx check local idioms and DSO5xx chases taints across
calls, DSO6xx checks small *state machines* against the code — the
hand-shaken conventions the serving plane's lock-free paths rest on:

``DSO601`` — write-then-stamp ordering.
    The shm result ring publishes a slot by writing payload lanes
    first and the stamp (``epoch``/``seq`` header) last; a reader that
    sees the stamp is guaranteed coherent payload bytes.  A payload
    store *after* the stamp store re-opens the torn-read window the
    protocol exists to close.  The machine tracks, per buffer, whether
    a stamp store (an indexed store whose value mentions an
    epoch/seq-named variable) has been seen, and flags any later
    payload store to the same buffer on the same path.

``DSO602`` — epoch-fenced cache admission.
    Every insert into a snapshot-scoped cache must carry the epoch the
    answer was computed under, or a stale answer survives a snapshot
    swap.  Flags ``<cache>.put(...)`` calls that pass no
    epoch-referencing argument.

``DSO603`` — lock covers its fields.
    A class that owns a ``threading.Lock`` and mutates a field under
    it is documenting "this field is lock-protected".  Any *other*
    mutation of that field outside the lock (``__init__`` excepted —
    no concurrent access before construction completes) is a data race
    waiting for a second thread.

All three are syntactic machines over one module — no project context
needed — so they run in the per-file pass and participate in the
ordinary suppression/profile machinery.
"""

from __future__ import annotations

import ast

#: Identifier fragments that mark a stamp store (DSO601).
_STAMP_WORDS = ("epoch", "seq")
#: The fragment whose store *publishes* the slot.
_PUBLISH_WORD = "epoch"

#: Method names that mutate their receiver in place (DSO603).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "move_to_end",
        "extend",
        "remove",
        "discard",
        "insert",
        "setdefault",
    }
)

#: Lock-like constructors (DSO603).
_LOCK_CTORS = frozenset({"Lock", "RLock"})


def _receiver_name(node: ast.expr) -> str | None:
    """Dotted name of an expression, or None for computed receivers."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _mentions(node: ast.expr, words: tuple[str, ...]) -> bool:
    """True when any identifier in ``node`` contains one of ``words``."""
    for child in ast.walk(node):
        name = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name is not None:
            lowered = name.lower()
            if any(word in lowered for word in words):
                return True
    return False


# ----------------------------------------------------------------------
# DSO601: write-then-stamp ordering
# ----------------------------------------------------------------------
def _subscript_store(
    statement: ast.stmt,
) -> tuple[str, ast.expr, ast.stmt] | None:
    """``(buffer, value_expr, statement)`` for an indexed store."""
    if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
        target = statement.targets[0]
        value = statement.value
    elif isinstance(statement, ast.AugAssign):
        target = statement.target
        value = statement.value
    else:
        return None
    if not isinstance(target, ast.Subscript):
        return None
    buffer = _receiver_name(target.value)
    if buffer is None:
        return None
    return (buffer, value, statement)


def check_write_then_stamp(
    tree: ast.Module,
) -> list[tuple[ast.stmt, str]]:
    """DSO601: payload stores after the publishing stamp store."""
    violations: list[tuple[ast.stmt, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            published: dict[str, int] = {}
            _scan_stamp_order(node.body, published, violations)
    return violations


def _scan_stamp_order(
    statements: list[ast.stmt],
    published: dict[str, int],
    violations: list[tuple[ast.stmt, str]],
) -> None:
    """Walk ``statements`` in program order tracking published buffers.

    ``published`` maps buffer name -> line of the stamp store that
    published it.  Branches are scanned with copies and merged by
    union (a stamp on either path publishes for everything after the
    join — conservative, matching the reader's view).
    """
    for statement in statements:
        store = _subscript_store(statement)
        if store is not None:
            buffer, value, node = store
            if _mentions(value, (_PUBLISH_WORD,)):
                published.setdefault(buffer, node.lineno)
            elif not _mentions(value, _STAMP_WORDS):
                stamp_line = published.get(buffer)
                if stamp_line is not None:
                    violations.append(
                        (
                            node,
                            f"payload store to {buffer!r} after its "
                            f"stamp was published on line {stamp_line}; "
                            "a reader that trusts the stamp can see "
                            "torn payload bytes — write payload lanes "
                            "first, stamp last",
                        )
                    )
            continue
        if isinstance(statement, (ast.If, ast.Try)):
            branches = _branches_of(statement)
            merged: dict[str, int] = dict(published)
            for branch in branches:
                state = dict(published)
                _scan_stamp_order(branch, state, violations)
                merged.update(state)
            published.clear()
            published.update(merged)
        elif isinstance(statement, (ast.For, ast.While, ast.With)):
            bodies = [statement.body]
            if not isinstance(statement, ast.With):
                bodies.append(statement.orelse)
            for body in bodies:
                _scan_stamp_order(body, published, violations)
        # Nested defs get their own pass from check_write_then_stamp.


def _branches_of(statement: ast.stmt) -> list[list[ast.stmt]]:
    if isinstance(statement, ast.If):
        return [statement.body, statement.orelse]
    if isinstance(statement, ast.Try):
        return [
            statement.body,
            *[handler.body for handler in statement.handlers],
            statement.orelse,
            statement.finalbody,
        ]
    return []


# ----------------------------------------------------------------------
# DSO602: epoch-fenced cache admission
# ----------------------------------------------------------------------
def check_epoch_fenced_puts(
    tree: ast.Module,
) -> list[tuple[ast.AST, str]]:
    """DSO602: ``<cache>.put(...)`` with no epoch-carrying argument."""
    violations: list[tuple[ast.AST, str]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "put"
        ):
            continue
        receiver = _receiver_name(node.func.value)
        if receiver is None or "cache" not in receiver.lower():
            continue
        carried = any(
            _mentions(argument, (_PUBLISH_WORD,))
            for argument in [
                *node.args,
                *[keyword.value for keyword in node.keywords],
            ]
        )
        if not carried:
            violations.append(
                (
                    node,
                    f"{receiver}.put(...) passes no snapshot-epoch "
                    "argument; an un-fenced insert survives a snapshot "
                    "swap and serves stale distances — thread the "
                    "current epoch through the insert",
                )
            )
    return violations


# ----------------------------------------------------------------------
# DSO603: lock covers its fields
# ----------------------------------------------------------------------
def _is_lock_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    callee = value.func
    name = None
    if isinstance(callee, ast.Name):
        name = callee.id
    elif isinstance(callee, ast.Attribute):
        name = callee.attr
    return name in _LOCK_CTORS


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Mutation:
    __slots__ = ("field", "node", "guarded", "method")

    def __init__(
        self, field: str, node: ast.AST, guarded: bool, method: str
    ) -> None:
        self.field = field
        self.node = node
        self.guarded = guarded
        self.method = method


def check_lock_coverage(
    tree: ast.Module,
) -> list[tuple[ast.AST, str]]:
    """DSO603: unguarded mutations of lock-covered fields."""
    violations: list[tuple[ast.AST, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            violations.extend(_check_class_locks(node))
    return violations


def _check_class_locks(klass: ast.ClassDef) -> list[tuple[ast.AST, str]]:
    lock_attrs = _lock_attrs_of(klass)
    if not lock_attrs:
        return []
    mutations = _collect_mutations(klass, lock_attrs)
    guarded_fields = {
        mutation.field for mutation in mutations if mutation.guarded
    }
    violations: list[tuple[ast.AST, str]] = []
    for mutation in mutations:
        if (
            mutation.field in guarded_fields
            and not mutation.guarded
            and mutation.method != "__init__"
        ):
            violations.append(
                (
                    mutation.node,
                    f"self.{mutation.field} is mutated under the lock "
                    "elsewhere in this class but not here; either take "
                    "the lock or document why this path is "
                    "single-threaded",
                )
            )
    return violations


def _lock_attrs_of(klass: ast.ClassDef) -> frozenset[str]:
    attrs: set[str] = set()
    for node in ast.walk(klass):
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                field = _self_attr(target)
                if field is not None:
                    attrs.add(field)
    return frozenset(attrs)


def _collect_mutations(
    klass: ast.ClassDef, lock_attrs: frozenset[str]
) -> list[_Mutation]:
    mutations: list[_Mutation] = []
    for item in klass.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        _walk_method(item, item.name, lock_attrs, False, mutations)
    return mutations


def _walk_method(
    node: ast.AST,
    method: str,
    lock_attrs: frozenset[str],
    under_lock: bool,
    mutations: list[_Mutation],
) -> None:
    """Recursive walk tracking whether we are inside ``with self.lock``."""
    for child in ast.iter_child_nodes(node):
        child_under_lock = under_lock
        if isinstance(child, ast.With):
            for item in child.items:
                expr = item.context_expr
                target = expr.func if isinstance(expr, ast.Call) else expr
                if isinstance(target, ast.Attribute):
                    if target.attr == "acquire":
                        target = target.value
                    field = _self_attr(target)
                    if field in lock_attrs:
                        child_under_lock = True
        _record_mutation(child, method, lock_attrs, under_lock, mutations)
        _walk_method(
            child, method, lock_attrs, child_under_lock, mutations
        )


def _record_mutation(
    node: ast.AST,
    method: str,
    lock_attrs: frozenset[str],
    under_lock: bool,
    mutations: list[_Mutation],
) -> None:
    field: str | None = None
    anchor: ast.AST = node
    if isinstance(node, ast.Assign):
        for target in node.targets:
            field = _self_attr(target)
            if field is not None:
                break
    elif isinstance(node, ast.AugAssign):
        field = _self_attr(node.target)
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATING_METHODS
    ):
        field = _self_attr(node.func.value)
    if field is None or field in lock_attrs:
        return
    mutations.append(_Mutation(field, anchor, under_lock, method))
