"""Temporal failure scenarios: recoverable failures over time.

The paper's motivating examples (road works, accidents, cut cables,
blocks) are *recoverable*: a failure appears, lives for a while, and
heals.  This module models that as a timeline of failure/recovery
events so the replay experiment can compare the two architectures the
paper contrasts:

* a **distance sensitivity oracle** ignores the timeline entirely and
  passes the currently-active failure set with each query;
* a **fully dynamic oracle** must apply every event to its index
  (stalling queries that arrive during updates).

Failures arrive as a Poisson process over the edge set and heal after
an exponential downtime, both deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.graph.digraph import DiGraph, Edge

FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True)
class FailureEvent:
    """One timeline event: an edge failing or recovering."""

    time: float
    edge: Edge
    kind: str  # FAIL or RECOVER


@dataclass
class FailureSchedule:
    """A time-ordered list of failure/recovery events.

    Attributes
    ----------
    events:
        Events sorted by time; every FAIL has a matching later RECOVER.
    duration:
        The scenario horizon; recoveries may extend past it.
    """

    events: list[FailureEvent] = field(default_factory=list)
    duration: float = 0.0

    def active_at(self, time: float) -> frozenset[Edge]:
        """The failure set in force at ``time``."""
        active: set[Edge] = set()
        for event in self.events:
            if event.time > time:
                break
            if event.kind == FAIL:
                active.add(event.edge)
            else:
                active.discard(event.edge)
        return frozenset(active)

    def changes(self) -> int:
        """Total number of index updates a dynamic oracle would apply."""
        return len(self.events)

    def peak_failures(self) -> int:
        """Maximum number of simultaneously failed edges."""
        active: set[Edge] = set()
        peak = 0
        for event in self.events:
            if event.kind == FAIL:
                active.add(event.edge)
                peak = max(peak, len(active))
            else:
                active.discard(event.edge)
        return peak


def generate_failure_schedule(
    graph: DiGraph,
    duration: float = 100.0,
    failures_per_unit: float = 1.0,
    mean_downtime: float = 5.0,
    seed: int = 0,
) -> FailureSchedule:
    """Sample a Poisson failure process with exponential downtimes.

    Parameters
    ----------
    graph:
        The network; failed edges are drawn uniformly from its edges.
    duration:
        Scenario horizon (arbitrary time units).
    failures_per_unit:
        Poisson arrival rate of new failures.
    mean_downtime:
        Mean of the exponential repair time.
    seed:
        Determinism seed.

    Raises
    ------
    ValueError
        If the graph has no edges or rates are non-positive.
    """
    if graph.number_of_edges() == 0:
        raise ValueError("cannot schedule failures on an edgeless graph")
    if failures_per_unit <= 0 or mean_downtime <= 0 or duration <= 0:
        raise ValueError("rates and duration must be positive")
    rng = random.Random(seed)
    edges = sorted(graph.edge_set())
    events: list[FailureEvent] = []
    clock = 0.0
    down: set[Edge] = set()
    recoveries: list[tuple[float, Edge]] = []
    while True:
        clock += -math.log(1.0 - rng.random()) / failures_per_unit
        if clock >= duration:
            break
        # Process due recoveries first so an edge can fail again.
        for recover_time, edge in list(recoveries):
            if recover_time <= clock:
                recoveries.remove((recover_time, edge))
                down.discard(edge)
        candidates = [edge for edge in edges if edge not in down]
        if not candidates:
            continue
        edge = candidates[rng.randrange(len(candidates))]
        down.add(edge)
        downtime = -math.log(1.0 - rng.random()) * mean_downtime
        events.append(FailureEvent(clock, edge, FAIL))
        recover_at = clock + downtime
        events.append(FailureEvent(recover_at, edge, RECOVER))
        recoveries.append((recover_at, edge))
    events.sort(key=lambda event: (event.time, event.kind, event.edge))
    return FailureSchedule(events=events, duration=duration)


def sample_query_times(
    count: int,
    duration: float,
    seed: int = 0,
) -> list[float]:
    """Uniformly random query arrival times over the scenario horizon."""
    rng = random.Random(seed)
    return sorted(rng.random() * duration for _ in range(count))


def sample_bursty_query_times(
    count: int,
    duration: float,
    bursts: int = 4,
    burst_fraction: float = 0.8,
    burst_width: float = 0.02,
    seed: int = 0,
) -> list[float]:
    """Bursty query arrivals: short spikes over a sparse background.

    Production traffic is not uniform — it piles up (the morning
    commute, an incident driving everyone to re-route at once).  This
    samples ``burst_fraction`` of the queries inside ``bursts`` narrow
    windows of width ``burst_width * duration`` (uniform within each
    window) and scatters the rest uniformly over the horizon.  Burst
    centres are themselves uniform draws, so two bursts may overlap —
    that is realistic, not a bug.  Deterministic given ``seed``.

    The resulting trace is what deadline admission control exists for:
    within a burst the instantaneous arrival rate far exceeds the
    sustainable service rate, and a replay that batches by arrival
    window will see deep queues exactly there.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if bursts < 1:
        raise ValueError("bursts must be >= 1")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError("burst_fraction must be in [0, 1]")
    if not 0.0 < burst_width <= 1.0:
        raise ValueError("burst_width must be in (0, 1]")
    rng = random.Random(seed)
    width = burst_width * duration
    centres = [rng.random() * duration for _ in range(bursts)]
    times: list[float] = []
    for _ in range(count):
        if rng.random() < burst_fraction:
            centre = centres[rng.randrange(len(centres))]
            tick = centre + (rng.random() - 0.5) * width
            times.append(min(max(tick, 0.0), duration))
        else:
            times.append(rng.random() * duration)
    return sorted(times)
