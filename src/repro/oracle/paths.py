"""Path retrieval for DISO-family oracles.

The paper defines the problem over distances, but its index contains
everything needed to also report the *witness path* (which real
applications want: Example 1's commuter needs the route, not only the
travel time).  A path query assembles:

1. the prefix ``s -> c_i`` from the forward bounded search's parents,
2. per overlay hop ``(u, v)``: the bounded tree path of ``u`` when
   ``u`` is unaffected, or a fresh failure-aware bounded search from
   ``u`` when it is affected (matching the lazily recomputed weight),
3. the suffix ``c_j -> t`` from the backward bounded search's parents.

The returned edge list is validated to exist in ``G``, avoid ``F``, and
sum exactly to the oracle's distance (property-tested).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.graph.digraph import Edge
from repro.oracle.base import INFINITY, normalize_failures
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra


def _walk_forward_parents(
    parent: dict[int, int | None], node: int
) -> list[Edge]:
    """Edges from the search source to ``node`` via forward parents."""
    edges: list[Edge] = []
    current = node
    while True:
        prev = parent[current]
        if prev is None:
            break
        edges.append((prev, current))
        current = prev
    edges.reverse()
    return edges


def _walk_backward_parents(
    parent: dict[int, int | None], node: int
) -> list[Edge]:
    """Edges from ``node`` to the search source of an "in" search.

    For a backward bounded search from ``t``, ``parent[x]`` is the node
    through which ``x`` reaches ``t``, so the path is
    ``x -> parent[x] -> ... -> t``.
    """
    edges: list[Edge] = []
    current = node
    while True:
        nxt = parent[current]
        if nxt is None:
            break
        edges.append((current, nxt))
        current = nxt
    return edges


def query_path(
    oracle: DISO,
    source: int,
    target: int,
    failed: set[Edge] | frozenset[Edge] | None = None,
) -> tuple[float, list[Edge] | None]:
    """Return ``(d(s, t, F), witness path)`` using ``oracle``'s index.

    The path is a list of edges of ``G`` avoiding ``F`` whose weights
    sum to the returned distance; ``None`` when the target is
    unreachable.  Works for any DISO-family oracle whose index is exact
    (DISO, DISO-B, ADISO); for the approximate variants the distance of
    the returned path matches *their* (approximate) answer semantics is
    not guaranteed, so prefer the exact oracles for path queries.
    """
    oracle._validate_endpoints(source, target)
    fail_set = normalize_failures(failed)
    if source == target:
        return 0.0, []

    affected = oracle.inverted_index.affected_nodes(fail_set)
    forward = bounded_dijkstra(
        oracle.graph, source, oracle.transit, fail_set, "out"
    )
    backward = bounded_dijkstra(
        oracle.graph, target, oracle.transit, fail_set, "in"
    )

    local = forward.dist.get(target, INFINITY)

    # Overlay Dijkstra with parent tracking.
    overlay = oracle.distance_graph.graph
    dist: dict[int, float] = {}
    parent: dict[int, int | None] = {}
    heap: list[tuple[float, int]] = []
    for node, d in forward.access.items():
        dist[node] = d
        parent[node] = None
        heappush(heap, (d, node))
    settled: set[int] = set()
    best_total = local
    best_exit: int | None = None
    recompute_cache: dict[int, dict[int, float]] = {}

    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        if d >= best_total:
            break
        settled.add(node)
        tail_distance = backward.access.get(node)
        if tail_distance is not None and d + tail_distance < best_total:
            best_total = d + tail_distance
            best_exit = node
        if node in affected:
            weights = recompute_cache.get(node)
            if weights is None:
                weights = oracle._recomputed_weights(node, fail_set)
                recompute_cache[node] = weights
        else:
            weights = overlay.successors(node)
        for head, weight in weights.items():
            if head in settled or head == node:
                continue
            candidate = d + weight
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                parent[head] = node
                heappush(heap, (candidate, head))

    if best_exit is None:
        # The direct transit-free answer (or unreachable).
        if local == INFINITY:
            return INFINITY, None
        return local, _walk_forward_parents(forward.parent, target)

    # Reconstruct: overlay node chain from the entry access node.
    chain = [best_exit]
    current = best_exit
    while parent[current] is not None:
        current = parent[current]
        chain.append(current)
    chain.reverse()
    entry = chain[0]

    edges: list[Edge] = []
    edges.extend(_walk_forward_parents(forward.parent, entry))
    for hop_tail, hop_head in zip(chain, chain[1:]):
        edges.extend(_expand_overlay_hop(oracle, hop_tail, hop_head, fail_set, affected))
    edges.extend(_walk_backward_parents(backward.parent, best_exit))
    # best_exit is only ever set when the overlay route strictly beats
    # the direct transit-free answer, so `edges` is the witness.
    return best_total, edges


def _expand_overlay_hop(
    oracle: DISO,
    tail: int,
    head: int,
    failed: frozenset[Edge],
    affected: set[int],
) -> list[Edge]:
    """Expand one distance-graph edge into its underlying ``G`` path."""
    if tail not in affected:
        tree_path = oracle.trees.tree(tail).path_to(head)
        if tree_path is not None:
            return tree_path
    fresh = bounded_dijkstra(oracle.graph, tail, oracle.transit, failed, "out")
    expanded = _walk_forward_parents(fresh.parent, head) if head in fresh.dist else None
    if expanded is None:
        raise AssertionError(
            f"overlay hop ({tail}, {head}) has no underlying path; "
            "index inconsistent with graph"
        )
    return expanded


def validate_path(
    oracle: DISO,
    path: list[Edge],
    source: int,
    target: int,
    failed: set[Edge] | frozenset[Edge] | None = None,
) -> float:
    """Check a witness path's integrity; return its total distance.

    Raises
    ------
    ValueError
        If the path is disconnected, uses a missing or failed edge, or
        does not run from ``source`` to ``target``.
    """
    fail_set = normalize_failures(failed)
    if not path:
        if source != target:
            raise ValueError("empty path for distinct endpoints")
        return 0.0
    if path[0][0] != source:
        raise ValueError(f"path starts at {path[0][0]}, not {source}")
    if path[-1][1] != target:
        raise ValueError(f"path ends at {path[-1][1]}, not {target}")
    total = 0.0
    for (tail, head), nxt in zip(path, path[1:] + [None]):
        if not oracle.graph.has_edge(tail, head):
            raise ValueError(f"edge ({tail}, {head}) is not in the graph")
        if (tail, head) in fail_set:
            raise ValueError(f"edge ({tail}, {head}) is failed")
        total += oracle.graph.weight(tail, head)
        if nxt is not None and nxt[0] != head:
            raise ValueError(
                f"path disconnected between ({tail}, {head}) and {nxt}"
            )
    return total
