"""Endpoint caching for repeated-endpoint workloads (paper Example 1).

The paper's first motivating scenario is a user asking "multiple times
for the same start and destination with different avoided roads".  For
such workloads the dominant per-query cost — the two bounded Dijkstra
runs computing the access nodes of ``s`` and ``t`` — is *recomputable
from cache* whenever the failure set does not touch the cached bounded
region:

* the forward bounded search from ``s`` explores a fixed edge set
  ``R_out(s)`` (independent of ``F`` as long as no edge of it fails);
* if ``F ∩ R_out(s) = ∅``, the failure-free access map *and* the
  direct-answer distances are still exact under ``F`` (deleting edges
  outside the explored region cannot create shorter paths, and every
  explored path survives);
* membership of ``F`` in the cached region costs ``O(|F|)`` set
  lookups — the same flavour of check as the inverted tree index.

:class:`CachingDISO` wraps this around :class:`DISO`'s query algorithm.
It is exact (property-tested) and never mutates shared state during
queries except the endpoint cache itself, which is guarded for
concurrent use.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.graph.digraph import DiGraph, Edge
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.oracle.diso import DISO
from repro.pathing.bounded import BoundedSearchResult, bounded_dijkstra


class _EndpointCache:
    """LRU cache of bounded search results keyed by (node, direction)."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: OrderedDict[
            tuple[int, str], tuple[BoundedSearchResult, frozenset[Edge]]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def lookup(
        self,
        node: int,
        direction: str,
        failed: frozenset[Edge],
    ) -> BoundedSearchResult | None:
        """Return a cached result valid under ``failed``, else None."""
        key = (node, direction)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            result, region = entry
            if failed and not failed.isdisjoint(region):
                # The failures touch the cached region: recompute.
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def has_entry(self, node: int, direction: str) -> bool:
        """Whether any (possibly F-invalid) entry exists for this key."""
        with self._lock:
            return (node, direction) in self._entries

    def store(
        self,
        node: int,
        direction: str,
        result: BoundedSearchResult,
        region: frozenset[Edge],
    ) -> None:
        key = (node, direction)
        with self._lock:
            self._entries[key] = (result, region)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot-consistent counters, read under one lock hold.

        Reading ``hits`` and ``misses`` as two separate property
        accesses can interleave with a concurrent ``lookup`` and
        report a state the cache never passed through (hit counted,
        matching miss not yet); this returns both from a single
        critical section.
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._entries),
            }

    def __len__(self) -> int:
        return len(self._entries)


def _explored_region(
    graph: DiGraph,
    result: BoundedSearchResult,
) -> frozenset[Edge]:
    """All edges the bounded search could have relaxed.

    The search's behaviour depends exactly on the edges incident to the
    nodes it expanded (settled non-boundary nodes), in its direction of
    travel, *plus* the edges it relaxed into boundary nodes — all of
    which have their tail (resp. head) among expanded nodes, so taking
    every out-edge (resp. in-edge) of every settled node that was
    expanded is a sound over-approximation.  Any failure outside this
    set leaves the search's outcome unchanged.
    """
    forward = result.direction == "out"
    region: set[Edge] = set()
    boundary = set(result.access)
    for node in result.dist:
        if node in boundary and node != result.source:
            continue  # never expanded
        if forward:
            for head in graph.successors(node):
                region.add((node, head))
        else:
            for tail in graph.predecessors(node):
                region.add((tail, node))
    return frozenset(region)


class CachingDISO(DISO):
    """DISO with an endpoint cache for repeated (s, t) workloads.

    Parameters
    ----------
    graph, tau, theta, transit:
        As in :class:`DISO`.
    cache_size:
        Maximum number of cached (endpoint, direction) searches.

    Notes
    -----
    The cache is *only* a fast path: whenever the failure set touches a
    cached region, the query recomputes exactly like plain DISO.  After
    permanent maintenance operations call :meth:`invalidate_cache`.
    """

    name = "DISO-C"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
        cache_size: int = 1024,
    ) -> None:
        super().__init__(graph, tau=tau, theta=theta, transit=transit)
        self._cache = _EndpointCache(cache_size)

    @property
    def cache_hits(self) -> int:
        """Number of bounded searches served from cache."""
        return self._cache.stats()["hits"]

    @property
    def cache_misses(self) -> int:
        """Number of bounded searches that had to run."""
        return self._cache.stats()["misses"]

    def cache_stats(self) -> dict[str, int]:
        """One snapshot-consistent read of hits/misses/entries."""
        return self._cache.stats()

    def invalidate_cache(self) -> None:
        """Drop every cached endpoint search (after graph mutation)."""
        self._cache.clear()

    def _bounded_search(
        self,
        node: int,
        direction: str,
        failed: frozenset[Edge],
    ) -> BoundedSearchResult:
        cached = self._cache.lookup(node, direction, failed)
        if cached is not None:
            return cached
        if not self._cache.has_entry(node, direction):
            # First sighting of this endpoint: cache the failure-free
            # search — its region check is what validates reuse under
            # every future failure set.
            clean = bounded_dijkstra(
                self.graph, node, self.transit, None, direction
            )
            region = _explored_region(self.graph, clean)
            self._cache.store(node, direction, clean, region)
            if not failed or failed.isdisjoint(region):
                return clean
        # The failures touch this endpoint's region: compute under F.
        return bounded_dijkstra(
            self.graph, node, self.transit, set(failed), direction
        )

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        affected = self._find_affected_nodes(fail_set, stats)
        stats.affected_count = len(affected)

        access_start = time.perf_counter()
        forward = self._bounded_search(source, "out", fail_set)
        backward = self._bounded_search(target, "in", fail_set)
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled = forward.settled_count + backward.settled_count

        best = forward.dist.get(target, INFINITY)
        overlay_best = self._overlay_search(
            forward.access,
            backward.access,
            fail_set,
            affected,
            stats,
            best,
            target=target,
        )
        if overlay_best < best:
            best = overlay_best
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)
