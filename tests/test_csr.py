"""Tests for the CSR snapshot and the static Dijkstra baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dijkstra_oracle import DijkstraOracle, StaticDijkstraOracle
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.csr import FrozenGraph, csr_dijkstra, csr_distance
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import dijkstra
from repro.workload.queries import generate_queries
from util import random_failures_from, random_graph


class TestFrozenGraph:
    def test_counts_match(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        assert frozen.number_of_nodes() == small_road.number_of_nodes()
        assert frozen.number_of_edges() == small_road.number_of_edges()

    def test_successors_match(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        for node in list(small_road.nodes())[:20]:
            expected = sorted(small_road.successors(node).items())
            assert frozen.successors(node) == expected
            assert frozen.out_degree(node) == len(expected)

    def test_non_contiguous_labels(self):
        g = DiGraph([(100, 7, 1.5), (7, 42, 2.5), (42, 100, 3.5)])
        frozen = FrozenGraph.from_digraph(g)
        assert frozen.number_of_nodes() == 3
        assert frozen.successors(100) == [(7, 1.5)]

    def test_edge_id_roundtrip(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        ids = set()
        for tail, head, _ in list(small_road.edges())[:50]:
            ids.add(frozen.edge_id(tail, head))
        assert len(ids) == 50  # edge ids are distinct

    def test_edge_id_missing_raises(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        with pytest.raises(EdgeNotFoundError):
            frozen.edge_id(0, 0)
        with pytest.raises(NodeNotFoundError):
            frozen.edge_id(99_999, 0)

    def test_edge_ids_drop_unknown(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        tail, head, _ = next(iter(small_road.edges()))
        ids = frozen.edge_ids({(tail, head), (-1, -2)})
        assert len(ids) == 1


class TestCsrDijkstra:
    def test_matches_dict_dijkstra(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        expected, _ = dijkstra(small_road, 0)
        got = csr_dijkstra(frozen, 0)
        assert set(got) == set(expected)
        for node, d in expected.items():
            assert got[node] == pytest.approx(d)

    def test_with_failures(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        failed = {(0, 1), (20, 21)}
        live = {e for e in failed if small_road.has_edge(*e)}
        expected, _ = dijkstra(small_road, 0, failed=live)
        got = csr_dijkstra(frozen, 0, frozen.edge_ids(live))
        assert set(got) == set(expected)

    def test_target_early_exit(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        got = csr_dijkstra(frozen, 0, target_label=5)
        assert 5 in got

    def test_csr_distance(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        expected, _ = dijkstra(small_road, 0, target=100)
        assert csr_distance(frozen, 0, 100) == pytest.approx(
            expected[100]
        )

    def test_unreachable(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(2)
        frozen = FrozenGraph.from_digraph(g)
        assert csr_distance(frozen, 0, 2) == float("inf")

    def test_missing_source_raises(self, small_road):
        frozen = FrozenGraph.from_digraph(small_road)
        with pytest.raises(NodeNotFoundError):
            csr_dijkstra(frozen, 99_999)


class TestStaticDijkstraOracle:
    def test_matches_dijkstra_oracle(self, small_road):
        plain = DijkstraOracle(small_road)
        static = StaticDijkstraOracle(small_road)
        queries = generate_queries(small_road, 10, f_gen=3, p=0.003, seed=2)
        for q in queries:
            assert static.query(q.source, q.target, q.failed) == (
                pytest.approx(plain.query(q.source, q.target, q.failed))
            )

    def test_preprocessing_recorded(self, small_road):
        static = StaticDijkstraOracle(small_road)
        assert static.preprocess_seconds > 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
)
def test_csr_matches_dict_random(seed, fail_seed):
    graph = random_graph(seed)
    frozen = FrozenGraph.from_digraph(graph)
    failed = random_failures_from(graph, fail_seed, 8)
    expected, _ = dijkstra(graph, 0, failed=failed)
    got = csr_dijkstra(frozen, 0, frozen.edge_ids(failed))
    assert set(got) == set(expected)
    for node, d in expected.items():
        assert got[node] == pytest.approx(d)
