"""Tests for the multi-level hierarchical DISO."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.base import QueryStats
from repro.oracle.diso import DISO
from repro.oracle.hierarchy import HierarchicalDISO
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestConstruction:
    def test_levels_built(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2, 2)
        )
        assert oracle.level_count >= 2

    def test_covers_are_nested(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2, 2)
        )
        previous = oracle.transit
        for level in oracle.levels:
            assert level.overlay.transit <= previous
            previous = level.overlay.transit

    def test_degenerate_levels_skipped(self):
        from repro.graph.generators import path_network

        # A tiny path graph cannot support further reduction forever.
        g = path_network(6)
        oracle = HierarchicalDISO(
            g, tau=1, theta=5.0, extra_level_taus=(2, 2, 2, 2)
        )
        assert oracle.level_count >= 1  # never crashes

    def test_index_entries_include_levels(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2,)
        )
        if oracle.levels:
            assert oracle.index_entries()["h_overlay_nodes"] > 0


class TestQueries:
    def test_matches_diso(self, small_road):
        base = DISO(small_road, tau=3, theta=1.0)
        oracle = HierarchicalDISO(
            small_road, transit=base.transit, extra_level_taus=(2, 2)
        )
        failed = {(0, 1), (40, 41), (100, 101)}
        for s, t in [(0, 143), (12, 95), (143, 7)]:
            assert oracle.query(s, t, failed) == pytest.approx(
                base.query(s, t, failed)
            )

    def test_no_index_mutation(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2,)
        )
        snapshots = [
            {(t, h): w for t, h, w in level.overlay.graph.edges()}
            for level in oracle.levels
        ]
        oracle.query(0, 143, failed={(0, 1), (50, 51)})
        for level, before in zip(oracle.levels, snapshots):
            after = {(t, h): w for t, h, w in level.overlay.graph.edges()}
            assert after == before


class TestAffectedPropagation:
    def test_no_failures_nothing_affected(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2,)
        )
        per_level = oracle._affected_by_level(frozenset(), QueryStats())
        assert all(not level for level in per_level)

    def test_propagation_is_monotone_in_failures(self, small_road):
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2,)
        )
        few = frozenset(random_failures_from(small_road, 1, 3))
        many = frozenset(few | random_failures_from(small_road, 2, 15))
        per_few = oracle._affected_by_level(few, QueryStats())
        per_many = oracle._affected_by_level(many, QueryStats())
        for a, b in zip(per_few, per_many):
            assert a <= b

    def test_level2_covers_level1_dependencies(self, small_road):
        """Every level-2 node whose tree touches an affected level-1
        node is marked affected (soundness of the skip rule)."""
        oracle = HierarchicalDISO(
            small_road, tau=3, theta=1.0, extra_level_taus=(2,)
        )
        if not oracle.levels:
            pytest.skip("graph too small for a second level")
        failed = frozenset(random_failures_from(small_road, 5, 10))
        per_level = oracle._affected_by_level(failed, QueryStats())
        level = oracle.levels[0]
        for lower in per_level[0]:
            for root in level.node_to_roots.get(lower, ()):
                assert root in per_level[1]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20_000),
    fail_seed=st.integers(min_value=0, max_value=20_000),
    fail_count=st.integers(min_value=0, max_value=12),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_hierarchical_exact_random(seed, fail_seed, fail_count, s, t):
    """Exactness with arbitrary failures across the whole hierarchy."""
    graph = random_graph(seed)
    oracle = HierarchicalDISO(
        graph, tau=2, theta=4.0, extra_level_taus=(1, 1)
    )
    failed = random_failures_from(graph, fail_seed, fail_count)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)
