"""Bench: live-scenario replay — the paper's motivation, quantified.

Replays a Poisson failure/recovery timeline through a distance
sensitivity oracle (no updates ever) and through a fully dynamic oracle
(update per event), accounting for all work each does.  The motivating
claim — stalling updates dominate the dynamic oracle's cost even when
most failures are irrelevant to any query — is asserted.
"""

from __future__ import annotations

from repro.experiments.replay import format_replay, run_replay

from bench_util import SCALE, SEED, write_result


def test_replay_scenario(benchmark):
    data = benchmark.pedantic(
        lambda: run_replay(
            dataset="NY",
            scale=SCALE,
            duration=60.0,
            failures_per_unit=0.5,
            mean_downtime=8.0,
            query_count=25,
            seed=SEED,
            fddo_landmarks=12,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("replay", format_replay(data))
    # The dynamic oracle's update work alone dwarfs the DSO's entire
    # query-time budget for the same scenario.
    assert data["fdd_update_seconds"] > data["dso_total_seconds"]
    # And the DSO never performed an index update at all (by design).
    assert data["dso_query_seconds"] == data["dso_total_seconds"]
