"""Build profiling: where a parallel index build spends its time.

A :class:`BuildReport` accumulates per-phase wall time, per-worker
utilization, and shard-size statistics while the coordinator runs, and
serializes to JSON for ``repro build --jobs N --profile`` and
``benchmarks/bench_build.py``.  The four phases mirror the build
pipeline:

* ``landmark_selection`` — input sparsification (DISO-S), the ISC path
  cover, and landmark selection: everything that decides *what* the
  work units are;
* ``spt_fanout`` — the parallel part: per-landmark bounded SPTs and
  landmark Dijkstra pairs, in workers or inline;
* ``assembly`` — decoding shards and merging them, in sorted landmark
  order, into the overlay, trees, and landmark table;
* ``sparsify_overlay`` — the coordinator-side tail that needs the full
  merged ``D``: DISO-S overlay sparsification / ADISO-P's second
  overlay ``H`` (≈ 0 for plain DISO/ADISO).

The report is observability only: nothing in it feeds back into the
index, so timing jitter can never perturb the determinism contract.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

PHASES = (
    "landmark_selection",
    "spt_fanout",
    "assembly",
    "sparsify_overlay",
)


@dataclass
class BuildWorkerStats:
    """One pool slot's contribution (slot, not process: restarts keep
    the slot and accumulate)."""

    index: int
    pid: int = 0
    units: int = 0
    chunks: int = 0
    busy_seconds: float = 0.0
    load_seconds: float = 0.0
    restarts: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "pid": self.pid,
            "units": self.units,
            "chunks": self.chunks,
            "busy_seconds": round(self.busy_seconds, 6),
            "load_seconds": round(self.load_seconds, 6),
            "restarts": self.restarts,
        }


@dataclass
class BuildReport:
    """Profile of one ``build_parallel`` run."""

    family: str
    jobs: int
    start_method: str | None = None
    oracle: str = ""
    wall_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    total_units: int = 0
    built_units: int = 0
    resumed_units: int = 0
    corrupt_shards: int = 0
    shard_bytes: list[int] = field(default_factory=list)
    workers: list[BuildWorkerStats] = field(default_factory=list)

    @contextmanager
    def timed(self, phase: str):
        """Accumulate wall time under ``phase`` (one of :data:`PHASES`)."""
        started = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - started
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + elapsed
            )

    def shard_stats(self) -> dict:
        """Size distribution of the shards built (not resumed) this run."""
        sizes = sorted(self.shard_bytes)
        if not sizes:
            return {
                "count": 0, "total_bytes": 0,
                "min_bytes": 0, "median_bytes": 0, "max_bytes": 0,
            }
        return {
            "count": len(sizes),
            "total_bytes": sum(sizes),
            "min_bytes": sizes[0],
            "median_bytes": sizes[len(sizes) // 2],
            "max_bytes": sizes[-1],
        }

    def utilization(self) -> dict[str, float]:
        """Per-worker busy fraction of the fan-out phase's wall time."""
        fanout = self.phase_seconds.get("spt_fanout", 0.0)
        if fanout <= 0.0:
            return {}
        return {
            str(stats.index): round(stats.busy_seconds / fanout, 4)
            for stats in self.workers
        }

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "oracle": self.oracle,
            "jobs": self.jobs,
            "start_method": self.start_method,
            "wall_seconds": round(self.wall_seconds, 6),
            "phase_seconds": {
                phase: round(self.phase_seconds.get(phase, 0.0), 6)
                for phase in PHASES
            },
            "total_units": self.total_units,
            "built_units": self.built_units,
            "resumed_units": self.resumed_units,
            "corrupt_shards": self.corrupt_shards,
            "shards": self.shard_stats(),
            "worker_utilization": self.utilization(),
            "workers": [stats.to_dict() for stats in self.workers],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def format_report(report: BuildReport) -> str:
    """Human-readable profile table (what ``--profile`` prints)."""
    data = report.to_dict()
    lines = [
        f"build profile: family={data['family']} oracle={data['oracle']} "
        f"jobs={data['jobs']} start_method={data['start_method']}",
        f"units: total={data['total_units']} built={data['built_units']} "
        f"resumed={data['resumed_units']} "
        f"corrupt={data['corrupt_shards']}",
        f"{'phase':>20} {'seconds':>10} {'share':>7}",
    ]
    wall = data["wall_seconds"] or 1.0
    for phase in PHASES:
        seconds = data["phase_seconds"][phase]
        lines.append(
            f"{phase:>20} {seconds:>10.4f} {seconds / wall:>6.1%}"
        )
    lines.append(f"{'wall':>20} {data['wall_seconds']:>10.4f} {'100%':>7}")
    shards = data["shards"]
    lines.append(
        f"shards: {shards['count']} built, {shards['total_bytes']}B total "
        f"(min {shards['min_bytes']} / median {shards['median_bytes']} / "
        f"max {shards['max_bytes']})"
    )
    for stats in data["workers"]:
        busy = data["worker_utilization"].get(str(stats["index"]), 0.0)
        lines.append(
            f"worker {stats['index']}: pid={stats['pid']} "
            f"units={stats['units']} chunks={stats['chunks']} "
            f"busy={stats['busy_seconds']:.4f}s ({busy:.1%} of fan-out) "
            f"restarts={stats['restarts']}"
        )
    return "\n".join(lines)
