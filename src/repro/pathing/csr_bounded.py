"""Bounded Dijkstra compiled to the CSR snapshot (frozen query plane).

:func:`csr_bounded_dijkstra` mirrors :func:`repro.pathing.bounded
.bounded_dijkstra` semantics exactly — settled transit nodes other than
the source are not expanded, failed edges are skipped, access distances
are exact — but runs entirely on integers over a :class:`FrozenGraph`:

* nodes are dense indices, so per-node state lives in flat arrays;
* transit membership is one ``bytearray`` probe instead of a set lookup;
* failures are integer edge ids (one membership test per relaxation),
  translated once per query;
* the backward direction iterates the reverse-adjacency CSR, whose rows
  carry the *forward* edge ids, so the same failure set works unchanged;
* all O(n) scratch state comes from a generation-stamped
  :class:`SearchArena`, so repeated queries allocate only the heap.

This is the access-phase workhorse of the frozen DISO/ADISO engines
(:mod:`repro.oracle.frozen`).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.graph.csr import INFINITY, FrozenGraph, SearchArena


class CSRBoundedResult:
    """Outcome of one CSR bounded Dijkstra run.

    Attributes
    ----------
    source:
        Dense index of the start node.
    direction:
        ``"out"`` or ``"in"``.
    access:
        ``{transit_dense_index: access_distance}`` — the access-node
        superset ``A*`` with exact distances under the failure set.
    settled_count:
        Number of settled nodes (the ``c_B`` cost proxy).
    arena / generation:
        The arena holding the search's distance labels and the stamp
        they are valid under.  :meth:`distance` reads them; the labels
        die the moment the arena starts another search.
    """

    __slots__ = ("source", "direction", "access", "settled_count",
                 "arena", "generation")

    def __init__(
        self,
        source: int,
        direction: str,
        access: dict[int, float],
        settled_count: int,
        arena: SearchArena,
        generation: int,
    ) -> None:
        self.source = source
        self.direction = direction
        self.access = access
        self.settled_count = settled_count
        self.arena = arena
        self.generation = generation

    def distance(self, index: int) -> float:
        """Labelled distance of dense ``index``, or ``inf`` if unreached.

        Matches ``BoundedSearchResult.dist.get(node, INFINITY)``: at
        termination every labelled node's distance is final.  Only valid
        until the arena begins its next search.
        """
        if self.arena.generation != self.generation:
            raise RuntimeError(
                "arena has been reused; bounded-search labels are stale"
            )
        if self.arena.seen[index] == self.generation:
            return self.arena.dist[index]
        return INFINITY


def csr_bounded_dijkstra(
    frozen: FrozenGraph,
    source: int,
    transit_flags: bytearray,
    failed_edge_ids: frozenset[int] | set[int] | None = None,
    direction: str = "out",
    arena: SearchArena | None = None,
) -> CSRBoundedResult:
    """Run the bounded Dijkstra's algorithm over a CSR snapshot.

    Parameters
    ----------
    frozen:
        The CSR snapshot of ``G``.
    source:
        *Dense index* of the start node (for ``direction="in"``, the
        destination whose in-access nodes are wanted).
    transit_flags:
        ``bytearray`` of length ``|V|`` with 1 at transit indices.
    failed_edge_ids:
        Failed edges as integer edge ids of ``frozen`` (always the
        forward orientation, also for ``direction="in"``).
    direction:
        ``"out"`` to search along out-edges, ``"in"`` along in-edges.
    arena:
        Scratch state sized ``|V|``; a private one is allocated when
        omitted.

    Raises
    ------
    ValueError
        If ``direction`` is invalid, ``source`` is out of range, or the
        arena size does not match the graph.
    """
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    n = len(frozen.node_ids)
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range for n={n}")
    if arena is None:
        arena = SearchArena(n)
    elif arena.size != n:
        raise ValueError(
            f"arena size {arena.size} does not match graph size {n}"
        )

    adjacency = (
        frozen._adjacency if direction == "out" else frozen._radjacency
    )
    check_failed = bool(failed_edge_ids)
    gen = arena.begin()
    dist = arena.dist
    seen = arena.seen
    push = heappush
    pop = heappop

    access: dict[int, float] = {}
    seen[source] = gen
    dist[source] = 0.0
    if transit_flags[source]:
        access[source] = 0.0

    settled_count = 0
    heap: list[tuple[float, int]] = [(0.0, source)]
    # Strict-improvement pushes make ``d > dist[node]`` a complete
    # staleness (and hence settlement) test — no ``done`` lane needed.
    while heap:
        d, node = pop(heap)
        if d > dist[node]:
            continue
        settled_count += 1
        if transit_flags[node] and node != source:
            access[node] = d
            # Do not traverse beyond transit nodes.
            continue
        for other, weight, pos in adjacency[node]:
            if check_failed and pos in failed_edge_ids:
                continue
            candidate = d + weight
            if seen[other] != gen:
                seen[other] = gen
                dist[other] = candidate
                push(heap, (candidate, other))
            elif candidate < dist[other]:
                dist[other] = candidate
                push(heap, (candidate, other))
    return CSRBoundedResult(
        source=source,
        direction=direction,
        access=access,
        settled_count=settled_count,
        arena=arena,
        generation=gen,
    )


def csr_access_batch(
    frozen: FrozenGraph,
    prepared: list[tuple[int, int, frozenset[int]]],
    transit_flags: bytearray,
    rank_of: list[int],
    num_transit: int,
    forward_arena: SearchArena | None = None,
    backward_arena: SearchArena | None = None,
) -> tuple[
    tuple[list[int], list[int], list[float]],
    tuple[list[int], list[float]],
    list[float],
]:
    """Run both access-phase searches for a whole batch, packed flat.

    The batched overlay kernel (:mod:`repro.oracle.batch_kernel`) wants
    its seeds and tails as parallel flat lists it can turn into arrays
    in one shot, not as ``len(prepared) * 2`` little dicts.  This runs
    the same :func:`csr_bounded_dijkstra` per query — access distances
    stay bitwise-identical to the scalar path — and only changes the
    packaging:

    * ``seeds``: ``(query_positions, ranks, distances)`` of every
      forward access node, in *transit-rank* space;
    * ``tails``: ``(keys, distances)`` of every backward access node,
      keyed ``query_position * num_transit + rank`` — the kernel's
      per-(query, rank) key space;
    * ``upper``: the locality-filter answer ``d_fwd(t)`` per query
      (``inf`` when the target is outside the source's transit-free
      region).

    ``prepared`` holds ``(source_index, target_index, failed_edge_ids)``
    triples in dense index space; both arenas are reused across the
    whole batch, so the batch allocates two heaps per query and nothing
    else.
    """
    seed_queries: list[int] = []
    seed_ranks: list[int] = []
    seed_dists: list[float] = []
    tail_keys: list[int] = []
    tail_dists: list[float] = []
    upper: list[float] = []
    for position, (source, target, failed_ids) in enumerate(prepared):
        forward = csr_bounded_dijkstra(
            frozen, source, transit_flags, failed_ids, "out", forward_arena
        )
        backward = csr_bounded_dijkstra(
            frozen, target, transit_flags, failed_ids, "in", backward_arena
        )
        upper.append(forward.distance(target))
        base = position * num_transit
        for node, distance in forward.access.items():
            seed_queries.append(position)
            seed_ranks.append(rank_of[node])
            seed_dists.append(distance)
        for node, distance in backward.access.items():
            tail_keys.append(base + rank_of[node])
            tail_dists.append(distance)
    return (
        (seed_queries, seed_ranks, seed_dists),
        (tail_keys, tail_dists),
        upper,
    )
