"""Per-file function/class summaries for whole-program analysis.

The inter-procedural rules (DSO5xx, :mod:`repro.analysis.dataflow`)
cannot afford to re-analyse every callee body at every call site, so
each file is compiled once into a compact, JSON-serializable *summary*:
for every function, an abstract term for each returned value, each
serialization-sink argument, each process-dispatch payload, and each
arithmetic use of a call result; for every class, an abstract term per
``self.<attr>`` assignment.  The dataflow layer then evaluates these
terms against each other across the project call graph.

Term language
-------------
A term is a small dict with a ``"k"`` kind tag:

``{"k": "clean"}``
    Nothing interesting flows here.
``{"k": "set"}``
    An unordered container (set/frozenset) — hash iteration order.
``{"k": "cap", "of": T}``
    An *ordered capture* of iterating ``T`` (``list(T)``, a
    comprehension over ``T``, ``array("d", T)``): the order of the
    result is meaningful, so if ``T`` is unordered the capture is
    order-tainted.
``{"k": "param", "i": N}``
    The function's N-th parameter (``self`` included for methods) —
    resolved against the actual argument at each call site.
``{"k": "call", "fn": "a.b.f", "args": [T...]}``
    The result of calling ``fn`` (a raw dotted name, resolved later
    via the module's import table) with the given argument terms.
``{"k": "sentinel"}``
    The NaN error sentinel (``float("nan")``, ``math.nan``,
    ``QUERY_ERROR``) or arithmetic derived from it.
``{"k": "unpicklable", "why": "..."}``
    A value pickle rejects (lock, memoryview, shared-memory handle,
    open file, lambda, ...).
``{"k": "tuple", "items": [T...]}``
    A container literal / joined branches — tags are the union of the
    items' tags.

Everything the extractor is unsure about becomes ``clean``: false
negatives are backstopped by the parity property tests, while false
positives on every opaque call would bury the signal (the same
philosophy as :mod:`repro.analysis.inference`).

Summary caching
---------------
:class:`SummaryCache` persists the per-file artifacts (local findings,
suppressions, summary) keyed by the file content's SHA-256 plus the
rule-catalogue version, so an unchanged file is never re-parsed — this
is what makes ``repro-dso lint`` incremental and the pre-commit
``--changed`` mode fast.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.inference import (
    SET_RETURNING_FUNCTIONS,
    SET_TYPED_ATTRIBUTES,
)

#: Bump when the summary schema or extraction semantics change; stale
#: cache entries are discarded on mismatch.
SUMMARY_SCHEMA_VERSION = 2

CLEAN = {"k": "clean"}

#: Constructor calls whose results pickle rejects.
_UNPICKLABLE_CTORS = {
    "Lock": "thread lock",
    "RLock": "thread lock",
    "Condition": "condition variable",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "Event": "event",
    "Barrier": "barrier",
    "memoryview": "memoryview",
    "open": "open file handle",
    "mmap": "mmap",
    "SharedMemory": "shared-memory handle",
    "socket": "socket",
}

#: ``set`` methods that return a new set.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

#: Serialization sinks: the dotted-name suffixes whose arguments become
#: bytes in a file, a snapshot, or a wire message — iteration order of
#: anything reaching them is frozen into the output.
_SERIALIZE_FUNCS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps",
    "marshal.dump", "marshal.dumps",
})
_SINK_METHODS = frozenset({"write", "writelines", "tofile"})

#: Pool/executor methods that ship their *payload* arguments to another
#: process (the callable itself is DSO201's business).
_DISPATCH_METHODS = frozenset({
    "submit", "apply_async", "map_async", "starmap", "starmap_async",
    "apply", "imap", "imap_unordered",
})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
_ORDER_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})

_PICKLE_HOOKS = frozenset({
    "__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__",
    "__getnewargs_ex__",
})


@dataclass
class FunctionSummary:
    """What one function does, abstracted for cross-function checking."""

    qualname: str
    line: int
    params: list[str] = field(default_factory=list)
    #: Parameter indices annotated as set/frozenset.
    set_params: list[int] = field(default_factory=list)
    is_method: bool = False
    #: Abstract terms of every ``return`` expression.
    returns: list[dict] = field(default_factory=list)
    #: Serialization sink calls: {line, col, fn, args: [term...]}.
    sinks: list[dict] = field(default_factory=list)
    #: Process-boundary payloads: {line, col, fn, args: [term...]}.
    dispatches: list[dict] = field(default_factory=list)
    #: All calls with an extractable dotted name:
    #: {line, col, fn, form: "name"|"attr", args: [term...]}.
    calls: list[dict] = field(default_factory=list)
    #: Arithmetic/ordering uses of call results:
    #: {line, col, name, term}.
    arith: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": self.params,
            "set_params": self.set_params,
            "is_method": self.is_method,
            "returns": self.returns,
            "sinks": self.sinks,
            "dispatches": self.dispatches,
            "calls": self.calls,
            "arith": self.arith,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(**payload)


@dataclass
class ClassSummary:
    """Attribute types and pickle hooks of one class."""

    name: str
    line: int
    #: ``self.<attr> = expr`` terms (first interesting assignment wins).
    attrs: dict[str, dict] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    #: Defines __getstate__/__reduce__/... — picklable by contract.
    custom_pickle: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "attrs": self.attrs,
            "bases": self.bases,
            "custom_pickle": self.custom_pickle,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassSummary":
        return cls(**payload)


@dataclass
class ModuleSummary:
    """Everything the project-level analysis needs from one file."""

    path: str
    module: str = ""
    #: alias -> dotted target ("import a.b as c" => c -> a.b;
    #: "from a import f" => f -> a.f).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "imports": self.imports,
            "functions": {
                name: summary.to_dict()
                for name, summary in self.functions.items()
            },
            "classes": {
                name: summary.to_dict()
                for name, summary in self.classes.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            module=payload["module"],
            imports=dict(payload["imports"]),
            functions={
                name: FunctionSummary.from_dict(value)
                for name, value in payload["functions"].items()
            },
            classes={
                name: ClassSummary.from_dict(value)
                for name, value in payload["classes"].items()
            },
        )


# ----------------------------------------------------------------------
# Term extraction
# ----------------------------------------------------------------------

def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_set(node.left) or _annotation_is_set(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return False
        return _annotation_is_set(parsed.body)
    return False


def _is_nan_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "QUERY_ERROR":
        return True
    if isinstance(node, ast.Attribute) and node.attr in {"nan", "QUERY_ERROR"}:
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.strip().lower().lstrip("+-") == "nan"
    )


def _interesting(term: dict) -> bool:
    return term.get("k") != "clean"


class _TermEnv:
    """Name -> term for one function scope (forward pass, last wins)."""

    def __init__(self) -> None:
        self.names: dict[str, dict] = {}

    def get(self, name: str) -> dict:
        return self.names.get(name, CLEAN)


def _join(terms: list[dict]) -> dict:
    interesting = [term for term in terms if _interesting(term)]
    if not interesting:
        return CLEAN
    if len(interesting) == 1:
        return interesting[0]
    return {"k": "tuple", "items": interesting}


def term_of(node: ast.expr, env: _TermEnv) -> dict:
    """The abstract term of one expression under ``env``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return {"k": "set"}
    if isinstance(node, ast.Lambda):
        return {"k": "unpicklable", "why": "lambda"}
    if isinstance(node, ast.Name):
        if node.id == "QUERY_ERROR":
            return {"k": "sentinel"}
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        if _is_nan_literal(node):
            return {"k": "sentinel"}
        if node.attr in SET_TYPED_ATTRIBUTES:
            return {"k": "set"}
        return CLEAN
    if isinstance(node, ast.Call):
        return _term_of_call(node, env)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
        sources = [
            term_of(generator.iter, env) for generator in node.generators
        ]
        return {"k": "cap", "of": _join(sources)}
    if isinstance(node, ast.BinOp):
        left = term_of(node.left, env)
        right = term_of(node.right, env)
        if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)):
            if left.get("k") == "set" or right.get("k") == "set":
                return {"k": "set"}
        if isinstance(node.op, ast.Sub):
            if left.get("k") == "set" and right.get("k") == "set":
                return {"k": "set"}
        if isinstance(node.op, _ARITH_OPS):
            if "sentinel" in (left.get("k"), right.get("k")):
                return {"k": "sentinel"}
        return CLEAN
    if isinstance(node, ast.IfExp):
        return _join([term_of(node.body, env), term_of(node.orelse, env)])
    if isinstance(node, (ast.Tuple, ast.List)):
        return _join([term_of(item, env) for item in node.elts])
    if isinstance(node, ast.Starred):
        return term_of(node.value, env)
    if isinstance(node, ast.NamedExpr):
        return term_of(node.value, env)
    if isinstance(node, ast.Await):
        return term_of(node.value, env)
    return CLEAN


def _term_of_call(node: ast.Call, env: _TermEnv) -> dict:
    func = node.func
    name = func.id if isinstance(func, ast.Name) else None
    attr = func.attr if isinstance(func, ast.Attribute) else None
    if name == "sorted":
        return CLEAN
    if _is_nan_literal(node):
        return {"k": "sentinel"}
    if name in SET_RETURNING_FUNCTIONS or attr in SET_RETURNING_FUNCTIONS:
        return {"k": "set"}
    if attr in _SET_METHODS and _interesting(term_of(func.value, env)):
        if term_of(func.value, env).get("k") == "set":
            return {"k": "set"}
    leaf = name or attr
    if leaf in _UNPICKLABLE_CTORS:
        return {"k": "unpicklable", "why": _UNPICKLABLE_CTORS[leaf]}
    if name in {"list", "tuple"} and len(node.args) == 1:
        return {"k": "cap", "of": term_of(node.args[0], env)}
    if name == "array" and len(node.args) == 2:
        return {"k": "cap", "of": term_of(node.args[1], env)}
    dotted = _dotted_name(func)
    if dotted is not None:
        return {
            "k": "call",
            "fn": dotted,
            "args": [term_of(arg, env) for arg in node.args],
        }
    return CLEAN


# ----------------------------------------------------------------------
# Function / class summarization
# ----------------------------------------------------------------------

def _walk_own(node: ast.AST):
    """Walk ``node`` without descending into nested function/class defs."""
    queue = list(ast.iter_child_nodes(node))
    while queue:
        current = queue.pop(0)
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        queue.extend(ast.iter_child_nodes(current))


def _build_env(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, params: list[str]
) -> _TermEnv:
    env = _TermEnv()
    for index, param in enumerate(params):
        env.names[param] = {"k": "param", "i": index}
    # Forward pass over the function's own statements: assignments
    # refine the environment; control-flow nesting is flattened (a
    # last-writer-wins approximation, same as inference.ScopeEnv).
    for statement in _walk_own(fn):
        if isinstance(statement, ast.Assign):
            value = term_of(statement.value, env)
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    env.names[target.id] = value
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            if _annotation_is_set(statement.annotation):
                env.names[statement.target.id] = {"k": "set"}
            elif statement.value is not None:
                env.names[statement.target.id] = term_of(
                    statement.value, env
                )
    return env


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    ordered = list(args.posonlyargs) + list(args.args)
    return [arg.arg for arg in ordered]


def _guarded_names(fn: ast.AST) -> set[str]:
    """Names the function NaN-guards via ``isnan`` or self-comparison."""
    guarded: set[str] = set()
    for node in _walk_own(fn):
        if (
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name) and node.func.id == "isnan")
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "isnan"
                )
            )
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            guarded.add(node.args[0].id)
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.left, ast.Name)
            and isinstance(node.comparators[0], ast.Name)
            and node.left.id == node.comparators[0].id
        ):
            guarded.add(node.left.id)
    return guarded


def summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    is_method: bool,
) -> FunctionSummary:
    params = _param_names(fn)
    env = _build_env(fn, params)
    ordered_args = list(fn.args.posonlyargs) + list(fn.args.args)
    summary = FunctionSummary(
        qualname=qualname,
        line=fn.lineno,
        params=params,
        set_params=[
            index
            for index, arg in enumerate(ordered_args)
            if _annotation_is_set(arg.annotation)
        ],
        is_method=is_method,
    )
    guarded = _guarded_names(fn)
    for node in _walk_own(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            term = term_of(node.value, env)
            if _interesting(term):
                summary.returns.append(term)
        elif isinstance(node, ast.Call):
            _record_call(node, env, summary)
        elif isinstance(node, ast.BinOp) and isinstance(
            node.op, _ARITH_OPS
        ):
            _record_arith(
                [node.left, node.right], node, env, guarded, summary
            )
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, _ORDER_CMPS) for op in node.ops
        ):
            _record_arith(
                [node.left, *node.comparators], node, env, guarded, summary
            )
    return summary


def _record_arith(
    operands: list[ast.expr],
    node: ast.AST,
    env: _TermEnv,
    guarded: set[str],
    summary: FunctionSummary,
) -> None:
    for operand in operands:
        if not isinstance(operand, ast.Name) or operand.id in guarded:
            continue
        term = env.get(operand.id)
        if term.get("k") == "call":
            summary.arith.append({
                "line": node.lineno,
                "col": node.col_offset,
                "name": operand.id,
                "term": term,
            })


def _record_call(
    node: ast.Call, env: _TermEnv, summary: FunctionSummary
) -> None:
    func = node.func
    dotted = _dotted_name(func)
    args = [term_of(arg, env) for arg in node.args]
    keyword_args = {
        keyword.arg: term_of(keyword.value, env)
        for keyword in node.keywords
        if keyword.arg is not None
    }
    location = {"line": node.lineno, "col": node.col_offset}
    if dotted is not None:
        if dotted in _SERIALIZE_FUNCS:
            summary.sinks.append(
                {**location, "fn": dotted, "args": args[:1]}
            )
        elif dotted == "struct.pack" or dotted.endswith(".pack"):
            summary.sinks.append({**location, "fn": dotted, "args": args})
        elif isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS:
            if args:
                summary.sinks.append(
                    {**location, "fn": dotted, "args": args[:1]}
                )
        summary.calls.append({
            **location,
            "fn": dotted,
            "form": "name" if isinstance(func, ast.Name) else "attr",
            "args": args,
        })
    if isinstance(func, ast.Attribute):
        if func.attr == "send" and args:
            summary.dispatches.append(
                {**location, "fn": dotted or "send", "args": args}
            )
        elif func.attr in _DISPATCH_METHODS and args:
            summary.dispatches.append(
                {**location, "fn": dotted or func.attr, "args": args[1:]}
            )
    if (
        isinstance(func, ast.Name) and func.id == "Process"
    ) or (
        isinstance(func, ast.Attribute) and func.attr == "Process"
    ):
        payload = [
            value
            for key, value in keyword_args.items()
            if key in {"args", "kwargs"}
        ]
        if payload:
            summary.dispatches.append(
                {**location, "fn": "Process", "args": payload}
            )


def summarize_class(node: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(
        name=node.name,
        line=node.lineno,
        bases=[
            dotted
            for dotted in (_dotted_name(base) for base in node.bases)
            if dotted is not None
        ],
    )
    for statement in node.body:
        if not isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        if statement.name in _PICKLE_HOOKS:
            summary.custom_pickle = True
        params = _param_names(statement)
        env = _build_env(statement, params)
        for inner in _walk_own(statement):
            if not isinstance(inner, ast.Assign):
                continue
            value = term_of(inner.value, env)
            if not _interesting(value):
                continue
            for target in inner.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in summary.attrs
                ):
                    summary.attrs[target.attr] = value
    return summary


def _module_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def summarize_module(
    tree: ast.Module, path: str, module: str
) -> ModuleSummary:
    """Compile one parsed file into its whole-program summary."""
    summary = ModuleSummary(
        path=path, module=module, imports=_module_imports(tree)
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = summarize_function(
                node, node.name, is_method=False
            )
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = summarize_class(node)
            for statement in node.body:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{node.name}.{statement.name}"
                    summary.functions[qualname] = summarize_function(
                        statement, qualname, is_method=True
                    )
    return summary


# ----------------------------------------------------------------------
# Content-hash summary cache
# ----------------------------------------------------------------------

def content_sha(text: str) -> str:
    """The cache key of one file's content."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SummaryCache:
    """File-backed cache of per-file lint artifacts.

    Entries are keyed by display path and validated against the
    content SHA, the rule-catalogue version, and the summary schema
    version — any mismatch is a miss, so a rule change or a schema
    change transparently invalidates the whole cache.  ``path=None``
    makes every operation a no-op (the in-memory fallback used by unit
    tests and one-shot API calls).
    """

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self._entries = self._load(self.path)

    @staticmethod
    def _load(path: Path) -> dict[str, dict]:
        from repro.analysis.rules import RULE_CATALOGUE_VERSION

        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        if payload.get("schema") != SUMMARY_SCHEMA_VERSION:
            return {}
        if payload.get("catalogue") != RULE_CATALOGUE_VERSION:
            return {}
        files = payload.get("files")
        return dict(files) if isinstance(files, dict) else {}

    def get(self, display_path: str, sha: str) -> dict | None:
        entry = self._entries.get(display_path)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, display_path: str, entry: dict) -> None:
        self._entries[display_path] = entry
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        from repro.analysis.rules import RULE_CATALOGUE_VERSION

        payload = {
            "schema": SUMMARY_SCHEMA_VERSION,
            "catalogue": RULE_CATALOGUE_VERSION,
            "files": dict(sorted(self._entries.items())),
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            # A read-only checkout degrades to uncached linting rather
            # than failing the run.
            return
        self._dirty = False
