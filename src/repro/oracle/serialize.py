"""Index serialization: persist a preprocessed oracle to disk.

Preprocessing dominates oracle cost (one bounded Dijkstra per transit
node plus landmark Dijkstras), so a production deployment builds the
index once and ships it.  The format is a single JSON document holding
the graph, the transit set, the overlay with weights, every bounded
tree (parents + distances), and per-family extras: landmark tables
(ADISO and descendants), sparsification bookkeeping plus the original
graph (DISO-S), and the second overlay ``H`` with its trees (ADISO-P).
The oracle class travels by name and resolves through a registry on
load.
The inverted tree index is *not* stored: it is derivable from the trees
in linear time and rebuilding it on load is cheaper than parsing it.

JSON is chosen over pickle deliberately: the file is
interpreter-version independent, diffable, and cannot execute code on
load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.exceptions import FormatError
from repro.graph.digraph import DiGraph
from repro.landmarks.base import LandmarkTable
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.overlay.bsp_tree import BoundedTreeStore
from repro.overlay.distance_graph import DistanceGraph
from repro.overlay.inverted_index import InvertedTreeIndex
from repro.pathing.spt import ShortestPathTree

FORMAT_VERSION = 1


def _graph_to_obj(graph: DiGraph) -> dict[str, Any]:
    return {
        "nodes": sorted(graph.nodes()),
        "edges": [[t, h, w] for t, h, w in sorted(graph.edges())],
    }


def _graph_from_obj(obj: dict[str, Any]) -> DiGraph:
    graph = DiGraph()
    graph.add_nodes(obj["nodes"])
    for tail, head, weight in obj["edges"]:
        graph.add_edge(tail, head, weight)
    return graph


def _tree_to_obj(tree: ShortestPathTree) -> dict[str, Any]:
    return {
        "root": tree.root,
        # parent[root] is None; JSON null round-trips fine.
        "entries": [
            [node, tree.parent[node], tree.dist[node]]
            for node in sorted(tree.dist)
        ],
    }


def _tree_from_obj(obj: dict[str, Any]) -> ShortestPathTree:
    tree = ShortestPathTree(obj["root"])
    # Attach in distance order so parents precede children.
    pending = sorted(obj["entries"], key=lambda entry: entry[2])
    for node, parent, distance in pending:
        if parent is None:
            continue
        tree.attach(node, parent, distance)
    return tree


def _registry() -> dict[str, type]:
    """Name -> class for every serializable oracle family.

    Imported lazily: the boosted variants import pathing/cover modules
    that in turn import this package.
    """
    from repro.oracle.adiso_p import ADISOPartial
    from repro.oracle.diso_bi import DISOBidirectional
    from repro.oracle.diso_s import DISOSparse

    return {
        "DISO": DISO,
        "DISOBidirectional": DISOBidirectional,
        "ADISO": ADISO,
        "DISOSparse": DISOSparse,
        "ADISOPartial": ADISOPartial,
    }


def _sparsification_to_obj(result) -> dict[str, Any]:
    # The sparsified graph itself is stored elsewhere in the document
    # (as the oracle's graph or overlay); only the bookkeeping travels.
    return {
        "removed": [[t, h, w] for (t, h), w in sorted(result.removed.items())],
        "protected": [list(edge) for edge in sorted(result.protected)],
        "beta": result.beta,
    }


def _sparsification_from_obj(obj: dict[str, Any], graph: DiGraph):
    from repro.overlay.sparsify import SparsificationResult

    return SparsificationResult(
        graph=graph,
        removed={(t, h): w for t, h, w in obj["removed"]},
        protected={(t, h) for t, h in obj["protected"]},
        beta=obj["beta"],
    )


def save_index(oracle: DISO, target: str | Path | TextIO) -> None:
    """Serialize ``oracle`` to JSON.

    Every persistent family is supported: DISO, DISO-B, ADISO, and the
    boosted variants DISO-S (plus its sparsification bookkeeping and
    original-graph fallback) and ADISO-P (plus the second overlay ``H``
    and its trees).  The class travels by name and is resolved through
    a registry on load.
    """
    from repro.oracle.adiso_p import ADISOPartial
    from repro.oracle.diso_s import DISOSparse

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "oracle": type(oracle).__name__,
        "graph": _graph_to_obj(oracle.graph),
        "transit": sorted(oracle.transit),
        "overlay": _graph_to_obj(oracle.distance_graph.graph),
        "trees": [
            _tree_to_obj(oracle.trees.tree(root))
            for root in sorted(oracle.trees.roots())
        ],
        "preprocess_seconds": oracle.preprocess_seconds,
    }
    if isinstance(oracle, ADISO):
        document["landmarks"] = {
            "nodes": list(oracle.landmarks.landmarks),
            "outbound": [
                {str(k): v for k, v in table.items()}
                for table in oracle.landmarks._outbound
            ],
            "inbound": [
                {str(k): v for k, v in table.items()}
                for table in oracle.landmarks._inbound
            ],
        }
    if isinstance(oracle, DISOSparse):
        document["sparse"] = {
            "original_graph": _graph_to_obj(oracle.original_graph),
            "beta": oracle.beta,
            "input": _sparsification_to_obj(oracle.input_sparsification),
            "overlay": _sparsification_to_obj(oracle.overlay_sparsification),
        }
    if isinstance(oracle, ADISOPartial):
        document["partial"] = {
            "h_overlay": _graph_to_obj(oracle.h_overlay.graph),
            "h_transit": sorted(oracle.h_overlay.transit),
            "h_trees": [
                _tree_to_obj(oracle.h_trees[root])
                for root in sorted(oracle.h_trees)
            ],
            "exit_candidates": oracle.exit_candidates,
            "avoid_affected_bias": oracle.avoid_affected_bias,
        }

    close_after = False
    if isinstance(target, (str, Path)):
        handle: TextIO = open(target, "w", encoding="utf-8")
        close_after = True
    else:
        handle = target
    try:
        json.dump(document, handle)
    finally:
        if close_after:
            handle.close()


def load_index(source: str | Path | TextIO) -> DISO:
    """Load an oracle previously written by :func:`save_index`.

    Returns a fully functional oracle of the persisted class; the
    inverted tree index is rebuilt from the stored trees.

    Raises
    ------
    FormatError
        On version mismatch or an unknown oracle class name.
    """
    close_after = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", encoding="utf-8")
        close_after = True
    else:
        handle = source
    try:
        document = json.load(handle)
    finally:
        if close_after:
            handle.close()

    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise FormatError(
            f"unsupported index format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    class_name = document.get("oracle")
    oracle_cls = _registry().get(class_name)
    if oracle_cls is None:
        raise FormatError(f"unknown oracle class {class_name!r}")

    graph = _graph_from_obj(document["graph"])
    transit = frozenset(document["transit"])
    overlay = DistanceGraph(
        graph=_graph_from_obj(document["overlay"]), transit=transit
    )
    trees = {
        obj["root"]: _tree_from_obj(obj) for obj in document["trees"]
    }

    oracle = oracle_cls.__new__(oracle_cls)
    # Rebuild the object without re-running preprocessing.
    DISO.__bases__[0].__init__(oracle, graph)  # DistanceSensitivityOracle
    oracle.distance_graph = overlay
    oracle.transit = transit
    oracle.trees = BoundedTreeStore(trees, transit)
    oracle.inverted_index = InvertedTreeIndex.from_trees(trees)
    oracle.preprocess_seconds = document.get("preprocess_seconds", 0.0)

    if issubclass(oracle_cls, ADISO):
        landmark_obj = document["landmarks"]
        table = LandmarkTable.__new__(LandmarkTable)
        table.landmarks = tuple(landmark_obj["nodes"])
        table._outbound = [
            {int(k): v for k, v in entry.items()}
            for entry in landmark_obj["outbound"]
        ]
        table._inbound = [
            {int(k): v for k, v in entry.items()}
            for entry in landmark_obj["inbound"]
        ]
        oracle.landmarks = table

    from repro.oracle.adiso_p import ADISOPartial
    from repro.oracle.diso_s import DISOSparse

    if issubclass(oracle_cls, DISOSparse):
        sparse_obj = document["sparse"]
        oracle.original_graph = _graph_from_obj(sparse_obj["original_graph"])
        oracle.beta = sparse_obj["beta"]
        oracle.input_sparsification = _sparsification_from_obj(
            sparse_obj["input"], oracle.graph
        )
        oracle.overlay_sparsification = _sparsification_from_obj(
            sparse_obj["overlay"], oracle.distance_graph.graph
        )
    if issubclass(oracle_cls, ADISOPartial):
        partial_obj = document["partial"]
        oracle.h_overlay = DistanceGraph(
            graph=_graph_from_obj(partial_obj["h_overlay"]),
            transit=frozenset(partial_obj["h_transit"]),
        )
        oracle.h_trees = {
            obj["root"]: _tree_from_obj(obj)
            for obj in partial_obj["h_trees"]
        }
        node_to_h: dict[int, set[int]] = {}
        for root, tree in oracle.h_trees.items():
            for node in tree.nodes():
                node_to_h.setdefault(node, set()).add(root)
        oracle._node_to_h_roots = node_to_h
        oracle.exit_candidates = partial_obj["exit_candidates"]
        oracle.avoid_affected_bias = partial_obj["avoid_affected_bias"]
    return oracle
