"""DISO — the DIStance graph-based Oracle (Section 4).

DISO adapts Transit Node Routing to the distance sensitivity problem:

* **Preprocessing** selects a transit node set (a ``2^tau``-path cover
  computed with ISC by default), builds the distance graph ``D`` with a
  bounded Dijkstra run per transit node, stores every bounded shortest
  path tree ``G_u``, and builds the inverted tree index over tree edges.
* **Querying** ``(s, t, F)``:

  1. look the failed edges up in the inverted tree index — the union of
     the hit tree roots is the *affected node* set ``A``;
  2. run the bounded Dijkstra's algorithm from ``s`` (forward) and ``t``
     (backward) on ``(V, E \\ F)``: this yields the access-node supersets
     ``A*_out(s)`` / ``A*_in(t)`` with exact access distances under
     ``F``, and — when the searches meet ``t`` directly — the
     locality-filter answer ``d_hat(s, t, F)``;
  3. run a Dijkstra-like search over ``D`` seeded with ``A*_out(s)``;
     when an affected node is popped its out-edge weights are *lazily
     recomputed* from its stored tree (DynDijkstra repair, no mutation);
     popping a node of ``A*_in(t)`` offers a candidate answer;
  4. return the minimum of the overlay answer and the direct answer.

Correctness is the paper's Theorem 1: if ``P(s, t, F)`` passes a transit
node the overlay search finds it (Lemma 2 via Lemma 1's weighting
guarantee); otherwise the direct bounded search from ``s`` finds it.

Because step 3 recomputes weights on the side and never writes them back
(Section 4.2), concurrent queries can share one index with no locking —
the "no stalling" property motivating the whole design.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

from repro.graph.digraph import DiGraph, Edge
from repro.cover.isc import isc_path_cover
from repro.oracle.base import (
    INFINITY,
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.overlay.bsp_tree import BoundedTreeStore
from repro.overlay.distance_graph import DistanceGraph, build_distance_graph
from repro.overlay.inverted_index import InvertedTreeIndex
from repro.pathing.bounded import bounded_dijkstra


class DISO(DistanceSensitivityOracle):
    """The paper's first distance sensitivity oracle.

    Parameters
    ----------
    graph:
        The input graph ``G`` (kept by reference; treat as immutable, or
        use :mod:`repro.oracle.maintenance` for updates).
    tau:
        ISC rounds; the transit set is a ``2^tau``-path cover.  Paper
        defaults: 8 for road networks, 4 for social networks.
    theta:
        Algorithm 1 sparsity threshold.  Paper defaults: 1 for road
        networks, 16 for social networks.
    transit:
        Explicit transit node set, overriding the ISC computation — used
        by the Table 4 experiments that plug in partition border sets,
        and by DISO-S / ADISO which reuse covers.
    """

    name = "DISO"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
    ) -> None:
        super().__init__(graph)
        started = time.perf_counter()
        if transit is None:
            transit = self.select_transit(graph, tau=tau, theta=theta)
        self.distance_graph: DistanceGraph
        distance_graph, trees = build_distance_graph(graph, transit)
        self._install_index(distance_graph, trees)
        self.preprocess_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Build plane hooks (repro.build constructs the same index in parts)
    # ------------------------------------------------------------------
    @staticmethod
    def select_transit(
        graph: DiGraph, tau: int = 4, theta: float = 1.0
    ) -> set[int]:
        """The default transit node set: an ISC ``2^tau``-path cover."""
        return isc_path_cover(graph, tau=tau, theta=theta).cover

    def _install_index(self, distance_graph: DistanceGraph, trees) -> None:
        """Adopt a finished first/second-level index (however built)."""
        self.distance_graph = distance_graph
        self.transit: frozenset[int] = distance_graph.transit
        self.trees = BoundedTreeStore(trees, self.transit)
        self.inverted_index = InvertedTreeIndex.from_trees(trees)

    @classmethod
    def _from_assembled(
        cls,
        graph: DiGraph,
        distance_graph: DistanceGraph,
        trees,
        *,
        preprocess_seconds: float = 0.0,
    ) -> "DISO":
        """Adopt an index assembled elsewhere (the parallel build plane).

        ``distance_graph``/``trees`` must be value-equal to what
        :func:`build_distance_graph` would produce on ``graph`` — the
        coordinator guarantees this by merging worker shards in sorted
        landmark order.
        """
        oracle = cls.__new__(cls)
        DistanceSensitivityOracle.__init__(oracle, graph)
        oracle._install_index(distance_graph, trees)
        oracle.preprocess_seconds = preprocess_seconds
        return oracle

    # ------------------------------------------------------------------
    # Frozen query plane
    # ------------------------------------------------------------------
    def freeze(self):
        """Compile the finished index for flat-array query serving.

        Returns a :class:`repro.oracle.frozen.FrozenDISO` answering the
        exact same queries from CSR-compiled structures with reusable
        search arenas — the representation to serve from once the graph
        stops changing.  The dict oracle remains usable (and is the one
        :mod:`repro.oracle.maintenance` can update; re-freeze after
        maintenance).
        """
        from repro.oracle.frozen import FrozenDISO

        return FrozenDISO(self)

    # ------------------------------------------------------------------
    # Failure handling hooks (overridden by the DISO- ablation)
    # ------------------------------------------------------------------
    def _find_affected_nodes(
        self,
        failed: frozenset[Edge],
        stats: QueryStats,
    ) -> set[int]:
        """Affected transit nodes: trees containing a failed edge."""
        return self.inverted_index.affected_nodes(failed)

    def _recomputed_weights(
        self,
        node: int,
        failed: frozenset[Edge],
    ) -> dict[int, float]:
        """Fresh out-edge weights of an affected node under ``failed``."""
        return self.trees.recomputed_out_weights(self.graph, node, failed)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        affected = self._find_affected_nodes(fail_set, stats)
        stats.affected_count = len(affected)

        access_start = time.perf_counter()
        forward = bounded_dijkstra(
            self.graph, source, self.transit, fail_set, "out"
        )
        backward = bounded_dijkstra(
            self.graph, target, self.transit, fail_set, "in"
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled = forward.settled_count + backward.settled_count

        # Locality-filter answer: the forward bounded search reports
        # d_hat(s, t, F) whenever t lies in s's transit-free region.
        best = forward.dist.get(target, INFINITY)

        overlay_best = self._overlay_search(
            forward.access,
            backward.access,
            fail_set,
            affected,
            stats,
            best,
            target=target,
        )
        if overlay_best < best:
            best = overlay_best

        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    def _overlay_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed: frozenset[Edge],
        affected: set[int],
        stats: QueryStats,
        upper_bound: float,
        target: int | None = None,
    ) -> float:
        """Dijkstra-like procedure on ``D`` (Section 4.1.3).

        ``target`` is unused here; subclasses with goal-directed
        searches (the hierarchy) take it for their heuristics.

        ``seeds`` are ``A*_out(s)`` access distances; ``into_target``
        maps ``A*_in(t)`` nodes to their distance to ``t``.  Returns
        ``d_D(s, t, F)``.  The search stops early once the minimum queue
        label cannot beat the best candidate (safe because the remaining
        leg ``d_hat(v, t, F)`` is non-negative).
        """
        best = upper_bound
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for node, d in seeds.items():
            dist[node] = d
            heappush(heap, (d, node))
        settled: set[int] = set()
        overlay_edges = self.distance_graph.graph
        recompute_seconds = 0.0
        recomputed_nodes = 0

        while heap:
            d, node = heappop(heap)
            if node in settled:
                continue
            if d >= best:
                break
            settled.add(node)
            tail_distance = into_target.get(node)
            if tail_distance is not None:
                candidate = d + tail_distance
                if candidate < best:
                    best = candidate
            if node in affected:
                tick = time.perf_counter()
                out_weights = self._recomputed_weights(node, failed)
                recompute_seconds += time.perf_counter() - tick
                recomputed_nodes += 1
            else:
                out_weights = overlay_edges.successors(node)
            for head, weight in out_weights.items():
                if head in settled or head == node:
                    continue
                candidate = d + weight
                if candidate < dist.get(head, INFINITY):
                    dist[head] = candidate
                    heappush(heap, (candidate, head))
        stats.overlay_settled += len(settled)
        stats.recompute_seconds += recompute_seconds
        stats.recomputed_nodes += recomputed_nodes
        return best

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        return {
            "distance_graph_nodes": self.distance_graph.num_nodes,
            "distance_graph_edges": self.distance_graph.num_edges,
            "tree_nodes": self.trees.total_nodes(),
            "inverted_index_entries": self.inverted_index.entry_count(),
        }
