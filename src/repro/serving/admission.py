"""Deadline-based admission control for the serving dispatcher.

An overloaded dispatcher has exactly two honest options: queue work it
already knows will miss its deadline, or refuse it up front.  Queueing
unboundedly is the dishonest third option — every queued query makes
every later query slower, latency compounds, and by the time the
client sees an answer it has long stopped caring.  This module
implements the refusal: :class:`DeadlineAdmission` tracks an
exponentially-weighted estimate of per-query service time from the
busy-seconds the workers actually report, converts the run's deadline
budget into a feasible query count, and the dispatcher sheds the
excess — those queries get the existing NaN answer sentinel with a
``"shed"`` status (never the error channel: a shed is the *dispatcher*
protecting its deadline, not a query failing), and they never reach a
worker.

The estimator deliberately starts optimistic (a fresh service has no
evidence and should not refuse its very first batch), then converges
onto the observed service rate within a few runs.  Shed decisions are
deterministic given the observation history: same reports in, same
capacity out.
"""

from __future__ import annotations


class DeadlineAdmission:
    """Load shedder: admit only the prefix that can meet the deadline.

    Parameters
    ----------
    deadline_ms:
        The latency budget one ``run()`` is allowed to spend inside
        workers.  Dispatch/transport overhead is not modelled — the
        budget bounds computation, which dominates at saturation.
    workers:
        Pool size; capacity scales linearly with it (workers share no
        state, so the pool really is ``workers`` independent servers).
    initial_query_us:
        Optimistic starting estimate of per-query service time, used
        until real observations arrive.
    smoothing:
        EWMA weight of each new observation in ``(0, 1]``; higher
        adapts faster, lower is steadier.
    """

    def __init__(
        self,
        deadline_ms: float,
        workers: int,
        initial_query_us: float = 100.0,
        smoothing: float = 0.3,
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if initial_query_us <= 0:
            raise ValueError("initial_query_us must be > 0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.deadline_ms = deadline_ms
        self.workers = workers
        self.smoothing = smoothing
        self._per_query_seconds = initial_query_us * 1e-6
        self._observations = 0
        self._shed_total = 0
        self._admitted_total = 0

    @property
    def estimated_query_us(self) -> float:
        """Current per-query service-time estimate in microseconds."""
        return 1e6 * self._per_query_seconds

    def capacity(self) -> int:
        """Queries the pool can serve within one deadline budget."""
        budget_seconds = self.deadline_ms / 1000.0
        return int(budget_seconds / self._per_query_seconds) * self.workers

    def admit(self, queued: int) -> int:
        """How many of ``queued`` queries to admit (the rest are shed)."""
        if queued <= 0:
            return 0
        admitted = min(queued, max(0, self.capacity()))
        self._admitted_total += admitted
        self._shed_total += queued - admitted
        return admitted

    def observe(self, queries: int, busy_seconds: float) -> None:
        """Fold one run's worker-reported busy time into the estimate.

        ``busy_seconds`` is the sum over workers of time actually spent
        answering (not wall time, which double-counts idle waiting on a
        multi-worker pool).
        """
        if queries <= 0 or busy_seconds <= 0:
            return
        sample = busy_seconds / queries
        self._per_query_seconds += self.smoothing * (
            sample - self._per_query_seconds
        )
        self._observations += 1

    def stats(self) -> dict:
        """Counters for reporting: sheds, admissions, current estimate."""
        return {
            "admitted": self._admitted_total,
            "shed": self._shed_total,
            "observations": self._observations,
            "estimated_query_us": round(self.estimated_query_us, 3),
            "deadline_ms": self.deadline_ms,
        }
