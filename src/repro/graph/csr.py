"""Compressed sparse row (CSR) graph snapshots.

:class:`DiGraph` optimises for mutation (dict-of-dict adjacency); query
serving wants the opposite trade-off: an immutable snapshot laid out in
flat arrays, with integer-indexed nodes, contiguous adjacency slices,
and O(1) edge-id lookup.  :class:`FrozenGraph` provides that snapshot,
plus a Dijkstra specialised to it (:func:`csr_dijkstra`) that the
Dijkstra baseline can run ~1.5-2x faster than the dict version on large
batches — the closest a pure-Python implementation gets to the paper's
C++ memory layout.

Failed edges are passed as *edge ids* (``frozen.edge_id(u, v)``), which
makes the per-relaxation failure check a membership test against a
small integer set.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.digraph import DiGraph

INFINITY = float("inf")


class FrozenGraph:
    """An immutable CSR snapshot of a directed weighted graph.

    Attributes
    ----------
    node_ids:
        The original node labels, indexed by dense index.
    index_of:
        ``{original label -> dense index}``.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "_offsets",
        "_heads",
        "_weights",
        "_edge_index",
        "_adjacency",
    )

    def __init__(
        self,
        node_ids: list[int],
        offsets: array,
        heads: array,
        weights: array,
    ) -> None:
        self.node_ids = node_ids
        self.index_of = {label: i for i, label in enumerate(node_ids)}
        self._offsets = offsets
        self._heads = heads
        self._weights = weights
        self._edge_index: dict[tuple[int, int], int] = {}
        # Pre-sliced (head, weight, edge_id) tuples per node: CPython
        # iterates a materialised tuple list markedly faster than it
        # indexes into arrays, so the search loops run over these while
        # the flat arrays remain the storage of record.
        self._adjacency: list[tuple[tuple[int, float, int], ...]] = []
        for tail in range(len(node_ids)):
            row = []
            for pos in range(offsets[tail], offsets[tail + 1]):
                self._edge_index[(tail, heads[pos])] = pos
                row.append((heads[pos], weights[pos], pos))
            self._adjacency.append(tuple(row))

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "FrozenGraph":
        """Snapshot ``graph`` into CSR form.

        Node labels are sorted for determinism; edges within a node are
        ordered by head label.
        """
        node_ids = sorted(graph.nodes())
        index_of = {label: i for i, label in enumerate(node_ids)}
        offsets = array("l", [0] * (len(node_ids) + 1))
        heads = array("l")
        weights = array("d")
        for i, label in enumerate(node_ids):
            successors = sorted(graph.successors(label).items())
            offsets[i + 1] = offsets[i] + len(successors)
            for head_label, weight in successors:
                heads.append(index_of[head_label])
                weights.append(weight)
        return cls(node_ids, offsets, heads, weights)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self.node_ids)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return len(self._heads)

    def out_degree(self, label: int) -> int:
        """Out-degree of the node with original ``label``."""
        index = self._require(label)
        return self._offsets[index + 1] - self._offsets[index]

    def successors(self, label: int) -> list[tuple[int, float]]:
        """``[(head_label, weight), ...]`` of the node with ``label``."""
        index = self._require(label)
        return [
            (self.node_ids[self._heads[pos]], self._weights[pos])
            for pos in range(self._offsets[index], self._offsets[index + 1])
        ]

    def edge_id(self, tail_label: int, head_label: int) -> int:
        """Dense edge id of ``(tail, head)``; the failure-set currency.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        tail = self._require(tail_label)
        head = self.index_of.get(head_label)
        if head is None:
            raise EdgeNotFoundError(tail_label, head_label)
        position = self._edge_index.get((tail, head))
        if position is None:
            raise EdgeNotFoundError(tail_label, head_label)
        return position

    def edge_ids(
        self, edges: set[tuple[int, int]] | frozenset[tuple[int, int]]
    ) -> frozenset[int]:
        """Translate an edge-label failure set to edge ids.

        Unknown edges are silently dropped, matching the oracles'
        treatment of failures naming non-existent edges.
        """
        ids: set[int] = set()
        for tail_label, head_label in edges:
            tail = self.index_of.get(tail_label)
            head = self.index_of.get(head_label)
            if tail is None or head is None:
                continue
            position = self._edge_index.get((tail, head))
            if position is not None:
                ids.add(position)
        return frozenset(ids)

    def _require(self, label: int) -> int:
        index = self.index_of.get(label)
        if index is None:
            raise NodeNotFoundError(label)
        return index


def csr_dijkstra(
    frozen: FrozenGraph,
    source_label: int,
    failed_edge_ids: frozenset[int] | None = None,
    target_label: int | None = None,
) -> dict[int, float]:
    """Dijkstra over a CSR snapshot; distances keyed by original labels.

    The inner loop runs over flat arrays with local-variable aliases —
    the standard CPython micro-optimisation — and checks failures
    against an integer set.

    Raises
    ------
    NodeNotFoundError
        If ``source_label`` (or ``target_label``) is not in the graph.
    """
    source = frozen._require(source_label)
    target = frozen._require(target_label) if target_label is not None else -1

    adjacency = frozen._adjacency
    n = len(frozen.node_ids)
    check_failed = bool(failed_edge_ids)

    dist = [INFINITY] * n
    dist[source] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, source)]
    push = heappush
    pop = heappop
    while heap:
        d, node = pop(heap)
        if settled[node]:
            continue
        settled[node] = 1
        if node == target:
            break
        for head, weight, pos in adjacency[node]:
            if settled[head]:
                continue
            if check_failed and pos in failed_edge_ids:
                continue
            candidate = d + weight
            if candidate < dist[head]:
                dist[head] = candidate
                push(heap, (candidate, head))

    node_ids = frozen.node_ids
    return {
        node_ids[i]: dist[i] for i in range(n) if dist[i] < INFINITY
    }


def csr_distance(
    frozen: FrozenGraph,
    source_label: int,
    target_label: int,
    failed_edge_ids: frozenset[int] | None = None,
) -> float:
    """Point-to-point distance over a CSR snapshot (``inf`` if cut off)."""
    source = frozen._require(source_label)
    target = frozen._require(target_label)
    adjacency = frozen._adjacency
    n = len(frozen.node_ids)
    check_failed = bool(failed_edge_ids)

    dist = [INFINITY] * n
    dist[source] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, source)]
    push = heappush
    pop = heappop
    while heap:
        d, node = pop(heap)
        if settled[node]:
            continue
        if node == target:
            return d
        settled[node] = 1
        for head, weight, pos in adjacency[node]:
            if settled[head]:
                continue
            if check_failed and pos in failed_edge_ids:
                continue
            candidate = d + weight
            if candidate < dist[head]:
                dist[head] = candidate
                push(heap, (candidate, head))
    return INFINITY
