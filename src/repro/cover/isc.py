"""ISC: the paper's independent-set based k-path cover (Section 4.3.2).

Starting from ``D_0 = G``, the method repeats ``tau`` rounds: compute an
independent set ``IS_i`` of ``D_i`` with Algorithm 1, eliminate it, and
let the contracted graph be ``D_{i+1}``.  By Lemma 3 the surviving node
set ``V_tau`` is a ``2^tau``-path cover of ``G``, and because each round
minimises the net edge contribution ``sigma`` subject to ``theta``, the
derived distance graph stays sparse — the property Table 3 measures
against PRU and HPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.digraph import DiGraph
from repro.graph.transforms import remove_self_loops
from repro.cover.independent_set import get_independent_set


@dataclass
class PathCoverResult:
    """A k-path cover together with construction byproducts.

    Attributes
    ----------
    cover:
        The transit node set ``C`` (a ``2^tau``-path cover).
    k:
        The guaranteed path-cover parameter ``k = 2^tau``.
    topology:
        The final contracted graph ``D_tau``.  Its node set is ``cover``;
        its edges over-approximate the true distance graph's edges (the
        real distance graph is built with bounded Dijkstra afterwards).
    rounds:
        Sizes of the independent sets eliminated per round, useful for
        diagnosing convergence.
    """

    cover: set[int]
    k: int
    topology: DiGraph
    rounds: list[int] = field(default_factory=list)


def isc_path_cover(
    graph: DiGraph,
    tau: int,
    theta: float = 1.0,
) -> PathCoverResult:
    """Compute a ``2^tau``-path cover of ``graph`` with Algorithm 1 rounds.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    tau:
        Number of elimination rounds (``k = 2^tau``).  The paper uses
        ``tau = 8`` for road networks and ``tau = 4`` for social networks
        (Table 3).
    theta:
        Sparsity threshold of Algorithm 1.  The paper uses ``theta = 1``
        for road networks and ``theta = 16`` for social networks
        (Section 7.2).

    Raises
    ------
    ValueError
        If ``tau < 1``.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    current = remove_self_loops(graph)
    rounds: list[int] = []
    for _ in range(tau):
        result = get_independent_set(current, theta)
        rounds.append(len(result.independent_set))
        current = result.contracted
        if not result.independent_set:
            # Fixed point: no further node satisfies the theta budget.
            break
    cover = set(current.nodes())
    return PathCoverResult(
        cover=cover,
        k=2 ** tau,
        topology=current,
        rounds=rounds,
    )


def verify_k_path_cover(
    graph: DiGraph,
    cover: set[int],
    k: int,
    sample_limit: int | None = None,
) -> bool:
    """Exhaustively verify that ``cover`` is a k-path cover of ``graph``.

    A k-path cover intersects every simple path of ``k`` nodes
    (Definition 4.4).  The check enumerates simple cover-free paths by
    DFS and fails as soon as one reaches ``k`` nodes.  Exponential in the
    worst case — use on test-sized graphs only.

    Parameters
    ----------
    sample_limit:
        Optional cap on the number of DFS start nodes, for spot checks on
        larger graphs.
    """
    starts = [node for node in graph.nodes() if node not in cover]
    if sample_limit is not None:
        starts = starts[:sample_limit]
    for start in starts:
        # DFS over simple paths that avoid the cover entirely.
        stack: list[tuple[int, frozenset[int]]] = [(start, frozenset((start,)))]
        while stack:
            node, on_path = stack.pop()
            if len(on_path) >= k:
                return False
            for succ in graph.successors(node):
                if succ in cover or succ in on_path:
                    continue
                stack.append((succ, on_path | {succ}))
    return True
