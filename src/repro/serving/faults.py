"""Deterministic fault injection for the serving plane.

The dispatcher's whole job is surviving worker misbehaviour, so its
correctness tooling must be able to *produce* worker misbehaviour on
demand: a :class:`FaultPlan` describes, ahead of time, exactly which
worker does what and when, and travels to the worker process at spawn
(it is a plain picklable dataclass, so it crosses both ``fork`` and
``spawn`` boundaries).  Inside the worker a :class:`FaultInjector`
counts queries and batches and fires each spec once — every scaling PR
(sharding, async dispatch, autoscaling) regression-tests against the
same rig instead of hand-rolled sleeps and monkeypatches.

Fault kinds
-----------
Query-indexed (fire just before answering the worker's Nth query):

``"crash"``
    ``os._exit`` mid-batch — the worker dies without an EOF-preceding
    message, exercising replacement + chunk re-dispatch.
``"hang"``
    Sleep ``seconds`` — exercises the dispatcher's batch deadline and
    ping/replace path (a sleeping worker cannot answer a ping).
``"raise"``
    Raise :class:`InjectedFault` — a stand-in for a poison query,
    exercising the per-query error channel without crafting bad input.

Batch-indexed (fire on the worker's Nth completed batch):

``"drop_result"``
    Compute the batch but never send the result.  The worker stays
    responsive, so a deadline ping gets a pong and the dispatcher
    re-sends the outstanding chunks instead of replacing the worker.
``"defer_result"``
    Withhold the result and flush it when a batch from a *different
    epoch* arrives — a deterministic stale-epoch delivery, exercising
    the dispatcher's epoch fence.
``"error_reply"``
    Reply ``("error", ...)`` instead of a result — the dispatcher's
    protocol-failure raise path.

Targeting: a spec matches one ``worker`` slot (``None`` = any) and one
spawn ``generation`` (0 = the original process; a replacement in the
same slot is generation 1, so a crash spec does not re-fire in the
replacement and tests terminate deterministically; ``None`` = every
generation).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

#: Fault kinds indexed by the worker's running query count.
QUERY_KINDS = frozenset({"crash", "hang", "raise"})
#: Fault kinds indexed by the worker's running batch count.
BATCH_KINDS = frozenset({"drop_result", "defer_result", "error_reply"})
KINDS = QUERY_KINDS | BATCH_KINDS


class InjectedFault(RuntimeError):
    """Raised inside a worker by a ``"raise"`` fault spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *which worker* does *what*, *when*.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    at:
        1-based index: the worker's Nth query (query kinds) or Nth
        batch (batch kinds).  Counts are per worker process.
    worker:
        Worker slot this spec targets; ``None`` matches every slot.
    generation:
        Spawn generation this spec targets (0 = original process,
        incremented per replacement in the slot); ``None`` matches all.
    seconds:
        Sleep duration for ``"hang"``.
    """

    kind: str
    at: int = 1
    worker: int | None = None
    generation: int | None = 0
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.at < 1:
            raise ValueError("at is 1-based and must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of :class:`FaultSpec` entries.

    >>> plan = FaultPlan.single("raise", at=3, worker=0)
    >>> len(plan.specs)
    1
    """

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any iterable but store a hashable tuple.
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def single(cls, kind: str, **kwargs) -> "FaultPlan":
        """A plan with exactly one spec (the common test shape)."""
        return cls((FaultSpec(kind, **kwargs),))

    @classmethod
    def from_seed(
        cls,
        seed: int,
        kinds: tuple[str, ...] = ("crash", "raise", "drop_result"),
        workers: int = 2,
        span: int = 8,
    ) -> "FaultPlan":
        """Derive one spec per kind deterministically from ``seed``.

        Each spec targets a seeded worker slot in ``range(workers)``
        and a seeded 1-based index in ``range(1, span + 1)``.  The same
        seed always yields the same plan, so a failing fuzz case can be
        replayed exactly.
        """
        rng = random.Random(seed)
        specs = tuple(
            FaultSpec(
                kind=kind,
                at=rng.randint(1, max(1, span)),
                worker=rng.randrange(max(1, workers)),
            )
            for kind in kinds
        )
        return cls(specs)


class FaultInjector:
    """Per-worker runtime for a :class:`FaultPlan`.

    Lives inside the worker process; counts queries and batches, fires
    each matching spec exactly once, and stashes deferred replies until
    a batch from another epoch flushes them.
    """

    def __init__(self, plan: FaultPlan, worker_id: int,
                 generation: int = 0) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.queries_seen = 0
        self.batches_seen = 0
        self.specs = [
            spec
            for spec in plan.specs
            if (spec.worker is None or spec.worker == worker_id)
            and (spec.generation is None or spec.generation == generation)
        ]
        self._fired: set[int] = set()
        #: Stashed ``(epoch, reply)`` pairs from ``defer_result`` specs.
        self._deferred: list[tuple[int, tuple]] = []

    def _arm(self, kinds: frozenset, count: int) -> FaultSpec | None:
        """Return the first unfired matching spec for ``count``, if any."""
        for position, spec in enumerate(self.specs):
            if (
                spec.kind in kinds
                and spec.at == count
                and position not in self._fired
            ):
                self._fired.add(position)
                return spec
        return None

    # ------------------------------------------------------------------
    # Worker hooks
    # ------------------------------------------------------------------
    def before_query(self) -> None:
        """Called before each query; may crash, sleep, or raise."""
        self.queries_seen += 1
        spec = self._arm(QUERY_KINDS, self.queries_seen)
        if spec is None:
            return
        if spec.kind == "crash":
            os._exit(17)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return
        raise InjectedFault(
            f"injected failure at query {spec.at} "
            f"(worker {self.worker_id}, generation {self.generation})"
        )

    def on_batch(self, conn, batch_id: tuple[int, int]) -> None:
        """Called on batch receipt: flush replies deferred from other epochs."""
        self.batches_seen += 1
        epoch = batch_id[0]
        still_deferred = []
        for stashed_epoch, reply in self._deferred:
            if stashed_epoch != epoch:
                conn.send(reply)
            else:
                still_deferred.append((stashed_epoch, reply))
        self._deferred = still_deferred

    def outgoing_reply(self, batch_id: tuple[int, int],
                       reply: tuple) -> tuple | None:
        """Filter a result reply; return the message to send or ``None``."""
        spec = self._arm(BATCH_KINDS, self.batches_seen)
        if spec is None:
            return reply
        if spec.kind == "drop_result":
            return None
        if spec.kind == "defer_result":
            self._deferred.append((batch_id[0], reply))
            return None
        return (
            "error",
            self.worker_id,
            f"injected error reply at batch {spec.at}",
        )
