"""Path-scoped lint configuration.

Different layers of the repo make different promises, so they get
different rule sets:

* ``worker`` — ``src/repro/serving`` and ``src/repro/build``: code that
  runs inside (or dispatches to) worker processes.  Every rule is on,
  including DSO403, which bans *silent* pass-only exception handlers in
  favour of the per-query error channel.
* ``core`` — the rest of the library (``oracle``, ``overlay``,
  ``graph``, ``pathing``, ``cover``, ``landmarks``, ``workload``):
  every rule except the worker-loop-specific DSO403.
* ``experiments`` — ``src/repro/experiments``, ``benchmarks/``,
  ``examples/``: report/bench scripts may legitimately read the wall
  clock (DSO104 off) and are not worker loops (DSO403 off); the
  determinism rules stay on because formatted tables are serialized
  output too.
* ``tests`` — ``tests/``: only the rules whose violations are bugs in
  *any* code: NaN-sentinel comparison (DSO301), bare except (DSO401),
  and unpicklable dispatch (DSO201).  Tests monkeypatch, seed ad hoc,
  and intentionally provoke failures, so the stricter families would
  drown the signal.

A file that matches no scope gets ``core`` — strict by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath


@dataclass(frozen=True)
class Profile:
    """One named rule set.

    ``disabled`` turns individual rules off; ``enabled_only``, when
    non-empty, wins and turns everything else off.
    """

    name: str
    disabled: frozenset[str] = frozenset()
    enabled_only: frozenset[str] = frozenset()

    def rule_enabled(self, rule_id: str) -> bool:
        if self.enabled_only:
            return rule_id in self.enabled_only
        return rule_id not in self.disabled


@dataclass(frozen=True)
class LintConfig:
    """An ordered list of ``(path scope, profile)`` pairs.

    A scope is a ``/``-separated part sequence (e.g.
    ``"src/repro/serving"``); it matches a file whose path contains
    those parts contiguously, which keeps matching independent of the
    directory the linter is invoked from.  First match wins, so list
    specific scopes before general ones.
    """

    scopes: tuple[tuple[str, Profile], ...] = ()
    default: Profile = field(default_factory=lambda: Profile("core"))

    def profile_for(self, path: str) -> Profile:
        parts = PurePosixPath(str(path).replace("\\", "/")).parts
        for scope, profile in self.scopes:
            scope_parts = PurePosixPath(scope).parts
            width = len(scope_parts)
            if width == 0:
                continue
            for start in range(len(parts) - width + 1):
                if parts[start : start + width] == scope_parts:
                    return profile
        return self.default


WORKER_PROFILE = Profile("worker")
CORE_PROFILE = Profile("core", disabled=frozenset({"DSO403"}))
EXPERIMENTS_PROFILE = Profile(
    "experiments", disabled=frozenset({"DSO104", "DSO403"})
)
TESTS_PROFILE = Profile(
    "tests", enabled_only=frozenset({"DSO201", "DSO301", "DSO401"})
)

DEFAULT_CONFIG = LintConfig(
    scopes=(
        ("src/repro/serving", WORKER_PROFILE),
        ("src/repro/build", WORKER_PROFILE),
        ("src/repro/experiments", EXPERIMENTS_PROFILE),
        ("benchmarks", EXPERIMENTS_PROFILE),
        ("examples", EXPERIMENTS_PROFILE),
        ("tests", TESTS_PROFILE),
    ),
    default=CORE_PROFILE,
)


def profile_for_path(path: str, config: LintConfig | None = None) -> Profile:
    """The profile ``config`` (default config) applies to ``path``."""
    return (config or DEFAULT_CONFIG).profile_for(path)
