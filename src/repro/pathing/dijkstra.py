"""Dijkstra's algorithm and its bidirectional variant.

These are the reference algorithms of the library: the ``DI`` competitor
of the paper's experiments (classic Dijkstra with a binary heap, Section
7.1), the ground truth against which every oracle is tested, and the
building block on which the bounded variant (:mod:`repro.pathing.bounded`)
and the oracles are layered.

All entry points take an optional ``failed`` set of directed edges and
never traverse those edges, which is exactly how a distance sensitivity
query ``(s, t, F)`` is answered by the trivial solution: run Dijkstra on
``(V, E \\ F)`` (Section 3.1).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph, Edge
from repro.pathing.spt import INFINITY, ShortestPathTree


def dijkstra(
    graph: DiGraph,
    source: int,
    failed: set[Edge] | None = None,
    target: int | None = None,
) -> tuple[dict[int, float], dict[int, int | None]]:
    """Single-source shortest distances avoiding ``failed`` edges.

    Parameters
    ----------
    graph:
        The directed graph.
    source:
        Start node.
    failed:
        Directed edges that must not be traversed (the set ``F``).
    target:
        Optional early-exit node: the search stops once ``target`` is
        settled, so distances of nodes farther than ``target`` may be
        missing from the result.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the shortest distance from ``source`` to every
        settled node ``v``; ``parent[v]`` is the predecessor on that
        shortest path (``None`` for the source).

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not in the graph.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int | None] = {source: None}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    check_failed = bool(failed)
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        for head, weight in graph.successors(node).items():
            if head in settled:
                continue
            if check_failed and (node, head) in failed:
                continue
            candidate = d + weight
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                parent[head] = node
                heappush(heap, (candidate, head))
    return dist, parent


def shortest_distance(
    graph: DiGraph,
    source: int,
    target: int,
    failed: set[Edge] | None = None,
) -> float:
    """Return ``d(source, target, failed)``; ``inf`` when unreachable."""
    dist, _ = dijkstra(graph, source, failed=failed, target=target)
    return dist.get(target, INFINITY)


def shortest_path(
    graph: DiGraph,
    source: int,
    target: int,
    failed: set[Edge] | None = None,
) -> list[Edge] | None:
    """Return the shortest path ``P(source, target, failed)`` as edges.

    Returns None when ``target`` is unreachable.
    """
    dist, parent = dijkstra(graph, source, failed=failed, target=target)
    if target not in dist:
        return None
    edges: list[Edge] = []
    node = target
    while True:
        prev = parent[node]
        if prev is None:
            break
        edges.append((prev, node))
        node = prev
    edges.reverse()
    return edges


def path_distance(graph: DiGraph, path: list[Edge]) -> float:
    """Return ``d(P)``, the sum of the weights of the edges of ``path``."""
    return sum(graph.weight(tail, head) for tail, head in path)


def shortest_path_tree(
    graph: DiGraph,
    source: int,
    failed: set[Edge] | None = None,
) -> ShortestPathTree:
    """Build the full shortest path tree rooted at ``source``.

    Used by landmark preprocessing (FDDO trees and ALT distance tables).
    """
    dist, parent = dijkstra(graph, source, failed=failed)
    tree = ShortestPathTree(source)
    # Attach in order of increasing distance so parents always precede
    # children.
    for node in sorted(dist, key=dist.__getitem__):
        if node == source:
            continue
        prev = parent[node]
        assert prev is not None
        tree.attach(node, prev, dist[node])
    return tree


def bidirectional_dijkstra(
    graph: DiGraph,
    source: int,
    target: int,
    failed: set[Edge] | None = None,
) -> float:
    """Point-to-point distance by simultaneous forward/backward search.

    Alternates between a forward search from ``source`` and a backward
    search from ``target`` (over predecessors), stopping when the sum of
    the two frontier radii exceeds the best meeting distance found.

    Returns ``inf`` when ``target`` is unreachable.

    Raises
    ------
    NodeNotFoundError
        If either endpoint is missing from the graph.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return 0.0
    check_failed = bool(failed)

    dist_fwd: dict[int, float] = {source: 0.0}
    dist_bwd: dict[int, float] = {target: 0.0}
    settled_fwd: set[int] = set()
    settled_bwd: set[int] = set()
    heap_fwd: list[tuple[float, int]] = [(0.0, source)]
    heap_bwd: list[tuple[float, int]] = [(0.0, target)]
    best = INFINITY

    while heap_fwd and heap_bwd:
        if heap_fwd[0][0] + heap_bwd[0][0] >= best:
            break
        # Expand the smaller frontier.
        if heap_fwd[0][0] <= heap_bwd[0][0]:
            d, node = heappop(heap_fwd)
            if node in settled_fwd:
                continue
            settled_fwd.add(node)
            for head, weight in graph.successors(node).items():
                if head in settled_fwd:
                    continue
                if check_failed and (node, head) in failed:
                    continue
                candidate = d + weight
                if candidate < dist_fwd.get(head, INFINITY):
                    dist_fwd[head] = candidate
                    heappush(heap_fwd, (candidate, head))
                meeting = candidate + dist_bwd.get(head, INFINITY)
                if meeting < best:
                    best = meeting
        else:
            d, node = heappop(heap_bwd)
            if node in settled_bwd:
                continue
            settled_bwd.add(node)
            for tail, weight in graph.predecessors(node).items():
                if tail in settled_bwd:
                    continue
                if check_failed and (tail, node) in failed:
                    continue
                candidate = d + weight
                if candidate < dist_bwd.get(tail, INFINITY):
                    dist_bwd[tail] = candidate
                    heappush(heap_bwd, (candidate, tail))
                meeting = candidate + dist_fwd.get(tail, INFINITY)
                if meeting < best:
                    best = meeting
    # One frontier can run dry while the other still holds the witness
    # meeting point; ``best`` already accounts for every scanned edge.
    return best


def eccentricity(graph: DiGraph, source: int) -> float:
    """Return the maximum finite shortest distance from ``source``.

    Useful for diameter estimation in workload characterisation.
    """
    dist, _ = dijkstra(graph, source)
    return max(dist.values(), default=0.0)


def reverse_dijkstra(
    graph: DiGraph,
    target: int,
    failed: set[Edge] | None = None,
) -> dict[int, float]:
    """Distances from every node *to* ``target`` (search over in-edges).

    Equivalent to running :func:`dijkstra` on the reversed graph, without
    materialising the reversal.  Needed by landmark preprocessing, which
    stores both outbound and inbound distances from each landmark
    (Section 5.2).
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    dist: dict[int, float] = {target: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, target)]
    check_failed = bool(failed)
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for tail, weight in graph.predecessors(node).items():
            if tail in settled:
                continue
            if check_failed and (tail, node) in failed:
                continue
            candidate = d + weight
            if candidate < dist.get(tail, INFINITY):
                dist[tail] = candidate
                heappush(heap, (candidate, tail))
    return dist
