"""Index auditing: validate a DISO-family index against its graph.

After a long maintenance history (or a deserialization from untrusted
storage) an operator wants to *prove* the index still matches the
graph rather than trust it.  :func:`audit_index` re-derives every
component and reports discrepancies:

1. the transit set is non-empty and a subset of the graph's nodes;
2. the distance graph matches Definition 4.1 exactly (edge set and
   weights against fresh bounded searches);
3. every bounded tree matches a fresh bounded search from its root
   (same nodes, same distances, valid parent edges);
4. the inverted tree index matches the trees exactly (no missing and
   no stale entries).

An empty report means every query the oracle can answer is backed by a
consistent index.  Cost: one bounded Dijkstra per transit node — the
same as preprocessing — so audit offline, not per query.
"""

from __future__ import annotations

from repro.oracle.diso import DISO
from repro.overlay.distance_graph import verify_distance_graph
from repro.pathing.bounded import bounded_dijkstra


def audit_index(oracle: DISO) -> list[str]:
    """Return a list of inconsistencies (empty when the index is sound)."""
    problems: list[str] = []
    graph = oracle.graph
    transit = oracle.transit

    # 1. Transit set sanity.
    if not transit:
        problems.append("transit set is empty")
    for node in sorted(transit):
        if not graph.has_node(node):
            problems.append(f"transit node {node} is not in the graph")

    # 2. Distance graph vs Definition 4.1.
    problems.extend(verify_distance_graph(graph, oracle.distance_graph))

    # 3. Trees vs fresh bounded searches.
    if oracle.trees.roots() != transit:
        problems.append(
            "tree roots do not match the transit set: "
            f"{sorted(oracle.trees.roots() ^ transit)} differ"
        )
    for root in sorted(transit):
        if root not in oracle.trees:
            continue
        tree = oracle.trees.tree(root)
        fresh = bounded_dijkstra(graph, root, transit, None, "out")
        if set(tree.dist) != set(fresh.dist):
            problems.append(
                f"tree of {root}: node set differs from a fresh bounded "
                f"search by {sorted(set(tree.dist) ^ set(fresh.dist))}"
            )
            continue
        for node, distance in fresh.dist.items():
            if abs(tree.dist[node] - distance) > 1e-9:
                problems.append(
                    f"tree of {root}: distance to {node} is "
                    f"{tree.dist[node]}, fresh search says {distance}"
                )
        for parent, child in tree.tree_edges():
            if not graph.has_edge(parent, child):
                problems.append(
                    f"tree of {root}: tree edge ({parent}, {child}) is "
                    "not a graph edge"
                )

    # 4. Inverted index vs trees.
    expected: dict[tuple[int, int], set[int]] = {}
    for root in sorted(transit):
        if root not in oracle.trees:
            continue
        for edge in oracle.trees.tree(root).tree_edges():
            expected.setdefault(edge, set()).add(root)
    for edge, roots in expected.items():
        indexed = oracle.inverted_index.trees_containing(edge)
        if set(indexed) != roots:
            problems.append(
                f"inverted index for edge {edge}: has {sorted(indexed)}, "
                f"trees say {sorted(roots)}"
            )
    # Stale entries: edges indexed but in no tree.
    total_expected = sum(len(roots) for roots in expected.values())
    if oracle.inverted_index.entry_count() != total_expected:
        problems.append(
            "inverted index entry count "
            f"{oracle.inverted_index.entry_count()} != expected "
            f"{total_expected} (stale entries present)"
        )
    return problems
