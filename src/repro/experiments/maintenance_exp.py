"""Maintenance experiments (paper supplemental material).

The paper's supplemental evaluation shows that its maintenance
strategies "reasonably efficiently update [the oracles] without losing
query efficiency".  This harness measures both halves:

* **update cost** — mean wall-clock per permanent operation (edge
  deletion, insertion, weight change), and how many bounded trees each
  rebuilds;
* **query efficiency preservation** — query time and exactness on the
  maintained index versus a freshly rebuilt oracle over the final
  graph.
"""

from __future__ import annotations

import random
import time

from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import render_table
from repro.oracle.diso import DISO
from repro.oracle.maintenance import OracleMaintainer
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries


def run_maintenance_experiment(
    dataset: str = "NY",
    scale: float = 0.5,
    operations_per_kind: int = 10,
    query_count: int = 12,
    seed: int = 7,
) -> dict[str, object]:
    """Apply mixed permanent updates; measure update and query costs."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    oracle = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    maintainer = OracleMaintainer(oracle)
    rng = random.Random(seed)

    timings: dict[str, list[float]] = {
        "delete": [],
        "insert": [],
        "increase": [],
        "decrease": [],
    }
    nodes = sorted(graph.nodes())
    for _ in range(operations_per_kind):
        edges = sorted(graph.edge_set())

        edge = rng.choice(edges)
        started = time.perf_counter()
        maintainer.delete_edge(*edge)
        timings["delete"].append(time.perf_counter() - started)

        while True:
            a, b = rng.sample(nodes, 2)
            if not graph.has_edge(a, b):
                break
        started = time.perf_counter()
        maintainer.insert_edge(a, b, rng.random() + 0.1)
        timings["insert"].append(time.perf_counter() - started)

        edges = sorted(graph.edge_set())
        edge = rng.choice(edges)
        started = time.perf_counter()
        maintainer.change_weight(*edge, graph.weight(*edge) * 2.0)
        timings["increase"].append(time.perf_counter() - started)

        edge = rng.choice(edges)
        started = time.perf_counter()
        maintainer.change_weight(*edge, graph.weight(*edge) * 0.5)
        timings["decrease"].append(time.perf_counter() - started)

    # Query efficiency on the maintained index vs a fresh rebuild.
    queries = generate_queries(graph, query_count, f_gen=5, p=0.0005, seed=seed)
    truth = exact_answers(graph, queries)
    maintained = run_batch(oracle, queries, truth)
    fresh_oracle = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    fresh = run_batch(fresh_oracle, queries, truth)

    return {
        "dataset": dataset,
        "update_ms": {
            kind: 1000.0 * sum(values) / max(1, len(values))
            for kind, values in timings.items()
        },
        "rebuilt_trees": maintainer.rebuilt_trees,
        "maintained_query_ms": maintained.query_ms,
        "maintained_error_pct": maintained.error_pct,
        "fresh_query_ms": fresh.query_ms,
        "fresh_preprocess_seconds": fresh_oracle.preprocess_seconds,
    }


def format_maintenance_experiment(data: dict[str, object]) -> str:
    """Render the maintenance experiment results."""
    update_rows = [
        {"operation": kind, "mean_ms": f"{ms:.3f}"}
        for kind, ms in sorted(data["update_ms"].items())
    ]
    update_table = render_table(
        update_rows,
        columns=[("operation", "Operation"), ("mean_ms", "Mean update (ms)")],
        title=(
            f"Supplemental: maintenance update cost ({data['dataset']}, "
            f"{data['rebuilt_trees']} trees rebuilt in total)"
        ),
    )
    query_rows = [
        {
            "index": "maintained",
            "query_ms": f"{data['maintained_query_ms']:.3f}",
            "error": f"{data['maintained_error_pct']:.2f}%",
        },
        {
            "index": "fresh rebuild",
            "query_ms": f"{data['fresh_query_ms']:.3f}",
            "error": "0.00%",
        },
    ]
    query_table = render_table(
        query_rows,
        columns=[
            ("index", "Index"),
            ("query_ms", "Query(ms)"),
            ("error", "Err"),
        ],
        title="Query efficiency after maintenance",
    )
    return update_table + "\n\n" + query_table
