"""Distance graph sparsification (Section 6.2).

An edge ``(x, y)`` of a graph can be removed when an alternative path
from ``x`` to ``y`` — not using ``(x, y)`` — exists with distance at most
``beta * w(x, y)`` for a parameter ``beta >= 1``: every shortest path
that used the edge then has a replacement within factor ``beta``.

Cascade control (the paper's "tracking their cascaded effects on error",
detailed only in the supplemental material) is implemented here by
*witness protection*: the edges of the alternative path that justified a
removal are marked protected and are never removed afterwards, so every
removed edge keeps a surviving witness path and the ``beta`` bound never
compounds.  In addition the paper's degree floor is enforced: nodes with
few remaining out-edges keep them, so single residual edges cannot be
stranded by a future failure ("if the number of edges of a node is less
than a certain number, we do not remove them" — 5 when the average
degree exceeds 10, else 3).

The same routine sparsifies both the distance graph and the input graph,
as DISO-S does in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.graph.digraph import DiGraph, Edge
from repro.pathing.spt import INFINITY


@dataclass
class SparsificationResult:
    """Outcome of :func:`sparsify_graph`.

    Attributes
    ----------
    graph:
        The sparsified copy.
    removed:
        Edges that were removed, with their original weights.
    protected:
        Edges protected as witnesses of some removal.
    beta:
        The stretch bound used.
    """

    graph: DiGraph
    removed: dict[Edge, float] = field(default_factory=dict)
    protected: set[Edge] = field(default_factory=set)
    beta: float = 1.0

    @property
    def removal_ratio(self) -> float:
        """Fraction of original edges removed."""
        total = self.graph.number_of_edges() + len(self.removed)
        if total == 0:
            return 0.0
        return len(self.removed) / total


def default_degree_floor(graph: DiGraph) -> int:
    """The paper's degree floor: 5 if average degree > 10, else 3."""
    return 5 if graph.average_degree() > 10 else 3


def _bounded_cost_distance(
    graph: DiGraph,
    source: int,
    target: int,
    cutoff: float,
) -> float:
    """Shortest distance from ``source`` to ``target`` capped at ``cutoff``.

    Returns ``inf`` when no path within ``cutoff`` exists.  The search
    never expands labels above the cutoff, so checking a removal
    candidate costs only a small local search.
    """
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return d
        for head, weight in graph.successors(node).items():
            if head in settled:
                continue
            candidate = d + weight
            if candidate > cutoff:
                continue
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                heappush(heap, (candidate, head))
    return INFINITY


def _witness_path(
    graph: DiGraph,
    source: int,
    target: int,
    cutoff: float,
) -> list[Edge] | None:
    """Return a path from source to target within ``cutoff``, or None."""
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int | None] = {source: None}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            edges: list[Edge] = []
            current = target
            while True:
                prev = parent[current]
                if prev is None:
                    break
                edges.append((prev, current))
                current = prev
            edges.reverse()
            return edges
        for head, weight in graph.successors(node).items():
            if head in settled:
                continue
            candidate = d + weight
            if candidate > cutoff:
                continue
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                parent[head] = node
                heappush(heap, (candidate, head))
    return None


def sparsify_graph(
    graph: DiGraph,
    beta: float,
    degree_floor: int | None = None,
) -> SparsificationResult:
    """Remove edges that have a ``beta``-bounded alternative path.

    Edges are considered in decreasing weight order (heavy edges are the
    most likely to have cheap detours and the most valuable to drop).
    An edge is removed only when

    * neither endpoint would fall below the degree floor (out-degree of
      the tail, in-degree of the head),
    * it is not protected as a witness of an earlier removal, and
    * a witness path within ``beta * w`` survives in the current graph.

    Parameters
    ----------
    graph:
        The graph to sparsify; not modified.
    beta:
        Stretch bound, ``>= 1``.
    degree_floor:
        Minimum retained degree; defaults to the paper's rule
        (:func:`default_degree_floor`).

    Raises
    ------
    ValueError
        If ``beta < 1``.
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if degree_floor is None:
        degree_floor = default_degree_floor(graph)
    working = graph.copy()
    result = SparsificationResult(graph=working, beta=beta)
    protected = result.protected

    candidates = sorted(
        graph.edges(), key=lambda edge: (-edge[2], edge[0], edge[1])
    )
    for tail, head, weight in candidates:
        if (tail, head) in protected:
            continue
        if working.out_degree(tail) <= degree_floor:
            continue
        if working.in_degree(head) <= degree_floor:
            continue
        if not working.has_edge(tail, head):
            continue
        cutoff = beta * weight
        working.remove_edge(tail, head)
        witness = _witness_path(working, tail, head, cutoff)
        if witness is None:
            working.add_edge(tail, head, weight)
            continue
        result.removed[(tail, head)] = weight
        protected.update(witness)
    return result


def verify_sparsification(
    original: DiGraph,
    result: SparsificationResult,
) -> list[str]:
    """Verify the ``beta`` bound for every removed edge; return violations.

    For each removed edge a path within ``beta * w`` must still exist in
    the sparsified graph (the cascade-control guarantee).
    """
    problems: list[str] = []
    for (tail, head), weight in result.removed.items():
        cutoff = result.beta * weight + 1e-9
        alt = _bounded_cost_distance(result.graph, tail, head, cutoff)
        if alt == INFINITY:
            problems.append(
                f"removed edge ({tail}, {head}) with weight {weight} has no "
                f"alternative within beta={result.beta}"
            )
    return problems
