"""Text, JSON and SARIF renderings of a lint report.

SARIF (:func:`to_sarif`) is the exchange format GitHub code scanning
ingests: one run, one rule descriptor per catalogue entry, one result
per finding.  Suppressed findings are included with an ``inSource``
suppression record carrying the waiver justification, so the scanning
UI shows them as dismissed rather than hiding them — the same
auditability contract as the JSON artifact.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULE_CATALOGUE_VERSION, rule_catalogue


def to_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable listing: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in report.unsuppressed:
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"[{finding.severity}] {finding.message}"
        )
    if show_suppressed:
        for finding in report.suppressed:
            reason = finding.justification or "(no justification)"
            lines.append(
                f"{finding.location()}: {finding.rule_id} "
                f"[suppressed] {reason}"
            )
    unsuppressed = len(report.unsuppressed)
    lines.append(
        f"dsolint v{RULE_CATALOGUE_VERSION}: {len(report.files)} files, "
        f"{unsuppressed} finding{'s' if unsuppressed != 1 else ''}, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def to_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact schema)."""
    payload = {
        "tool": "dsolint",
        "catalogue_version": RULE_CATALOGUE_VERSION,
        "catalogue": rule_catalogue(),
        "files": report.files,
        "counts": {
            "files": len(report.files),
            "findings": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
        },
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def to_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 rendering (the code-scanning upload format)."""
    catalogue = rule_catalogue()
    rule_ids = sorted(catalogue)
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": catalogue[rule_id]["summary"]},
            "defaultConfiguration": {
                "level": catalogue[rule_id]["severity"]
            },
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule_id,
            "level": (
                finding.severity
                if finding.severity in ("error", "warning")
                else "error"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in index_of:
            result["ruleIndex"] = index_of[finding.rule_id]
        if finding.suppressed:
            result["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": finding.justification or "",
                }
            ]
        results.append(result)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dsolint",
                        "version": RULE_CATALOGUE_VERSION,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
