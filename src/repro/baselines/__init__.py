"""Competitor algorithms used in the paper's evaluation."""

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dhnr import DHNROracle
from repro.baselines.dijkstra_oracle import (
    DijkstraOracle,
    StaticDijkstraOracle,
)
from repro.baselines.fddo import FDDOOracle

__all__ = [
    "DijkstraOracle",
    "StaticDijkstraOracle",
    "AStarOracle",
    "FDDOOracle",
    "DHNROracle",
]
