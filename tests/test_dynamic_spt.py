"""Tests for DynDijkstra-style shortest path tree repair."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dijkstra import dijkstra, shortest_path_tree
from repro.pathing.dynamic_spt import (
    affected_subtree_nodes,
    apply_failures,
    recompute_boundary_distances,
    recompute_distances,
)
from util import random_failures_from, random_graph


class TestAffectedDetection:
    def test_non_tree_edge_has_no_effect(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        # (2, 3) is not a tree edge (path via 1 is shorter).
        assert affected_subtree_nodes(tree, {(2, 3)}) == set()

    def test_tree_edge_invalidates_subtree(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        assert affected_subtree_nodes(tree, {(0, 1)}) == {1, 3}

    def test_nested_failures(self, line):
        tree = shortest_path_tree(line, 0)
        affected = affected_subtree_nodes(tree, {(2, 3), (5, 6)})
        assert affected == {3, 4, 5, 6, 7}


class TestRecomputeDistances:
    def test_no_tree_failures_returns_original(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        result = recompute_distances(diamond, tree, {(2, 3)})
        assert result == tree.dist

    def test_reroute_through_alternative(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        result = recompute_distances(diamond, tree, {(1, 3)})
        assert result[3] == pytest.approx(4.0)  # rerouted via node 2
        assert result[1] == pytest.approx(1.0)  # node 1 itself unaffected

    def test_unreachable_nodes_dropped(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        tree = shortest_path_tree(g, 0)
        result = recompute_distances(g, tree, {(1, 2)})
        assert 2 not in result
        assert result[1] == 1.0

    def test_tree_not_mutated(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        before = dict(tree.dist)
        recompute_distances(diamond, tree, {(0, 1)})
        assert tree.dist == before
        tree.check_invariants()

    def test_bounded_variant_respects_transit(self):
        # 0 -> 1 -> 2 and 0 -> 3 -> 2 with 3 transit: after failing
        # (1, 2), node 2 cannot be re-reached through transit node 3.
        g = DiGraph(
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 1.0),
                (3, 2, 1.0),
            ]
        )
        transit = frozenset({0, 2, 3})
        tree = bounded_dijkstra(g, 0, transit).to_tree()
        result = recompute_distances(g, tree, {(1, 2)}, transit)
        assert 2 not in result


class TestBoundaryDistances:
    def test_matches_fresh_bounded_run(self, small_road):
        transit = frozenset({10, 40, 80, 120})
        tree = bounded_dijkstra(small_road, 10, transit).to_tree()
        failed = {(10, 11), (25, 26)}
        repaired = recompute_boundary_distances(
            small_road, tree, failed, transit
        )
        fresh = bounded_dijkstra(small_road, 10, transit, failed)
        expected = {v: d for v, d in fresh.access.items() if v != 10}
        assert set(repaired) == set(expected)
        for node, d in expected.items():
            assert repaired[node] == pytest.approx(d)


class TestApplyFailures:
    def test_mutates_to_post_failure_tree(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        apply_failures(diamond, tree, {(1, 3)})
        assert tree.dist[3] == pytest.approx(4.0)
        assert tree.parent[3] == 2
        tree.check_invariants()

    def test_unreachable_nodes_removed(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        tree = shortest_path_tree(g, 0)
        apply_failures(g, tree, {(0, 1)})
        assert 1 not in tree
        assert 2 not in tree

    def test_noop_without_tree_failures(self, diamond):
        tree = shortest_path_tree(diamond, 0)
        before = dict(tree.dist)
        changed = apply_failures(diamond, tree, {(2, 3)})
        assert changed == set()
        assert tree.dist == before


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    fail_seed=st.integers(min_value=0, max_value=5000),
    fail_count=st.integers(min_value=1, max_value=12),
)
def test_recompute_matches_from_scratch(seed, fail_seed, fail_count):
    """Repair equals rebuilding the SPT from scratch under failures."""
    graph = random_graph(seed)
    tree = shortest_path_tree(graph, 0)
    failed = random_failures_from(graph, fail_seed, fail_count)
    repaired = recompute_distances(graph, tree, failed)
    expected, _ = dijkstra(graph, 0, failed=failed)
    assert set(repaired) == set(expected)
    for node, d in expected.items():
        assert repaired[node] == pytest.approx(d)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    fail_seed=st.integers(min_value=0, max_value=5000),
)
def test_bounded_recompute_matches_fresh_bounded(seed, fail_seed):
    """Bounded repair equals a fresh bounded Dijkstra under failures."""
    graph = random_graph(seed)
    transit = frozenset({4, 9, 14, 19, 24, 29})
    root = 4
    tree = bounded_dijkstra(graph, root, transit).to_tree()
    failed = random_failures_from(graph, fail_seed, 6)
    repaired = recompute_distances(graph, tree, failed, transit)
    fresh = bounded_dijkstra(graph, root, transit, failed)
    assert set(repaired) == set(fresh.dist)
    for node, d in fresh.dist.items():
        assert repaired[node] == pytest.approx(d)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    fail_seed=st.integers(min_value=0, max_value=5000),
)
def test_apply_failures_matches_fresh_tree(seed, fail_seed):
    """Mutating repair produces a valid SPT with correct distances."""
    graph = random_graph(seed)
    tree = shortest_path_tree(graph, 0)
    failed = random_failures_from(graph, fail_seed, 6)
    apply_failures(graph, tree, failed)
    expected, _ = dijkstra(graph, 0, failed=failed)
    assert set(tree.dist) == set(expected)
    for node, d in expected.items():
        assert tree.dist[node] == pytest.approx(d)
    tree.check_invariants()
