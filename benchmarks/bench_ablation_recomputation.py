"""Ablation bench: the second-level index's lazy recomputation.

DESIGN.md design decision 2: affected-node weights are recomputed by
repairing the stored bounded tree instead of rerunning a bounded
Dijkstra from scratch.  This bench isolates exactly that difference —
DISO vs the DISO- ablation on the *same* transit set under a heavy
random failure rate — the mechanism behind Figure 6(b).
"""

from __future__ import annotations

from functools import lru_cache

from repro.oracle.diso import DISO
from repro.oracle.diso_minus import DISOMinus
from repro.workload.queries import generate_queries

from bench_util import SEED, dataset, run_query_batch


@lru_cache(maxsize=None)
def shared_setup():
    graph = dataset("NY")
    diso = DISO(graph, tau=4, theta=1.0)
    minus = DISOMinus(graph, transit=diso.transit)
    batch = tuple(
        generate_queries(graph, 12, f_gen=5, p=0.01, seed=SEED)
    )
    return graph, diso, minus, batch


def test_lazy_tree_repair(benchmark):
    _, diso, _, batch = shared_setup()
    checksum = benchmark(run_query_batch, diso, batch)
    assert checksum > 0


def test_from_scratch_recomputation(benchmark):
    _, _, minus, batch = shared_setup()
    checksum = benchmark(run_query_batch, minus, batch)
    assert checksum > 0


def test_ablation_shape(benchmark):
    """Under heavy p, tree repair beats from-scratch recomputation."""
    graph, diso, minus, batch = shared_setup()
    import time

    def compare():
        start = time.perf_counter()
        a = run_query_batch(diso, batch)
        diso_time = time.perf_counter() - start
        start = time.perf_counter()
        b = run_query_batch(minus, batch)
        minus_time = time.perf_counter() - start
        return a, b, diso_time, minus_time

    a, b, diso_time, minus_time = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert a == b  # both exact on the same transit set
    assert diso_time < minus_time
