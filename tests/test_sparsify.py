"""Tests for distance graph sparsification (Section 6.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.overlay.sparsify import (
    default_degree_floor,
    sparsify_graph,
    verify_sparsification,
)
from repro.pathing.dijkstra import shortest_distance
from util import random_graph


class TestDegreeFloor:
    def test_low_degree_graph(self, small_road):
        assert default_degree_floor(small_road) == 3

    def test_high_degree_graph(self):
        g = DiGraph()
        for a in range(14):
            for b in range(14):
                if a != b:
                    g.add_edge(a, b, 1.0)
        assert default_degree_floor(g) == 5


class TestSparsifyBasics:
    def test_invalid_beta_raises(self, small_road):
        with pytest.raises(ValueError):
            sparsify_graph(small_road, beta=0.5)

    def test_original_untouched(self, small_social):
        before = small_social.number_of_edges()
        sparsify_graph(small_social, beta=2.0, degree_floor=1)
        assert small_social.number_of_edges() == before

    def test_removes_redundant_edge(self):
        # Heavy direct edge with a cheap 2-hop alternative.
        g = DiGraph(
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 2.0),
                # padding so degree floor does not protect (0, 2)
                (0, 3, 1.0), (0, 4, 1.0), (0, 5, 1.0),
                (3, 2, 9.0), (4, 2, 9.0), (5, 2, 9.0),
            ]
        )
        result = sparsify_graph(g, beta=1.5, degree_floor=2)
        assert (0, 2) in result.removed
        assert not result.graph.has_edge(0, 2)

    def test_degree_floor_respected(self, small_social):
        result = sparsify_graph(small_social, beta=3.0, degree_floor=2)
        for node in result.graph.nodes():
            original_out = small_social.out_degree(node)
            if original_out >= 2:
                assert result.graph.out_degree(node) >= 2

    def test_removal_ratio(self, small_social):
        result = sparsify_graph(small_social, beta=2.0, degree_floor=1)
        assert 0.0 <= result.removal_ratio < 1.0

    def test_no_removal_when_beta_one_and_unique_paths(self, line):
        # On a bare path there is never an alternative route.
        result = sparsify_graph(line, beta=2.0, degree_floor=0)
        assert result.removed == {}


class TestBetaBound:
    def test_verify_reports_no_violations(self, small_social):
        result = sparsify_graph(small_social, beta=1.5)
        assert verify_sparsification(small_social, result) == []

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        beta=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_beta_bound_random(self, seed, beta):
        """Every removed edge keeps a witness within beta (cascade-safe)."""
        graph = random_graph(seed)
        result = sparsify_graph(graph, beta=beta, degree_floor=1)
        assert verify_sparsification(graph, result) == []

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_pairwise_stretch_without_failures(self, seed):
        """Failure-free distances stretch by at most beta overall.

        Because every removed edge has a beta-witness and witnesses are
        protected, any shortest path's removed edges can be replaced by
        their witnesses: total stretch <= beta.
        """
        beta = 1.6
        graph = random_graph(seed)
        result = sparsify_graph(graph, beta=beta, degree_floor=1)
        for target in (5, 12, 25):
            original = shortest_distance(graph, 0, target)
            sparsed = shortest_distance(result.graph, 0, target)
            assert sparsed <= beta * original + 1e-9
            assert sparsed >= original - 1e-9  # never shorter


class TestWitnessProtection:
    def test_protected_edges_survive(self, small_social):
        result = sparsify_graph(small_social, beta=2.0, degree_floor=1)
        for edge in result.protected:
            assert result.graph.has_edge(*edge), (
                f"witness edge {edge} was removed"
            )

    def test_removed_and_protected_disjoint(self, small_social):
        result = sparsify_graph(small_social, beta=2.0, degree_floor=1)
        assert not (set(result.removed) & result.protected)
