"""The fault-injection rig, and the dispatcher behaviour it certifies.

Unit tests pin the rig's own semantics (seeded determinism, worker /
generation targeting, fire-once, defer bookkeeping) without spawning
processes; the end-to-end classes then drive a real 2-worker pool
through every injected failure mode and assert the hardened dispatch
contract: poison queries degrade per-query with zero restarts, a crash
costs at most one chunk of rework, a hung worker is replaced after the
deadline ping goes unanswered, a lost result is recovered by re-send
(not restart), stale-epoch results from an aborted run are fenced out
of the next one, and every raise path leaves the pool consistent.

Set ``DSO_SERVING_START_METHOD=spawn`` (or ``fork``) to pin the
multiprocessing start method — CI runs this file under both.
"""

from __future__ import annotations

import math
import multiprocessing
import os

import pytest

from repro.oracle.diso import DISO
from repro.oracle.snapshot import save_snapshot
from repro.serving import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    QueryService,
)
from repro.workload.queries import generate_queries
from util import random_graph

START_METHOD = os.environ.get("DSO_SERVING_START_METHOD") or None

CHUNK = 4


def make_service(path, **kwargs) -> QueryService:
    """A QueryService honouring the CI start-method override."""
    kwargs.setdefault("start_method", START_METHOD)
    kwargs.setdefault("chunk_size", CHUNK)
    return QueryService(path, **kwargs)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One frozen DISO, its snapshot on disk, and a query batch."""
    graph = random_graph(17, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    batch = generate_queries(graph, 16, f_gen=2, p=0.01, seed=9)
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    path = save_snapshot(
        frozen, tmp_path_factory.mktemp("faults") / "o.dsosnap"
    )
    return graph, frozen, path, batch, expected


def fresh_batch(served, seed: int, count: int = 12):
    """A new batch plus its expected answers (distinct per seed)."""
    graph, frozen, _, _, _ = served
    batch = generate_queries(graph, count, f_gen=2, p=0.01, seed=seed)
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    return batch, expected


class _RecordingConn:
    """Stands in for the worker's pipe end in injector unit tests."""

    def __init__(self) -> None:
        self.sent: list[tuple] = []

    def send(self, message) -> None:
        self.sent.append(message)


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        first = FaultPlan.from_seed(5)
        again = FaultPlan.from_seed(5)
        assert first == again
        assert FaultPlan.from_seed(6) != first
        for spec in first.specs:
            assert 1 <= spec.at <= 8
            assert spec.worker in (0, 1)

    def test_single_and_truthiness(self):
        assert not FaultPlan()
        plan = FaultPlan.single("crash", at=2, worker=1)
        assert plan
        assert plan.specs == (FaultSpec("crash", at=2, worker=1),)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("melt")

    def test_rejects_non_positive_at(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("crash", at=0)


class TestFaultInjector:
    def test_targets_worker_and_generation(self):
        plan = FaultPlan.single("raise", at=1, worker=1, generation=0)
        assert FaultInjector(plan, worker_id=0).specs == []
        assert FaultInjector(plan, worker_id=1, generation=1).specs == []
        armed = FaultInjector(plan, worker_id=1, generation=0)
        assert len(armed.specs) == 1

    def test_raise_fires_exactly_once(self):
        plan = FaultPlan.single("raise", at=2, worker=None)
        injector = FaultInjector(plan, worker_id=0)
        injector.before_query()  # query 1: clean
        with pytest.raises(InjectedFault):
            injector.before_query()  # query 2: fires
        injector.before_query()  # query 2 re-run: disarmed

    def test_drop_result_swallows_one_reply(self):
        plan = FaultPlan.single("drop_result", at=1, worker=0)
        injector = FaultInjector(plan, worker_id=0)
        conn = _RecordingConn()
        injector.on_batch(conn, (1, 0))
        assert injector.outgoing_reply((1, 0), ("result", (1, 0))) is None
        injector.on_batch(conn, (1, 1))
        reply = ("result", (1, 1))
        assert injector.outgoing_reply((1, 1), reply) == reply

    def test_defer_result_flushes_on_new_epoch_only(self):
        plan = FaultPlan.single("defer_result", at=1, worker=0)
        injector = FaultInjector(plan, worker_id=0)
        conn = _RecordingConn()
        injector.on_batch(conn, (1, 0))
        stale = ("result", (1, 0))
        assert injector.outgoing_reply((1, 0), stale) is None
        injector.on_batch(conn, (1, 1))  # same epoch: still stashed
        assert conn.sent == []
        injector.on_batch(conn, (2, 0))  # new epoch: flushed ahead
        assert conn.sent == [stale]

    def test_error_reply_substitutes_message(self):
        plan = FaultPlan.single("error_reply", at=1, worker=0)
        injector = FaultInjector(plan, worker_id=0)
        injector.on_batch(_RecordingConn(), (1, 0))
        reply = injector.outgoing_reply((1, 0), ("result", (1, 0)))
        assert reply[0] == "error"
        assert "injected error reply" in reply[2]


class TestCrashFaults:
    def test_crash_on_nth_query_costs_one_chunk_of_rework(self, served):
        _, _, path, batch, expected = served
        plan = FaultPlan.single("crash", at=2, worker=0)
        with make_service(path, workers=2, fault_plan=plan) as service:
            report = service.run(batch)
        assert report.answers == expected
        assert report.error_count == 0
        assert report.restarts == 1
        assert report.per_worker[0].restarts == 1
        # Replacement re-answers only the dead worker's unanswered
        # chunks, and duplicate results are dropped before accounting,
        # so every query is counted exactly once despite the crash.
        assert sum(s.queries for s in report.per_worker) == len(batch)

    def test_crash_never_contaminates_subsequent_epochs(self, served):
        """Property across epochs: after a mid-run crash, later runs
        with different batches return exactly their own answers."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("crash", at=3, worker=1)
        with make_service(path, workers=2, fault_plan=plan) as service:
            first = service.run(batch)
            assert first.answers == expected
            assert first.restarts == 1
            for seed in (31, 32, 33):
                other, other_expected = fresh_batch(served, seed)
                report = service.run(other)
                assert report.answers == other_expected
                assert report.restarts == 0
                assert report.error_count == 0

    def test_replacement_worker_stats_are_accurate(self, served):
        _, _, path, batch, expected = served
        plan = FaultPlan.single("crash", at=2, worker=0)
        service = make_service(path, workers=2, fault_plan=plan)
        try:
            service.start()
            original = service._pool[0]
            original_pid = original.pid
            original_load = original.load_seconds
            report = service.run(batch)
            assert report.answers == expected
            row = report.per_worker[0]
            assert row.restarts == 1
            # The slot's stats follow the replacement, not the corpse.
            assert row.pid == service._pool[0].pid
            assert row.pid != original_pid
            assert row.load_seconds == pytest.approx(
                original_load + service._pool[0].load_seconds
            )
            # _ensure_alive-style replacements also land here:
            assert service.total_restarts == 1
        finally:
            service.stop()


class TestPoisonFaults:
    def test_injected_raise_is_per_query_error_zero_restarts(self, served):
        _, _, path, batch, expected = served
        plan = FaultPlan.single("raise", at=3, worker=1)
        with make_service(path, workers=2, fault_plan=plan) as service:
            report = service.run(batch)
            assert service.total_restarts == 0
        assert report.restarts == 0
        assert report.error_count == 1
        [bad] = report.error_indices
        assert "InjectedFault" in report.errors[bad]
        assert math.isnan(report.answers[bad])
        for position, answer in enumerate(report.answers):
            if position != bad:
                assert answer == expected[position]


class TestDeadlineFaults:
    def test_hang_past_deadline_replaces_the_worker(self, served):
        _, _, path, batch, expected = served
        plan = FaultPlan.single("hang", at=1, worker=0, seconds=60.0)
        with make_service(
            path, workers=2, fault_plan=plan,
            batch_timeout=0.4, ping_timeout=0.4,
        ) as service:
            report = service.run(batch)
        assert report.answers == expected
        assert report.error_count == 0
        assert report.per_worker[0].restarts >= 1

    def test_dropped_result_recovers_by_resend_not_restart(self, served):
        _, _, path, batch, expected = served
        plan = FaultPlan.single("drop_result", at=1, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan,
            batch_timeout=0.4, ping_timeout=5.0,
        ) as service:
            report = service.run(batch)
        assert report.answers == expected
        assert report.restarts == 0
        assert report.error_count == 0


class TestEpochFencing:
    def test_stale_epoch_result_is_dropped(self, served):
        """A result deferred from epoch N and delivered during epoch
        N+1 must be fenced out, not spliced into the new answers."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("defer_result", at=1, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan,
            batch_timeout=0.4, ping_timeout=5.0,
        ) as service:
            first = service.run(batch)
            assert first.answers == expected
            assert first.restarts == 0
            # The worker still holds the stashed epoch-1 reply; it is
            # flushed ahead of the first epoch-2 batch it receives.
            other, other_expected = fresh_batch(served, seed=41)
            second = service.run(other)
        assert second.answers == other_expected
        assert second.error_count == 0

    def test_error_reply_aborts_run_but_pool_stays_usable(self, served):
        """Regression for the two pre-v2 poisoned-pool bugs: a raising
        run used to leave outstanding chunks behind, and the next run's
        fresh batch ids (reset to 0) collided with them."""
        _, _, path, batch, _ = served
        plan = FaultPlan.single("error_reply", at=1, worker=0)
        service = make_service(path, workers=2, fault_plan=plan)
        try:
            with pytest.raises(RuntimeError, match="injected error reply"):
                service.run(batch)
            assert all(not h.outstanding for h in service._pool)
            for seed in (51, 52, 53):
                other, other_expected = fresh_batch(served, seed)
                report = service.run(other)
                assert report.answers == other_expected
                assert report.restarts == 0
                assert report.error_count == 0
        finally:
            service.stop()


class TestCacheUnderFaults:
    """The dispatcher cache must stay honest through injected faults:
    only fence-accepted answers are inserted, and no entry from a
    retired snapshot epoch is ever served."""

    def test_deferred_result_never_pollutes_cache(self, served):
        """defer_result stashes a reply and flushes it during a later
        run; the fence drops it.  Nothing from the stale delivery may
        enter the cache, and every entry must carry the live epoch."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("defer_result", at=1, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan, cache_size=256,
            batch_timeout=0.4, ping_timeout=5.0,
        ) as service:
            first = service.run(batch)
            assert first.answers == expected
            # The stashed epoch-1 reply flushes ahead of this run.
            other, other_expected = fresh_batch(served, seed=61)
            second = service.run(other)
            assert second.answers == other_expected
            assert service._cache.entry_epochs() <= {
                service.snapshot_epoch
            }
            # Warm re-run of both batches: pure cache, same answers.
            warm_first = service.run(batch)
            warm_second = service.run(other)
        assert warm_first.answers == expected
        assert warm_first.cache_hits == len(batch)
        assert warm_second.answers == other_expected
        assert warm_second.cache_hits == len(other)

    def test_aborted_run_then_epoch_retirement_serves_nothing_stale(
        self, served
    ):
        """An error_reply abort raises mid-run; the snapshot epoch is
        then retired.  Every answer cached before the retirement —
        including any from the aborted run — must be refused: the
        post-retirement cache may only ever hold live-epoch entries."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("error_reply", at=1, worker=0)
        service = make_service(
            path, workers=2, fault_plan=plan, cache_size=256
        )
        try:
            with pytest.raises(RuntimeError, match="injected error reply"):
                service.run(batch)
            retired = service.snapshot_epoch
            live = service.retire_snapshot_epoch()
            assert live == retired + 1
            assert len(service._cache) == 0
            report = service.run(batch)
            assert report.answers == expected
            assert report.error_count == 0
            # No pre-retirement epoch survives anywhere in the cache.
            assert service._cache.entry_epochs() == {live}
            warm = service.run(batch)
            assert warm.answers == expected
            assert warm.cache_hits == len(batch)
        finally:
            service.stop()

    def test_crash_with_cache_keeps_parity(self, served):
        """A worker crash mid-run must not leave half-computed or
        duplicate results in the cache: the warm re-run still returns
        the exact expected answers."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("crash", at=2, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan, cache_size=256
        ) as service:
            first = service.run(batch)
            assert first.answers == expected
            assert first.restarts == 1
            warm = service.run(batch)
        assert warm.answers == expected
        assert warm.cache_hits == len(batch)


class TestStartMethodParity:
    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_serves_and_isolates_faults(self, served):
        """The plan must pickle across a spawn boundary and the error
        channel must behave identically to fork (CI's default)."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("raise", at=2, worker=0)
        with QueryService(
            path, workers=2, chunk_size=CHUNK,
            start_method="spawn", fault_plan=plan,
        ) as service:
            report = service.run(batch)
        assert report.restarts == 0
        assert report.error_count == 1
        [bad] = report.error_indices
        for position, answer in enumerate(report.answers):
            if position != bad:
                assert answer == expected[position]

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_epoch_invalidation(self, served):
        """The cache + epoch machinery is dispatcher-side state, but
        this pins that it composes with spawn workers identically to
        fork: deferred stale replies are fenced, retirement empties
        the cache, warm runs hit fully."""
        _, _, path, batch, expected = served
        plan = FaultPlan.single("defer_result", at=1, worker=0)
        with QueryService(
            path, workers=2, chunk_size=CHUNK, cache_size=256,
            start_method="spawn", fault_plan=plan,
            batch_timeout=0.4, ping_timeout=5.0,
        ) as service:
            first = service.run(batch)
            assert first.answers == expected
            live = service.retire_snapshot_epoch()
            assert len(service._cache) == 0
            second = service.run(batch)
            assert second.answers == expected
            assert service._cache.entry_epochs() == {live}
            warm = service.run(batch)
        assert warm.answers == expected
        assert warm.cache_hits == len(batch)
