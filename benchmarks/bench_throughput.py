"""Bench: process-pool serving throughput over a frozen-index snapshot.

Freezes a DISO over the paper's standard road-network scale, saves the
index as a binary snapshot (:mod:`repro.oracle.snapshot`), and measures
aggregate query throughput three ways:

* sequential — the in-memory frozen oracle answering the batch alone
  (the single-core reference);
* ``QueryService`` at 1, 2, and 4 workers — each worker a separate
  process mapping the same snapshot read-only — under **both** result
  planes (``shm`` ring and ``pipe`` pickle), so the dispatch cost of
  each channel is directly comparable at equal worker counts.

Every pool run first asserts exact answer parity with the sequential
baseline.  Each row serves the batch ``ROUNDS`` times through one
service (qps from the best round, dispatch overhead the median across
rounds — a single run's per-batch decode cost is scheduler-noise-bound
on small chunk counts) and records its ``result_plane``, the
dispatcher-side ``dispatch_overhead_us`` per accepted batch (unpickle
plus ring memcpy plus splice; the OS wait for the pipe is excluded)
and ``pipe_bytes_per_batch`` (the pickled result traffic that actually
crossed the pipe) — the shm rows carry only tiny completion records
where the pipe rows carry the full answer payload.
Results merge into the repo-root ``BENCH_throughput.json``, where
``merge_json`` stamps ``git_rev`` + ``cpu_count`` into every entry
centrally; ``cpu_count`` matters here because process-level speed-up is
physically bounded by the cores actually present — on a single-core
container the 4-worker row documents dispatch overhead, not scaling.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py --smoke

``--smoke`` serves a tiny graph with 2 workers only — a CI-sized
end-to-end check of snapshot, worker bootstrap, sharding, and parity
(no files written, no speedup asserted).
"""

from __future__ import annotations

import argparse
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.graph.generators import road_network
from repro.oracle.diso import DISO
from repro.oracle.parallel import latency_percentile
from repro.oracle.snapshot import save_snapshot, snapshot_info
from repro.serving import QueryService
from repro.workload.queries import generate_queries

from bench_util import THROUGHPUT_JSON, merge_json, write_result

SEED = 7
QUERY_COUNT = 600
WORKER_COUNTS = (1, 2, 4)
RESULT_PLANES = ("shm", "pipe")
#: Serve rounds per row: qps is best-of, dispatch overhead the median.
ROUNDS = 5

GRAPH_NAME = "road2k"


def build_graph(smoke: bool):
    if smoke:
        return road_network(8, 8, seed=SEED)
    return road_network(48, 48, seed=SEED)


def sequential_row(oracle, batch) -> dict:
    """Time the in-memory frozen oracle answering the batch alone."""
    latencies = []
    answers = []
    started = time.perf_counter()
    for query in batch:
        tick = time.perf_counter()
        answers.append(oracle.query(query.source, query.target, query.failed))
        latencies.append(time.perf_counter() - tick)
    wall = time.perf_counter() - started
    return {
        "answers": answers,
        "qps": round(len(batch) / wall, 2) if wall > 0 else float("inf"),
        "p50_us": round(1e6 * latency_percentile(latencies, 0.50), 3),
        "p99_us": round(1e6 * latency_percentile(latencies, 0.99), 3),
    }


def run(smoke: bool = False, query_count: int | None = None) -> dict:
    """Snapshot a frozen DISO, serve it at each pool size, return rows."""
    graph = build_graph(smoke)
    count = query_count or (20 if smoke else QUERY_COUNT)
    worker_counts = (2,) if smoke else WORKER_COUNTS

    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    batch = generate_queries(graph, count, f_gen=5, p=0.0005, seed=SEED)

    result: dict = {
        "graph": GRAPH_NAME if not smoke else "road-smoke",
        "oracle": oracle.name,
        "queries": count,
        "cpu_count": os.cpu_count(),
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
        path = Path(tmp) / "oracle.dsosnap"
        save_snapshot(oracle, path)
        result["snapshot_bytes"] = snapshot_info(path)["file_bytes"]

        seq = sequential_row(oracle, batch)
        expected = seq.pop("answers")
        result["sequential"] = seq
        print(
            f"{'sequential':>12}: qps {seq['qps']:>9.1f}  "
            f"p50 {seq['p50_us']:>7.1f}us  p99 {seq['p99_us']:>7.1f}us"
        )

        result["workers"] = {}
        rounds = 1 if smoke else ROUNDS
        for workers in worker_counts:
            for plane in RESULT_PLANES:
                reports = []
                with QueryService(
                    path, workers=workers, result_plane=plane
                ) as service:
                    for _ in range(rounds):
                        report = service.run(batch)
                        assert report.answers == expected, (
                            f"{workers}-worker {plane} answers diverge "
                            f"from sequential baseline"
                        )
                        assert report.error_count == 0, (
                            f"{workers}-worker {plane} run reported "
                            f"per-query errors on a clean workload: "
                            f"{report.error_indices[:5]}"
                        )
                        reports.append(report)
                best = max(reports, key=lambda r: r.queries_per_second)
                row = best.summary()
                row["rounds"] = rounds
                row["dispatch_overhead_us"] = round(
                    statistics.median(
                        r.dispatch_overhead_us for r in reports
                    ),
                    3,
                )
                row["speedup_vs_sequential"] = round(
                    best.queries_per_second / seq["qps"], 3
                )
                result["workers"][f"{workers}w-{plane}"] = row
                print(
                    f"{workers:>4} wkr {plane:>4}: qps {row['qps']:>9.1f}  "
                    f"p50 {row['p50_us']:>7.1f}us  "
                    f"p99 {row['p99_us']:>7.1f}us  "
                    f"speedup {row['speedup_vs_sequential']:.2f}x  "
                    f"dispatch {row['dispatch_overhead_us']:>7.1f}us  "
                    f"pipe {row['pipe_bytes_per_batch']:>8.1f}B/batch  "
                    f"errors {row['errors']}  restarts {row['restarts']}"
                )
    return result


def format_result(result: dict) -> str:
    lines = [
        "Process-pool serving throughput over a frozen-index snapshot",
        f"graph={result['graph']}  oracle={result['oracle']}  "
        f"queries={result['queries']}  cpu_count={result['cpu_count']}  "
        f"snapshot={result['snapshot_bytes']}B",
        f"{'backend':>12} {'qps':>10} {'p50 us':>9} {'p99 us':>9} "
        f"{'speedup':>8} {'dispatch us':>12} {'pipe B/batch':>13}",
        f"{'sequential':>12} {result['sequential']['qps']:>10.1f} "
        f"{result['sequential']['p50_us']:>9.1f} "
        f"{result['sequential']['p99_us']:>9.1f} {'1.00':>8} "
        f"{'-':>12} {'-':>13}",
    ]
    for backend, row in result["workers"].items():
        lines.append(
            f"{backend:>12} {row['qps']:>10.1f} "
            f"{row['p50_us']:>9.1f} {row['p99_us']:>9.1f} "
            f"{row['speedup_vs_sequential']:>8.2f} "
            f"{row['dispatch_overhead_us']:>12.1f} "
            f"{row['pipe_bytes_per_batch']:>13.1f}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graph, 2 workers only, no files written",
    )
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args()
    result = run(smoke=args.smoke, query_count=args.queries)
    if args.smoke:
        print("smoke run OK (parity held at every pool size)")
        return
    write_result("throughput", format_result(result))
    key = f"{result['oracle']}@{result['graph']}"
    path = merge_json({key: result}, THROUGHPUT_JSON)
    print(f"wrote {path}")
    print(format_result(result))


# ----------------------------------------------------------------------
# pytest entry point (small scale; the standalone main is the real run)
# ----------------------------------------------------------------------
def test_throughput_smoke():
    result = run(smoke=True)
    for plane in RESULT_PLANES:
        row = result["workers"][f"2w-{plane}"]
        assert row["queries"] == result["queries"]
        assert row["qps"] > 0.0
        assert row["result_plane"] == plane
        assert row["pipe_bytes_per_batch"] > 0.0
    # The whole point of the shm plane: answers stop crossing the pipe.
    assert (
        result["workers"]["2w-shm"]["pipe_bytes_per_batch"]
        < result["workers"]["2w-pipe"]["pipe_bytes_per_batch"]
    )


if __name__ == "__main__":
    main()
