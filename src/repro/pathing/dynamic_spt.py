"""DynDijkstra-style shortest path tree repair under edge failures.

The paper recomputes distance-graph edge weights with "an algorithm,
named DynDijkstra [22], which updates shortest path trees on dynamic
graphs ... adapted to update a bounded shortest path tree" (Section
4.1.2), and stresses that the stored tree is *not* mutated: "we do not
explicitly update G_x in the adapted algorithm, but recompute only the
distances" (stall avoidance, Section 4.2).

The repair works in two phases, as in Chan & Yang's algorithm:

1. *Invalidate*: every failed edge that is a tree edge disconnects the
   subtree below it; the union of those subtrees is the affected set.
   Failed non-tree edges cannot change any tree distance (deletions only
   ever lengthen paths), so a tree untouched by failures is returned
   as-is — this is what makes lazy recomputation cheap when failures are
   far away.
2. *Repair*: a Dijkstra restricted to the affected set, seeded with the
   best surviving entry edges from unaffected nodes, recomputes the
   distances of affected nodes.  For bounded trees, edges leaving a
   non-root transit node are never relaxed, preserving the bounded-search
   semantics.

Both the non-mutating variant (used by DISO's lazy recomputation) and the
mutating variant (used by the FDDO baseline, which *does* stall to update
its landmark trees) are provided.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.graph.digraph import DiGraph, Edge
from repro.pathing.spt import INFINITY, ShortestPathTree

_EMPTY: frozenset[int] = frozenset()


def affected_subtree_nodes(
    tree: ShortestPathTree,
    failed: set[Edge],
) -> set[int]:
    """Return the nodes whose tree path uses a failed edge.

    These are exactly the nodes in subtrees hanging below failed tree
    edges.  Returns the empty set when no failed edge is a tree edge.
    """
    affected: set[int] = set()
    for tail, head in failed:
        if head in affected:
            continue
        if tree.parent.get(head) == tail:
            affected.update(tree.subtree_nodes(head))
    return affected


def recompute_distances(
    graph: DiGraph,
    tree: ShortestPathTree,
    failed: set[Edge],
    transit: frozenset[int] | set[int] = _EMPTY,
) -> dict[int, float]:
    """Recompute root distances of ``tree`` under ``failed``, non-mutating.

    Parameters
    ----------
    graph:
        The graph the tree was built on (unmodified).
    tree:
        A (bounded) shortest path tree; it is *not* modified.
    failed:
        The failed edge set ``F``.
    transit:
        The transit node set for bounded trees; pass an empty set for
        ordinary full shortest path trees.  Nodes in ``transit`` other
        than the root are never expanded, exactly like the bounded
        Dijkstra's algorithm.

    Returns
    -------
    dict
        ``{node: distance}`` for every node of the tree that is still
        reachable; nodes that became unreachable are absent.
    """
    affected = affected_subtree_nodes(tree, failed)
    if not affected:
        return tree.dist
    base = tree.dist
    root = tree.root
    new_dist: dict[int, float] = {
        node: d for node, d in base.items() if node not in affected
    }
    heap: list[tuple[float, int]] = []
    # Seed: best surviving edge from an unaffected node into each affected
    # node.  Unaffected boundary transit nodes (other than the root) may
    # not be expanded, so they contribute no entry edges.
    for node in affected:
        best = INFINITY
        for pred, weight in graph.predecessors(node).items():
            if pred in affected:
                continue
            if (pred, node) in failed:
                continue
            pred_dist = new_dist.get(pred)
            if pred_dist is None:
                continue
            if pred in transit and pred != root:
                continue
            candidate = pred_dist + weight
            if candidate < best:
                best = candidate
        if best < INFINITY:
            heappush(heap, (best, node))
            new_dist[node] = best

    settled: set[int] = set()
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        if d > new_dist.get(node, INFINITY):
            continue
        settled.add(node)
        if node in transit and node != root:
            continue
        for head, weight in graph.successors(node).items():
            if head not in affected or head in settled:
                continue
            if (node, head) in failed:
                continue
            candidate = d + weight
            if candidate < new_dist.get(head, INFINITY):
                new_dist[head] = candidate
                heappush(heap, (candidate, head))
    # Affected nodes never reached stay absent (unreachable under F).
    for node in affected:
        if new_dist.get(node, INFINITY) == INFINITY:
            new_dist.pop(node, None)
    return new_dist


def apply_failures(
    graph: DiGraph,
    tree: ShortestPathTree,
    failed: set[Edge],
    transit: frozenset[int] | set[int] = _EMPTY,
) -> set[int]:
    """Mutate ``tree`` to the post-failure shortest path tree.

    This is the stalling update a fully dynamic oracle performs (used by
    the FDDO baseline): subtrees below failed tree edges are detached and
    reachable nodes are re-attached with fresh parents and distances.

    Returns the set of nodes whose tree entry changed or vanished.

    Note: ``graph`` must already reflect reality *without* the failed
    edges conceptually; this function itself skips ``failed`` edges, so
    the caller does not need to mutate the graph.
    """
    affected = affected_subtree_nodes(tree, failed)
    if not affected:
        return set()
    new_dist = recompute_distances(graph, tree, failed, transit)
    # Detach the top-level affected subtrees; descendants go with them.
    for tail, head in failed:
        if head in tree and tree.parent.get(head) == tail:
            tree.detach_subtree(head)
    # Re-attach reachable nodes in distance order so parents exist first.
    reattach = sorted(
        (node for node in affected if node in new_dist),
        key=new_dist.__getitem__,
    )
    for node in reattach:
        best_parent: int | None = None
        best = INFINITY
        target = new_dist[node]
        for pred, weight in graph.predecessors(node).items():
            if (pred, node) in failed:
                continue
            if pred not in tree:
                continue
            if pred in transit and pred != tree.root:
                continue
            pred_dist = tree.dist.get(pred, INFINITY)
            if abs(pred_dist + weight - target) <= 1e-9 and pred_dist + weight < best + 1e-12:
                best_parent = pred
                best = pred_dist + weight
        if best_parent is not None:
            tree.attach(node, best_parent, target)
    return affected


def recompute_boundary_distances(
    graph: DiGraph,
    tree: ShortestPathTree,
    failed: set[Edge],
    transit: frozenset[int] | set[int],
) -> dict[int, float]:
    """Recompute only the transit-leaf distances of a bounded tree.

    This is the exact quantity DISO's lazy recomputation needs: the fresh
    weights ``d_hat(root, v, F)`` of the distance-graph out-edges of the
    tree's root.  Convenience wrapper over :func:`recompute_distances`.
    """
    new_dist = recompute_distances(graph, tree, failed, transit)
    root = tree.root
    return {
        node: d
        for node, d in new_dist.items()
        if node in transit and node != root
    }
