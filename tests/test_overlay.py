"""Tests for the two-level fault-tolerant index components."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cover.isc import isc_path_cover
from repro.exceptions import PreprocessingError
from repro.graph.digraph import DiGraph
from repro.overlay.bsp_tree import BoundedTreeStore
from repro.overlay.distance_graph import (
    build_distance_graph,
    verify_distance_graph,
)
from repro.overlay.inverted_index import InvertedTreeIndex
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dijkstra import dijkstra, shortest_distance
from util import random_failures_from, random_graph


class TestDistanceGraphConstruction:
    def test_definition_holds(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        overlay, _ = build_distance_graph(small_road, cover)
        assert verify_distance_graph(small_road, overlay) == []

    def test_empty_transit_raises(self, small_road):
        with pytest.raises(PreprocessingError):
            build_distance_graph(small_road, set())

    def test_unknown_transit_node_raises(self, small_road):
        with pytest.raises(PreprocessingError):
            build_distance_graph(small_road, {10_000})

    def test_node_and_edge_counts(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        overlay, _ = build_distance_graph(small_road, cover)
        assert overlay.num_nodes == len(cover)
        assert overlay.num_edges == overlay.graph.number_of_edges()

    def test_trees_rooted_at_transit(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees = build_distance_graph(small_road, cover)
        assert set(trees) == cover
        for root, tree in trees.items():
            assert tree.root == root
            tree.check_invariants()

    def test_membership(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        overlay, _ = build_distance_graph(small_road, cover)
        member = next(iter(cover))
        assert member in overlay


class TestLemma1:
    """Shortest distances on D equal shortest distances on G (Lemma 1)."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_failure_free(self, seed):
        graph = random_graph(seed)
        cover = isc_path_cover(graph, tau=2, theta=4.0).cover
        overlay, _ = build_distance_graph(graph, cover)
        nodes = sorted(cover)[:6]
        for u in nodes:
            overlay_dist, _ = dijkstra(overlay.graph, u)
            for v in nodes:
                if u == v:
                    continue
                expected = shortest_distance(graph, u, v)
                got = overlay_dist.get(v, float("inf"))
                assert got == pytest.approx(expected)


class TestInvertedIndex:
    def build(self, graph, cover):
        overlay, trees = build_distance_graph(graph, cover)
        return overlay, trees, InvertedTreeIndex.from_trees(trees)

    def test_indexed_edges_are_tree_edges(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees, index = self.build(small_road, cover)
        for root, tree in trees.items():
            for edge in tree.tree_edges():
                assert root in index.trees_containing(edge)

    def test_affected_nodes_exact(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees, index = self.build(small_road, cover)
        # Pick a tree edge of some tree: its root must be affected.
        root, tree = next(iter(trees.items()))
        edge = next(iter(tree.tree_edges()), None)
        if edge is not None:
            assert root in index.affected_nodes([edge])

    def test_unknown_edge_not_affected(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, _, index = self.build(small_road, cover)
        assert index.affected_nodes([(-1, -2)]) == set()

    def test_remove_tree(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees, index = self.build(small_road, cover)
        root, tree = next(iter(trees.items()))
        before = index.tree_count
        index.remove_tree(root, tree)
        assert index.tree_count == before - 1
        for edge in tree.tree_edges():
            assert root not in index.trees_containing(edge)

    def test_entry_count(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees, index = self.build(small_road, cover)
        expected = sum(
            len(list(tree.tree_edges())) for tree in trees.values()
        )
        assert index.entry_count() == expected

    def test_len_counts_distinct_edges(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, trees, index = self.build(small_road, cover)
        distinct = set()
        for tree in trees.values():
            distinct.update(tree.tree_edges())
        assert len(index) == len(distinct)


class TestBoundedTreeStore:
    def build_store(self, graph, cover):
        overlay, trees = build_distance_graph(graph, cover)
        return overlay, BoundedTreeStore(trees, overlay.transit)

    def test_basic_accessors(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        overlay, store = self.build_store(small_road, cover)
        assert len(store) == len(cover)
        assert store.roots() == frozenset(cover)
        root = next(iter(cover))
        assert root in store
        assert store.tree(root).root == root
        assert store.average_size() > 0

    def test_recomputed_weights_match_overlay_when_no_failures(
        self, small_road
    ):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        overlay, store = self.build_store(small_road, cover)
        root = next(iter(cover))
        weights = store.recomputed_out_weights(small_road, root, set())
        assert weights == overlay.out_edges(root)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        fail_seed=st.integers(min_value=0, max_value=5000),
    )
    def test_recomputed_weights_match_fresh_bounded(self, seed, fail_seed):
        graph = random_graph(seed)
        cover = isc_path_cover(graph, tau=2, theta=4.0).cover
        overlay, trees = build_distance_graph(graph, cover)
        store = BoundedTreeStore(trees, overlay.transit)
        failed = random_failures_from(graph, fail_seed, 6)
        for root in sorted(cover)[:4]:
            repaired = store.recomputed_out_weights(graph, root, failed)
            fresh = bounded_dijkstra(graph, root, overlay.transit, failed)
            expected = {v: d for v, d in fresh.access.items() if v != root}
            assert set(repaired) == set(expected)
            for node, d in expected.items():
                assert repaired[node] == pytest.approx(d)

    def test_rebuild_tree_returns_old(self, small_road):
        cover = isc_path_cover(small_road, tau=2, theta=1.0).cover
        _, store = self.build_store(small_road, cover)
        root = next(iter(cover))
        old = store.tree(root)
        returned = store.rebuild_tree(small_road, root)
        assert returned is old
        assert store.tree(root).root == root
