"""Table 3 — comparison of path cover computation methods.

The paper compares ISC (theirs) against PRU (Funke et al. [10]) and HPC
(Akiba et al. [27]) as transit-set selectors for DISO, reporting per
dataset: |C|, |E_D|, preprocessing time, query time, recomputation time,
and access time.  The expected shape: ISC yields the smallest |E_D| and
the best query times; PRU explodes on dense graphs (the paper leaves it
blank for road datasets and shows order-of-magnitude worse overlay sizes
on social ones).
"""

from __future__ import annotations

import time

from repro.cover.hpc import hpc_path_cover
from repro.cover.isc import isc_path_cover
from repro.cover.pruning import pru_path_cover
from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import (
    human_count,
    human_ms,
    human_seconds,
    render_table,
)
from repro.oracle.diso import DISO
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries

#: Methods compared in Table 3.
COVER_METHODS = ("ISC", "PRU", "HPC")


def _compute_cover(
    method: str,
    graph,
    tau: int,
    theta: float,
    pru_budget: int,
):
    """Run one cover method; returns (cover_set, elapsed_seconds)."""
    started = time.perf_counter()
    if method == "ISC":
        cover = isc_path_cover(graph, tau=tau, theta=theta).cover
    elif method == "HPC":
        cover = hpc_path_cover(graph, tau=tau).cover
    elif method == "PRU":
        cover = pru_path_cover(
            graph, k=2 ** tau, budget_per_node=pru_budget
        ).cover
    else:
        raise ValueError(f"unknown cover method {method!r}")
    return cover, time.perf_counter() - started


def run_table3(
    datasets: tuple[str, ...] = ("NY", "DBLP"),
    scale: float = 0.5,
    query_count: int = 20,
    seed: int = 7,
    pru_budget: int = 5000,
    methods: tuple[str, ...] = COVER_METHODS,
) -> list[dict[str, object]]:
    """Reproduce Table 3 rows on synthetic stand-ins.

    Returns one row per (dataset, method) with raw numeric fields;
    :func:`format_table3` renders them paper-style.
    """
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        queries = generate_queries(
            graph, query_count, f_gen=5, p=0.0005, seed=seed
        )
        truth = exact_answers(graph, queries)
        for method in methods:
            cover, cover_seconds = _compute_cover(
                method, graph, spec.tau_diso, spec.theta, pru_budget
            )
            if not cover:
                rows.append({"dataset": name, "method": method, "failed": True})
                continue
            oracle = DISO(graph, transit=cover)
            batch = run_batch(oracle, queries, truth)
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "cover_size": len(cover),
                    "overlay_edges": oracle.distance_graph.num_edges,
                    "preprocess_seconds": cover_seconds
                    + oracle.preprocess_seconds,
                    "query_ms": batch.query_ms,
                    "recompute_ms": batch.recompute_ms,
                    "access_ms": batch.access_ms,
                    "failed": False,
                }
            )
    return rows


def format_table3(rows: list[dict[str, object]]) -> str:
    """Render :func:`run_table3` rows like the paper's Table 3."""
    display = []
    for row in rows:
        if row.get("failed"):
            display.append(
                {"dataset": row["dataset"], "method": row["method"]}
            )
            continue
        display.append(
            {
                "dataset": row["dataset"],
                "method": row["method"],
                "cover_size": human_count(row["cover_size"]),
                "overlay_edges": human_count(row["overlay_edges"]),
                "preprocess": human_seconds(row["preprocess_seconds"]),
                "query": human_ms(row["query_ms"]),
                "recompute": human_ms(row["recompute_ms"]),
                "access": human_ms(row["access_ms"]),
            }
        )
    return render_table(
        display,
        columns=[
            ("dataset", "Data"),
            ("method", "Method"),
            ("cover_size", "|C|"),
            ("overlay_edges", "|E_D|"),
            ("preprocess", "Prep(s)"),
            ("query", "Query(ms)"),
            ("recompute", "Recomp(ms)"),
            ("access", "Access(ms)"),
        ],
        title="Table 3: path cover computation methods",
    )
