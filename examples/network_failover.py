"""Computer-network scenario: link failures and failover latency.

The paper's Example 3: network devices (nodes) and links (edges) break
— a cut cable, a crashed switch — and recover after repair.  An
operations dashboard wants, at all times, the best surviving latency
between service endpoints *without* rebuilding routing state per
incident.  Link failures map to edge failures; a device failure maps to
a node failure (all incident links down).

Run with::

    python examples/network_failover.py
"""

from __future__ import annotations

import random

from repro import ADISO, DijkstraOracle, gnm_random_graph


def main() -> None:
    # A 300-device network with ~4 links per device; weights are link
    # latencies in milliseconds.
    graph = gnm_random_graph(300, 1200, seed=17, max_weight=10.0)
    print(f"network: {graph.number_of_nodes()} devices, "
          f"{graph.number_of_edges()} links")

    oracle = ADISO(graph, tau=3, theta=8.0, num_landmarks=6, seed=2)
    reference = DijkstraOracle(graph)
    rng = random.Random(4)
    ingress, egress = 0, 299

    base = oracle.query(ingress, egress)
    print(f"healthy latency {ingress} -> {egress}: {base:.2f} ms\n")

    # Incident 1: a batch of link failures (cut fibre bundle).
    links = sorted(graph.edge_set())
    cut = set(rng.sample(links, 15))
    latency = oracle.query(ingress, egress, cut)
    assert abs(latency - reference.query(ingress, egress, cut)) < 1e-9
    print(f"incident: 15 links down -> latency {latency:.2f} ms "
          f"(+{latency - base:.2f})")

    # Incident 2: a core switch dies (node failure).
    # Pick a device on the current best path (most disruptive case).
    from repro.pathing.dijkstra import shortest_path

    route = shortest_path(graph, ingress, egress)
    victim = route[len(route) // 2][0]
    latency = oracle.query_avoiding_nodes(ingress, egress, {victim})
    print(f"incident: switch {victim} down -> latency {latency:.2f} ms")

    # Incident 3: both at once.
    latency = oracle.query_avoiding_nodes(
        ingress, egress, {victim}, failed=cut
    )
    print(f"incident: switch {victim} + 15 links down -> "
          f"latency {latency:.2f} ms")

    # Recovery is free: the next query simply omits the failures.
    recovered = oracle.query(ingress, egress)
    assert recovered == base
    print(f"\nafter repair: {recovered:.2f} ms — identical to healthy "
          "(no index was ever modified)")


if __name__ == "__main__":
    main()
