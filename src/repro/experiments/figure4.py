"""Figure 4 — path cover methods across tau (k = 2^tau) on a road graph.

The paper sweeps the cover parameter on USA and plots query time and
preprocessing time per cover method, showing that (a) an intermediate
tau is best for query time, and (b) ISC dominates HPC across the sweep.
"""

from __future__ import annotations

import time

from repro.cover.hpc import hpc_path_cover
from repro.cover.isc import isc_path_cover
from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import render_series
from repro.oracle.diso import DISO
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries


def run_figure4(
    dataset: str = "USA",
    scale: float = 0.3,
    taus: tuple[int, ...] = (2, 3, 4, 5),
    query_count: int = 15,
    seed: int = 7,
    methods: tuple[str, ...] = ("ISC", "HPC"),
) -> dict[str, object]:
    """Sweep tau; returns query-time and prep-time series per method."""
    graph = load_dataset(dataset, scale=scale, seed=seed)
    queries = generate_queries(graph, query_count, f_gen=5, p=0.0005, seed=seed)
    truth = exact_answers(graph, queries)
    query_series: dict[str, list[float]] = {m: [] for m in methods}
    prep_series: dict[str, list[float]] = {m: [] for m in methods}
    cover_sizes: dict[str, list[int]] = {m: [] for m in methods}
    for tau in taus:
        for method in methods:
            started = time.perf_counter()
            if method == "ISC":
                cover = isc_path_cover(graph, tau=tau, theta=1.0).cover
            else:
                cover = hpc_path_cover(graph, tau=tau).cover
            cover_seconds = time.perf_counter() - started
            oracle = DISO(graph, transit=cover)
            batch = run_batch(oracle, queries, truth)
            query_series[method].append(batch.query_ms)
            prep_series[method].append(
                cover_seconds + oracle.preprocess_seconds
            )
            cover_sizes[method].append(len(cover))
    return {
        "dataset": dataset,
        "taus": list(taus),
        "query_ms": query_series,
        "preprocess_seconds": prep_series,
        "cover_sizes": cover_sizes,
    }


def format_figure4(data: dict[str, object]) -> str:
    """Render the Figure 4 sweep as two text series."""
    taus = data["taus"]
    parts = [
        render_series(
            f"Figure 4a: query time (ms) vs tau ({data['dataset']})",
            "tau",
            taus,
            data["query_ms"],
        ),
        render_series(
            f"Figure 4b: preprocessing (s) vs tau ({data['dataset']})",
            "tau",
            taus,
            data["preprocess_seconds"],
            fmt=lambda v: f"{v:.2f}",
        ),
    ]
    return "\n\n".join(parts)
