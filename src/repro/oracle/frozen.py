"""The frozen query plane — DISO/ADISO queries compiled to integers.

The oracles' indexes are read-only after preprocessing, yet the dict
engines (:class:`DISO`, :class:`ADISO`) run every hot phase — bounded
searches, inverted-index lookups, the overlay search with lazy
DynDijkstra repair — over dict-of-dict structures, allocating fresh
O(n) state per query.  ``freeze()`` compiles the finished index once
(:class:`repro.overlay.frozen_index.FrozenIndex` + a
:class:`repro.graph.csr.FrozenGraph` with a reverse CSR) and this module
serves the *exact same query algorithms* from flat arrays:

* nodes are dense indices, failures are integer edge-id sets,
  transit-stop flags are one ``bytearray`` probe;
* the overlay search runs in dense transit-rank space over a
  ``|T|``-sized arena;
* all O(n)/O(|T|) scratch state comes from generation-stamped
  :class:`~repro.graph.csr.SearchArena` instances — preallocated once,
  invalidated per query by a counter bump, never cleared;
* each *thread* gets its own arena set via ``threading.local``, so the
  paper's no-locking concurrency claim survives: concurrent queries on
  one shared frozen index never touch shared mutable state.

Answer parity is exact, not approximate: every relaxation performs the
same float additions in the same order as the dict engines, so frozen
and dict paths return identical distances (property-tested in
``tests/test_frozen_plane.py``).
"""

from __future__ import annotations

import threading
import time
from heapq import heappop, heappush

from repro.graph.csr import FrozenGraph, SearchArena, csr_distance
from repro.graph.digraph import DiGraph, Edge
from repro.oracle.base import (
    INFINITY,
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.overlay.frozen_index import FrozenIndex
from repro.pathing.csr_bounded import csr_bounded_dijkstra


class _ArenaSet:
    """Per-thread scratch state for one frozen engine."""

    __slots__ = ("forward", "backward", "overlay", "search")

    def __init__(self, num_nodes: int, num_transit: int) -> None:
        self.forward = SearchArena(num_nodes)
        self.backward = SearchArena(num_nodes)
        self.overlay = SearchArena(num_transit)
        self.search = SearchArena(num_nodes)


class FrozenDISO(DistanceSensitivityOracle):
    """DISO's 4-step query served from a compiled flat-array index.

    Built via ``DISO.freeze()`` (also from DISO-S, whose sparsified
    overlay and Dijkstra fallback are preserved).  The source oracle's
    index is compiled once; the source itself is not retained.

    Parameters
    ----------
    oracle:
        A fully built :class:`repro.oracle.diso.DISO` (or subclass).
    fallback_graph:
        Original unsparsified graph for the DISO-S safety net: when the
        compiled index reports the target unreachable, the answer is
        recomputed exactly on this graph (CSR Dijkstra).  ``None`` for
        exact oracles, which need no net.
    """

    exact = True

    def __init__(
        self,
        oracle,
        fallback_graph: DiGraph | None = None,
    ) -> None:
        super().__init__(oracle.graph)
        started = time.perf_counter()
        self.name = f"{oracle.name}-F"
        self.exact = oracle.exact
        self.frozen = FrozenGraph.from_digraph(oracle.graph)
        trees = {
            root: oracle.trees.tree(root) for root in oracle.trees.roots()
        }
        self.index = FrozenIndex.compile(
            self.frozen, oracle.distance_graph, trees, oracle.transit
        )
        self._fallback: FrozenGraph | None = (
            FrozenGraph.from_digraph(fallback_graph)
            if fallback_graph is not None
            else None
        )
        self._local = threading.local()
        self.freeze_seconds = time.perf_counter() - started
        self.preprocess_seconds = oracle.preprocess_seconds + self.freeze_seconds

    @classmethod
    def _restore(
        cls,
        graph: DiGraph,
        frozen: FrozenGraph,
        index: FrozenIndex,
        fallback: FrozenGraph | None,
        name: str,
        exact: bool,
        preprocess_seconds: float,
        freeze_seconds: float,
    ) -> "FrozenDISO":
        """Rebuild an engine from already-compiled parts.

        The snapshot loader (:mod:`repro.oracle.snapshot`) constructs
        the compiled structures directly over mapped buffers; this
        bypasses ``__init__`` (which compiles from a dict oracle) and
        wires the finished parts together.
        """
        oracle = cls.__new__(cls)
        DistanceSensitivityOracle.__init__(oracle, graph)
        oracle.name = name
        oracle.exact = exact
        oracle.frozen = frozen
        oracle.index = index
        oracle._fallback = fallback
        oracle._local = threading.local()
        oracle.freeze_seconds = freeze_seconds
        oracle.preprocess_seconds = preprocess_seconds
        return oracle

    # ------------------------------------------------------------------
    # Arenas
    # ------------------------------------------------------------------
    def _arenas(self) -> _ArenaSet:
        """This thread's arena set (created on first use, then reused)."""
        arenas = getattr(self._local, "arenas", None)
        if arenas is None:
            arenas = _ArenaSet(
                self.frozen.number_of_nodes(), self.index.num_transit()
            )
            self._local.arenas = arenas
        return arenas

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    #: Whether the vectorized overlay kernel may serve this engine's
    #: batches.  ``FrozenADISO`` opts out: the merged A* search's float
    #: association order is query-state dependent, so a batched
    #: Bellman-Ford overlay cannot reproduce its answers bitwise
    #: (measured 1-2 ulp divergence on ~20% of road queries).
    _batched_overlay = True

    def _batch_kernel(self):
        """This engine's (lazily built, cached) vectorized kernel.

        ``None`` when the engine opted out or NumPy is unavailable —
        callers fall back to the scalar loop either way.
        """
        if not self._batched_overlay:
            return None
        kernel = getattr(self, "_kernel_cache", None)
        if kernel is None:
            from repro.oracle.batch_kernel import HAVE_NUMPY, DisoBatchKernel

            if not HAVE_NUMPY:
                return None
            kernel = DisoBatchKernel(self.frozen, self.index)
            self._kernel_cache = kernel
        return kernel

    def query_many(self, queries) -> list[float]:
        """Answer a batch of queries; same answers as the scalar loop.

        ``queries`` holds :class:`~repro.workload.queries.Query`
        objects or ``(source, target, failed)`` triples.  Answers are
        **bitwise identical** to ``[self.query(...) for ...]``
        (property-tested): DISO/DISO-S batches run the vectorized
        overlay kernel (:mod:`repro.oracle.batch_kernel`), ADISO
        batches and NumPy-less environments take the scalar loop.  An
        invalid query raises exactly what the scalar loop would raise
        at its position; use :meth:`answer_many` for the per-query
        sentinel form instead.
        """
        answers, failures = self._answer_many(queries)
        if failures:
            raise failures[0][1]
        return answers

    def answer_many(
        self, queries
    ) -> tuple[list[float], list[tuple[int, str]]]:
        """Batch answers with per-query error capture (serving form).

        Mirrors the worker's per-query error channel: a query that
        would raise contributes NaN at its position plus a
        ``(position, "ExcType: message")`` entry, and its neighbours
        are answered normally.
        """
        answers, failures = self._answer_many(queries)
        return answers, [
            (position, f"{type(exc).__name__}: {exc}")
            for position, exc in failures
        ]

    def _answer_many(self, queries):
        from repro.oracle.batch import as_query_triple
        from repro.oracle.batch_kernel import DEFAULT_BLOCK

        triples = [as_query_triple(query) for query in queries]
        answers: list[float] = [float("nan")] * len(triples)
        failures: list[tuple[int, Exception]] = []
        kernel = self._batch_kernel()
        if kernel is None:
            for position, (source, target, failed) in enumerate(triples):
                try:
                    answers[position] = self.query(
                        source, target,
                        frozenset(failed) if failed else None,
                    )
                except Exception as exc:
                    failures.append((position, exc))
            return answers, failures

        frozen = self.frozen
        index_of = frozen.index_of
        prepared: list[tuple[int, int, frozenset[int]]] = []
        slots: list[tuple[int, int, int, frozenset]] = []
        for position, (source, target, failed) in enumerate(triples):
            try:
                self._validate_endpoints(source, target)
                fail_set = normalize_failures(
                    frozenset(failed) if failed else None
                )
            except Exception as exc:
                failures.append((position, exc))
                continue
            if source == target:
                answers[position] = 0.0
                continue
            failed_ids = (
                frozen.edge_ids(fail_set) if fail_set else frozenset()
            )
            prepared.append((index_of[source], index_of[target], failed_ids))
            slots.append((position, source, target, fail_set))
        arenas = self._arenas()
        for start in range(0, len(prepared), DEFAULT_BLOCK):
            block = prepared[start : start + DEFAULT_BLOCK]
            best = kernel.run(block, arenas.forward, arenas.backward)
            for offset, value in enumerate(best):
                position, source, target, fail_set = slots[start + offset]
                if value == INFINITY and self._fallback is not None:
                    # Same DISO-S safety net as the scalar path: answer
                    # exactly on the original graph.
                    fallback_ids = self._fallback.edge_ids(fail_set)
                    value = csr_distance(
                        self._fallback, source, target, fallback_ids,
                        arenas.search,
                    )
                answers[position] = float(value)
        return answers, failures

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        frozen = self.frozen
        index = self.index
        failed_ids = frozen.edge_ids(fail_set) if fail_set else frozenset()
        affected = index.affected_ranks(failed_ids)
        stats.affected_count = len(affected)

        arenas = self._arenas()
        source_index = frozen.index_of[source]
        target_index = frozen.index_of[target]
        access_start = time.perf_counter()
        forward = csr_bounded_dijkstra(
            frozen, source_index, index.transit_flags, failed_ids,
            "out", arenas.forward,
        )
        backward = csr_bounded_dijkstra(
            frozen, target_index, index.transit_flags, failed_ids,
            "in", arenas.backward,
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled = forward.settled_count + backward.settled_count

        # Locality-filter answer: d_hat(s, t, F) when t lies in s's
        # transit-free region.
        best = forward.distance(target_index)

        overlay_best = self._overlay_search(
            forward.access, backward.access, failed_ids, affected, stats,
            best, arenas.overlay,
        )
        if overlay_best < best:
            best = overlay_best

        if best == INFINITY and self._fallback is not None:
            # DISO-S safety net: answer exactly on the original graph.
            fallback_start = time.perf_counter()
            fallback_ids = self._fallback.edge_ids(fail_set)
            best = csr_distance(
                self._fallback, source, target, fallback_ids, arenas.search
            )
            stats.used_fallback = True
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=best, stats=stats)

        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    def _overlay_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed_ids: frozenset[int],
        affected: set[int],
        stats: QueryStats,
        upper_bound: float,
        arena: SearchArena,
    ) -> float:
        """The Dijkstra-like procedure on ``D``, in transit-rank space.

        ``seeds`` and ``into_target`` are the access maps in
        *graph-index* space; both are converted to ranks inline.  The
        tail distances live in the arena's ``aux``/``done`` lanes, so no
        per-query dict survives the conversion.
        """
        index = self.index
        overlay = index.overlay_rank_rows
        min_weight = index.overlay_min_weight
        rank_of = index.rank_of
        push = heappush
        pop = heappop
        best = upper_bound
        gen = arena.begin()
        dist = arena.dist
        seen = arena.seen
        tails = arena.aux
        tail_seen = arena.done
        for node_index, d in into_target.items():
            rank = rank_of[node_index]
            tail_seen[rank] = gen
            tails[rank] = d
        heap: list[tuple[float, int]] = []
        for node_index, d in seeds.items():
            rank = rank_of[node_index]
            seen[rank] = gen
            dist[rank] = d
            push(heap, (d, rank))
            # Seeding the incumbent with direct seed→tail candidates is
            # answer-preserving (each is a candidate the search itself
            # would generate on settling) and arms the pruning below
            # from the very first pop.
            if tail_seen[rank] == gen:
                candidate = d + tails[rank]
                if candidate < best:
                    best = candidate

        settled_count = 0
        recompute_seconds = 0.0
        recomputed_nodes = 0
        # No ``done`` lane: with strict-improvement pushes every stale
        # entry satisfies ``d > dist[rank]``, and a settled rank can
        # never be re-pushed (no relaxation improves on a settled
        # distance), so the stale test below doubles as the done test.
        while heap:
            d, rank = pop(heap)
            if d >= best:
                break
            if d > dist[rank]:
                continue
            settled_count += 1
            if tail_seen[rank] == gen:
                candidate = d + tails[rank]
                if candidate < best:
                    best = candidate
            if rank in affected:
                # A repaired weight is a shortest path in a subgraph, so
                # it never undercuts the stored one: when even the
                # lightest stored edge cannot beat the incumbent, no
                # fresh edge can either — skip the repair outright.
                if d + min_weight[rank] >= best:
                    continue
                tick = time.perf_counter()
                changed = index.recomputed_out_weights(
                    rank, failed_ids, d, best
                )
                recompute_seconds += time.perf_counter() - tick
                recomputed_nodes += 1
                if changed:
                    # Scan the stored weight-sorted row, patching the
                    # few heads the repair actually moved.  The stored
                    # weight lower-bounds the repaired one, so breaking
                    # on it is still safe; a patched head just falls
                    # back to a skip when its fresh weight no longer
                    # beats the incumbent.
                    changed_get = changed.get
                    for head, weight in overlay[rank]:
                        candidate = d + weight
                        if candidate >= best:
                            break
                        patched = changed_get(head)
                        if patched is not None:
                            candidate = d + patched
                            if candidate >= best:
                                continue
                        if seen[head] != gen:
                            seen[head] = gen
                            dist[head] = candidate
                            push(heap, (candidate, head))
                        elif candidate < dist[head]:
                            dist[head] = candidate
                            push(heap, (candidate, head))
                    continue
                # ``{}``/``None``: no surviving head moved — the stored
                # row is exact; fall through to the common scan.
            rows = overlay[rank]
            for head, weight in rows:
                candidate = d + weight
                # Rows are weight-sorted, so the first relaxation that
                # reaches the incumbent bound ends the scan: every later
                # edge is at least as heavy and tails are non-negative.
                if candidate >= best:
                    break
                if seen[head] != gen:
                    seen[head] = gen
                    dist[head] = candidate
                    push(heap, (candidate, head))
                elif candidate < dist[head]:
                    dist[head] = candidate
                    push(heap, (candidate, head))
        stats.overlay_settled += settled_count
        stats.recompute_seconds += recompute_seconds
        stats.recomputed_nodes += recomputed_nodes
        return best

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        return self.index.index_entries()


class FrozenADISO(FrozenDISO):
    """ADISO's Algorithm 2 served from the compiled index.

    Built via ``ADISO.freeze()``.  The landmark table is densified to
    flat arrays (:class:`repro.landmarks.base.FrozenLandmarkTable`), the
    merged two-queue A* runs on dense indices with arena-backed
    ``d_o`` / ``cost`` lanes, and affected transit nodes relax raw graph
    edges exactly as in the dict engine (improved lazy recomputation).
    """

    #: The merged A* search's float association order depends on the
    #: query state (seed-vs-overlay arrival order decides which partial
    #: sums get added first), so the batched Bellman-Ford overlay
    #: kernel cannot match its answers bitwise — ADISO/ADISO-P batches
    #: keep the scalar per-query path (see ``_batched_overlay`` docs).
    _batched_overlay = False

    def __init__(self, oracle) -> None:
        super().__init__(oracle)
        started = time.perf_counter()
        self.landmarks = oracle.landmarks.compile(self.frozen)
        self._landmark_entries = oracle.landmarks.size_in_entries()
        self.freeze_seconds += time.perf_counter() - started
        self.preprocess_seconds += time.perf_counter() - started

    @classmethod
    def _restore_adiso(
        cls,
        landmarks,
        landmark_entries: int,
        **parts,
    ) -> "FrozenADISO":
        """ADISO variant of :meth:`FrozenDISO._restore`."""
        oracle = cls._restore(**parts)
        oracle.landmarks = landmarks
        oracle._landmark_entries = landmark_entries
        return oracle

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        frozen = self.frozen
        index = self.index
        failed_ids = frozen.edge_ids(fail_set) if fail_set else frozenset()
        affected_ranks = index.affected_ranks(failed_ids)
        stats.affected_count = len(affected_ranks)

        arenas = self._arenas()
        source_index = frozen.index_of[source]
        target_index = frozen.index_of[target]
        access_start = time.perf_counter()
        forward = csr_bounded_dijkstra(
            frozen, source_index, index.transit_flags, failed_ids,
            "out", arenas.forward,
        )
        backward = csr_bounded_dijkstra(
            frozen, target_index, index.transit_flags, failed_ids,
            "in", arenas.backward,
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled += forward.settled_count + backward.settled_count

        local = forward.distance(target_index)
        overlay = self._merged_search(
            forward.access,
            backward.access,
            failed_ids,
            affected_ranks,
            target_index,
            stats,
            local,
            arenas.search,
        )
        best = min(local, overlay)
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    def _merged_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed_ids: frozenset[int],
        affected_ranks: set[int],
        target: int,
        stats: QueryStats,
        upper_bound: float,
        arena: SearchArena,
    ) -> float:
        """Algorithm 2 on dense indices with arena-backed state."""
        index = self.index
        frozen = self.frozen
        adjacency = frozen._adjacency
        overlay = index.overlay_node_rows
        rank_of = index.rank_of
        transit_flags = index.transit_flags
        heuristic = self.landmarks.heuristic_to(target)
        affected = {index.transit_nodes[rank] for rank in affected_ranks}  # dsolint: disable=DSO101 -- rank set to node set; only membership is read

        gen = arena.begin()
        d_o = arena.dist
        cost = arena.aux
        seen = arena.seen
        done = arena.done
        queue_d: list[tuple[float, int]] = []
        queue_g: list[tuple[float, int]] = []

        best_known = upper_bound
        into_target_get = into_target.get
        for node, d in seeds.items():
            seen[node] = gen
            d_o[node] = d
            c = d + heuristic(node)
            cost[node] = c
            heappush(queue_d, (c, node))

        def clean(heap: list[tuple[float, int]]) -> None:
            while heap:
                c, node = heap[0]
                if done[node] == gen:
                    heappop(heap)
                    continue
                node_cost = cost[node] if seen[node] == gen else INFINITY
                if c > node_cost + 1e-12:
                    heappop(heap)
                else:
                    return

        settled_count = 0
        graph_settled = 0
        target_seen = seen[target] == gen  # seeds may include the target
        while True:
            clean(queue_d)
            clean(queue_g)
            top_d = queue_d[0][0] if queue_d else INFINITY
            top_g = queue_g[0][0] if queue_g else INFINITY
            if top_d == INFINITY and top_g == INFINITY:
                break
            target_dist = d_o[target] if target_seen else INFINITY
            current_best = (
                best_known if best_known < target_dist else target_dist
            )
            if min(top_d, top_g) >= current_best:
                # Every remaining label's completion is at least its A*
                # cost, so nothing can improve the answer.
                break
            heap = queue_d if top_d <= top_g else queue_g
            _, node = heappop(heap)
            done[node] = gen
            settled_count += 1
            if node == target:
                break
            node_dist = d_o[node]

            tail_distance = into_target_get(node)
            if tail_distance is not None:
                candidate = node_dist + tail_distance
                target_dist = d_o[target] if target_seen else INFINITY
                if candidate < target_dist:
                    seen[target] = gen
                    target_seen = True
                    d_o[target] = candidate
                    cost[target] = candidate  # h(t, t) = 0
                    heappush(queue_d, (candidate, target))

            node_in_transit = transit_flags[node]
            use_overlay = node_in_transit and node not in affected
            if use_overlay:
                for head, weight in overlay[rank_of[node]]:
                    if done[head] == gen or head == node:
                        continue
                    candidate = node_dist + weight
                    if seen[head] != gen or candidate < d_o[head]:
                        seen[head] = gen
                        if head == target:
                            target_seen = True
                        d_o[head] = candidate
                        c = candidate + heuristic(head)
                        cost[head] = c
                        # An overlay tail is a transit node, so its
                        # relaxations always go to Q_G (lines 19-20).
                        heappush(queue_g, (c, head))
            else:
                graph_settled += 1
                for head, weight, edge_id in adjacency[node]:
                    if done[head] == gen or head == node:
                        continue
                    if edge_id in failed_ids:
                        continue
                    candidate = node_dist + weight
                    if seen[head] != gen or candidate < d_o[head]:
                        seen[head] = gen
                        if head == target:
                            target_seen = True
                        d_o[head] = candidate
                        c = candidate + heuristic(head)
                        cost[head] = c
                        if not node_in_transit and transit_flags[head]:
                            heappush(queue_d, (c, head))
                        else:
                            heappush(queue_g, (c, head))
        stats.overlay_settled += settled_count
        stats.graph_settled += graph_settled
        return d_o[target] if target_seen else INFINITY

    def index_entries(self) -> dict[str, int]:
        entries = super().index_entries()
        entries["landmark_entries"] = self._landmark_entries
        return entries
