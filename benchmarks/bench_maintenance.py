"""Bench: maintenance strategies (paper supplemental).

Measures permanent-update costs and verifies the supplemental claim
that maintenance preserves query efficiency (maintained index answers
exactly, at a query time comparable to a fresh rebuild).
"""

from __future__ import annotations

from repro.experiments.maintenance_exp import (
    format_maintenance_experiment,
    run_maintenance_experiment,
)

from bench_util import SCALE, SEED, write_result


def test_maintenance_experiment(benchmark):
    data = benchmark.pedantic(
        lambda: run_maintenance_experiment(
            dataset="NY",
            scale=SCALE,
            operations_per_kind=8,
            query_count=10,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("maintenance", format_maintenance_experiment(data))
    # Exactness preserved: the maintained index matches ground truth.
    assert data["maintained_error_pct"] < 1e-6
    # "Without losing query efficiency": maintained index within 2x of
    # a from-scratch rebuild on the same workload.
    assert data["maintained_query_ms"] <= 2.0 * data["fresh_query_ms"] + 0.5
    # Each update rebuilt only a few of the trees.
    assert data["rebuilt_trees"] > 0
