"""Baseline debt files: land new rules without blocking on old debt.

A baseline is a checked-in JSON file recording the unsuppressed
findings a tree had at some point, as *fingerprints* — deliberately
line-free (``path::rule::message``) so unrelated edits above a finding
do not churn the file.  ``repro-dso lint --baseline FILE`` marks any
finding matching a baselined fingerprint as suppressed (justification
``accepted in baseline``), consuming one count per match; findings
beyond the recorded count stay live, so *new* instances of an old
problem still fail the gate.

The intended lifecycle: ``--write-baseline`` when a rule family lands
hot, burn the file down to empty as the debt is fixed, delete it.  The
gated trees in this repo carry no baseline — ``tests/test_lint_clean.py``
holds them at zero — but the mechanism is what lets the next rule
family land without a flag-day fix-everything commit.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding

#: Bump when the fingerprint or file format changes.
BASELINE_SCHEMA_VERSION = 1

_JUSTIFICATION = "accepted in baseline"


def fingerprint(finding: Finding) -> str:
    """Line-free identity of a finding for baseline matching."""
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


def write_baseline(path: str | Path, report: LintReport) -> int:
    """Record ``report``'s unsuppressed findings; returns the count."""
    entries: dict[str, int] = {}
    for finding in report.unsuppressed:
        key = fingerprint(finding)
        entries[key] = entries.get(key, 0) + 1
    payload = {
        "tool": "dsolint-baseline",
        "schema": BASELINE_SCHEMA_VERSION,
        "entries": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return sum(entries.values())


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint -> allowed count; raises on a malformed file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA_VERSION
        or not isinstance(payload.get("entries"), dict)
    ):
        raise ValueError(f"{path} is not a dsolint baseline file")
    return {
        str(key): int(value)
        for key, value in payload["entries"].items()
    }


def apply_baseline(
    report: LintReport, entries: dict[str, int]
) -> int:
    """Suppress baselined findings in place; returns how many matched.

    Matching consumes counts: a baseline recording two instances of a
    fingerprint waives at most two — the third is a regression and
    stays unsuppressed.
    """
    remaining = dict(entries)
    matched = 0
    for finding in report.findings:
        if finding.suppressed:
            continue
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.suppressed = True
            finding.justification = _JUSTIFICATION
            matched += 1
    return matched
