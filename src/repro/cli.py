"""Command-line interface: ``repro-dso`` / ``python -m repro``.

Subcommands
-----------
``stats``
    Print Table 2 dataset statistics.
``query``
    Build an oracle over a dataset (or a graph file) and answer one
    distance sensitivity query.
``experiment``
    Reproduce one of the paper's tables/figures and print it.
``lint``
    Run the ``dsolint`` static invariant checks (determinism,
    multiprocessing safety, float sentinels, protocol hygiene) and
    exit non-zero on any unsuppressed finding.
"""

from __future__ import annotations

import argparse
import sys

from repro.graph.io import read_dimacs, read_edge_list
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.workload.datasets import DATASETS, load_dataset

_ORACLES = {
    "diso": DISO,
    "adiso": ADISO,
    "diso-s": DISOSparse,
    "adiso-p": ADISOPartial,
    "astar": AStarOracle,
    "dijkstra": DijkstraOracle,
}

_EXPERIMENTS = (
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure4",
    "figure5",
    "figure6",
    "accuracy",
    "theta",
    "alpha",
    "affected",
    "throughput",
    "maintenance",
    "replay",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dso",
        description="Distance sensitivity oracles (DISO / ADISO).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print dataset statistics")
    stats.add_argument("--scale", type=float, default=0.5)
    stats.add_argument("--seed", type=int, default=7)

    query = sub.add_parser("query", help="answer one query")
    query.add_argument("source", type=int)
    query.add_argument("target", type=int)
    query.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="TAIL,HEAD",
        help="failed edge, repeatable (e.g. --fail 3,4)",
    )
    query.add_argument(
        "--oracle", choices=sorted(_ORACLES), default="diso"
    )
    query.add_argument(
        "--dataset", choices=sorted(DATASETS), default="NY"
    )
    query.add_argument("--graph-file", help="edge list or DIMACS .gr file")
    query.add_argument(
        "--format", choices=("edgelist", "dimacs"), default="edgelist"
    )
    query.add_argument("--scale", type=float, default=0.5)
    query.add_argument("--tau", type=int, default=3)
    query.add_argument("--theta", type=float, default=1.0)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument(
        "--index-file",
        help="load a prebuilt index (see the build subcommand) instead "
        "of preprocessing",
    )

    build = sub.add_parser(
        "build", help="preprocess an oracle index and save it to a file"
    )
    build.add_argument("index_file", help="output path for the JSON index")
    build.add_argument(
        "--oracle",
        choices=("diso", "adiso", "diso-b", "diso-s", "adiso-p"),
        default="diso",
    )
    build.add_argument(
        "--dataset", choices=sorted(DATASETS), default="NY"
    )
    build.add_argument("--graph-file", help="edge list or DIMACS .gr file")
    build.add_argument(
        "--format", choices=("edgelist", "dimacs"), default="edgelist"
    )
    build.add_argument("--scale", type=float, default=0.5)
    build.add_argument("--tau", type=int, default=3)
    build.add_argument("--theta", type=float, default=1.0)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="build with the parallel build plane over N worker "
        "processes (0 = inline, still spooled/profiled); omit for the "
        "classic sequential constructor",
    )
    build.add_argument(
        "--spool",
        metavar="DIR",
        help="checkpoint directory for --jobs builds; a killed build "
        "re-run with the same arguments resumes from it",
    )
    build.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="JSON_PATH",
        help="print the per-phase build profile (--jobs only); with a "
        "path, also write the profile as JSON there",
    )

    experiment = sub.add_parser(
        "experiment", help="reproduce a table or figure"
    )
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--queries", type=int, default=20)
    experiment.add_argument("--seed", type=int, default=7)

    snapshot = sub.add_parser(
        "snapshot",
        help="freeze an oracle and save a binary snapshot for serving",
    )
    snapshot.add_argument(
        "snapshot_file", help="output path (convention: .dsosnap)"
    )
    snapshot.add_argument(
        "--oracle", choices=("diso", "adiso"), default="diso"
    )
    snapshot.add_argument(
        "--dataset", choices=sorted(DATASETS), default="NY"
    )
    snapshot.add_argument("--graph-file", help="edge list or DIMACS .gr file")
    snapshot.add_argument(
        "--format", choices=("edgelist", "dimacs"), default="edgelist"
    )
    snapshot.add_argument("--scale", type=float, default=0.5)
    snapshot.add_argument("--tau", type=int, default=3)
    snapshot.add_argument("--theta", type=float, default=1.0)
    snapshot.add_argument("--seed", type=int, default=7)
    snapshot.add_argument(
        "--from-checkpoint",
        metavar="SPOOL_DIR",
        help="finish an interrupted --jobs build from its spool "
        "directory and snapshot the result (graph/oracle arguments are "
        "taken from the checkpoint, not the command line)",
    )
    snapshot.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for completing missing checkpoint "
        "shards (--from-checkpoint only; default 0 = inline)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the dsolint static invariant checks (DESIGN.md §10)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format",
    )
    lint.add_argument(
        "--output",
        metavar="PATH",
        help="also write the report (in the chosen format) to a file",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="list suppressed findings and their justifications",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files differing from REF (default HEAD) plus "
        "their reverse call-graph dependents",
    )
    lint.add_argument(
        "--cache",
        nargs="?",
        const=".dsolint-cache.json",
        default=None,
        metavar="PATH",
        help="summary cache file for incremental linting (default "
        ".dsolint-cache.json when the flag is given with no value)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline debt file",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record the run's unsuppressed findings as a new baseline "
        "and exit 0",
    )

    shard = sub.add_parser(
        "shard",
        help="partition a graph and build a sharded snapshot directory",
    )
    shard.add_argument(
        "snapshot_dir", help="output directory (manifest + shard files)"
    )
    shard.add_argument(
        "--parts", type=int, default=2, help="shard count (default 2)"
    )
    shard.add_argument(
        "--method",
        choices=("metis", "spectral", "uniform"),
        default="metis",
        help="partitioner (default metis)",
    )
    shard.add_argument(
        "--dataset", choices=sorted(DATASETS), default="NY"
    )
    shard.add_argument("--graph-file", help="edge list or DIMACS .gr file")
    shard.add_argument(
        "--format", choices=("edgelist", "dimacs"), default="edgelist"
    )
    shard.add_argument("--scale", type=float, default=0.5)
    shard.add_argument("--tau", type=int, default=3)
    shard.add_argument("--theta", type=float, default=1.0)
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="border-matrix build workers per shard (0 = inline)",
    )
    shard.add_argument(
        "--verify",
        type=int,
        default=0,
        metavar="N",
        help="after building, check N random stitched answers against "
        "an unsharded oracle over the same graph (default 0 = skip)",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the process-pool query service over a snapshot",
    )
    serve.add_argument("snapshot_file", help="a file written by `snapshot`")
    serve.add_argument(
        "--workers",
        default="1,2",
        help="comma-separated pool sizes to benchmark (default 1,2)",
    )
    serve.add_argument("--queries", type=int, default=200)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--chunk-size", type=int, default=None, help="queries per dispatch"
    )
    serve.add_argument(
        "--result-plane",
        choices=("shm", "pipe"),
        default=None,
        help="result channel: shm ring or pipe pickle "
        "(default: DSO_RESULT_PLANE env, else shm)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="dispatcher result-cache capacity (0 disables, the default)",
    )
    serve.add_argument(
        "--hot-pairs",
        type=int,
        default=0,
        help="precompute this many hottest pairs after each run "
        "(requires --cache-size)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="shed queries beyond this per-run latency budget "
        "(default: no shedding)",
    )
    serve.add_argument(
        "--workload",
        choices=("uniform", "zipf"),
        default="uniform",
        help="query workload: uniform pairs or zipf-skewed repeated "
        "pairs (default uniform)",
    )
    serve.add_argument(
        "--stitch-plane",
        choices=("scalar", "frozen"),
        default=None,
        help="sharded snapshots only: stitch cross-shard answers with "
        "the scalar heap walk or the frozen CSR kernels "
        "(default: DSO_STITCH_PLANE env, else frozen when numpy is "
        "available)",
    )

    return parser


def _load_graph(args):
    if args.graph_file:
        if args.format == "dimacs":
            return read_dimacs(args.graph_file)
        return read_edge_list(args.graph_file)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _parse_failures(pairs: list[str]) -> set[tuple[int, int]]:
    failed: set[tuple[int, int]] = set()
    for pair in pairs:
        tail_text, sep, head_text = pair.partition(",")
        if not sep:
            raise SystemExit(
                f"error: --fail expects TAIL,HEAD (got {pair!r})"
            )
        try:
            failed.add((int(tail_text), int(head_text)))
        except ValueError:
            raise SystemExit(
                f"error: --fail endpoints must be integers (got {pair!r})"
            ) from None
    return failed


def _run_stats(args) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2(scale=args.scale, seed=args.seed)))
    return 0


def _run_query(args) -> int:
    if args.index_file:
        from repro.oracle.serialize import load_index

        oracle = load_index(args.index_file)
    else:
        graph = _load_graph(args)
        oracle_cls = _ORACLES[args.oracle]
        if oracle_cls is DijkstraOracle:
            oracle = oracle_cls(graph)
        elif oracle_cls is AStarOracle:
            oracle = oracle_cls(graph, seed=args.seed)
        else:
            oracle = oracle_cls(graph, tau=args.tau, theta=args.theta)
    failed = _parse_failures(args.fail)
    result = oracle.query_detailed(args.source, args.target, failed)
    print(f"oracle        : {oracle.name}")
    print(f"distance      : {result.distance}")
    print(f"reachable     : {result.reachable}")
    print(f"affected nodes: {result.stats.affected_count}")
    print(f"query seconds : {result.stats.total_seconds:.6f}")
    return 0


def _run_build(args) -> int:
    from repro.oracle.diso_bi import DISOBidirectional
    from repro.oracle.serialize import save_index

    graph = _load_graph(args)
    if args.jobs is not None:
        from repro.build import build_parallel, format_report

        if args.oracle == "diso-b":
            raise SystemExit(
                "error: --jobs supports diso/adiso/diso-s/adiso-p; "
                "diso-b has no parallel build plane"
            )
        result = build_parallel(
            graph,
            family=args.oracle,
            jobs=args.jobs,
            tau=args.tau,
            theta=args.theta,
            seed=args.seed,
            spool_dir=args.spool,
        )
        oracle = result.oracle
        save_index(oracle, args.index_file)
        print(f"oracle        : {oracle.name}")
        print(f"transit nodes : {len(oracle.transit)}")
        print(f"overlay edges : {oracle.distance_graph.num_edges}")
        print(f"preprocess s  : {oracle.preprocess_seconds:.3f}")
        print(f"index written : {args.index_file}")
        if args.profile is not None:
            print()
            print(format_report(result.report))
            if args.profile:
                from pathlib import Path

                Path(args.profile).write_text(
                    result.report.to_json() + "\n", encoding="utf-8"
                )
                print(f"profile json  : {args.profile}")
        return 0
    if args.spool or args.profile is not None:
        raise SystemExit(
            "error: --spool/--profile require the parallel build plane "
            "(pass --jobs N)"
        )
    classes = {
        "diso": DISO,
        "adiso": ADISO,
        "diso-b": DISOBidirectional,
        "diso-s": DISOSparse,
        "adiso-p": ADISOPartial,
    }
    oracle_cls = classes[args.oracle]
    oracle = oracle_cls(graph, tau=args.tau, theta=args.theta)
    save_index(oracle, args.index_file)
    print(f"oracle        : {oracle.name}")
    print(f"transit nodes : {len(oracle.transit)}")
    print(f"overlay edges : {oracle.distance_graph.num_edges}")
    print(f"preprocess s  : {oracle.preprocess_seconds:.3f}")
    print(f"index written : {args.index_file}")
    return 0


def _run_snapshot(args) -> int:
    from repro.oracle.snapshot import save_snapshot, snapshot_info

    if args.from_checkpoint:
        from repro.build import finalize_checkpoint

        result = finalize_checkpoint(args.from_checkpoint, jobs=args.jobs)
        oracle = result.oracle
        report = result.report
        print(f"checkpoint    : {args.from_checkpoint}")
        print(
            f"shards        : {report.resumed_units} resumed, "
            f"{report.built_units} built"
        )
    else:
        graph = _load_graph(args)
        classes = {"diso": DISO, "adiso": ADISO}
        oracle = classes[args.oracle](graph, tau=args.tau, theta=args.theta)
    frozen = oracle.freeze()
    save_snapshot(frozen, args.snapshot_file)
    info = snapshot_info(args.snapshot_file)
    meta = info["meta"]
    print(f"oracle        : {meta['name']}")
    print(f"engine        : {info['engine']}")
    print(f"nodes / edges : {meta['num_nodes']} / {meta['num_edges']}")
    print(f"transit nodes : {meta['num_transit']}")
    print(f"preprocess s  : {meta['preprocess_seconds']:.3f}")
    print(f"freeze s      : {meta['freeze_seconds']:.3f}")
    print(f"file bytes    : {info['file_bytes']}")
    print(f"sections      : {len(info['sections'])}")
    print(f"snapshot      : {args.snapshot_file}")
    return 0


def _run_shard(args) -> int:
    from repro.sharding import (
        build_sharded,
        load_sharded_snapshot,
        save_sharded_snapshot,
        sharded_snapshot_info,
    )

    if args.parts < 1:
        raise SystemExit("error: --parts must be >= 1")
    graph = _load_graph(args)
    try:
        build = build_sharded(
            graph,
            args.parts,
            method=args.method,
            seed=args.seed,
            tau=args.tau,
            theta=args.theta,
            jobs=args.jobs,
        )
    except Exception as exc:
        raise SystemExit(f"error: {exc}") from exc
    target = save_sharded_snapshot(build, args.snapshot_dir)
    info = sharded_snapshot_info(target)
    meta = info["meta"]
    plan = build.plan
    print(f"graph         : {graph.number_of_nodes()} nodes / "
          f"{graph.number_of_edges()} edges")
    print(f"partitioner   : {plan.method} (seed {plan.seed})")
    print(f"shards        : {plan.parts}  sizes "
          f"{[len(nodes) for nodes in plan.shard_nodes]}")
    print(f"border nodes  : {plan.num_borders}")
    print(f"edge cut      : {plan.edge_cut}")
    print(f"build s       : {build.build_seconds:.3f}")
    print(f"manifest bytes: {info['manifest_bytes']}")
    for name, size in info["shard_file_bytes"].items():
        print(f"  {name}: {size} bytes")
    print(f"snapshot dir  : {target}")
    if args.verify:
        import math
        import random

        from repro.oracle.diso import DISO as _DISO

        reference = _DISO(graph, tau=args.tau, theta=args.theta).freeze()
        sharded = load_sharded_snapshot(target)
        rng = random.Random(args.seed)
        nodes = sorted(graph.nodes())
        edges = [(tail, head) for tail, head, _ in graph.edges()]
        mismatches = 0
        for _ in range(args.verify):
            source, target_node = rng.choice(nodes), rng.choice(nodes)
            failed = frozenset(
                rng.sample(edges, min(len(edges), rng.randrange(0, 3)))
            )
            want = reference.query(source, target_node, failed)
            got = sharded.query(source, target_node, failed)
            same = want == got or (math.isinf(want) and math.isinf(got))
            if not same and not math.isclose(
                want, got, rel_tol=1e-9, abs_tol=0.0
            ):
                mismatches += 1
        print(f"verify        : {args.verify} queries, "
              f"{mismatches} mismatches")
        if mismatches:
            return 1
    return 0


def _run_lint(args) -> int:
    from repro.analysis import (
        SummaryCache,
        apply_baseline,
        changed_files,
        lint_paths,
        load_baseline,
        to_json,
        to_sarif,
        to_text,
        write_baseline,
    )

    changed = None
    if args.changed is not None:
        try:
            changed = changed_files(args.changed)
        except RuntimeError as exc:
            raise SystemExit(f"repro-dso lint --changed: {exc}")
    store = SummaryCache(args.cache) if args.cache else None
    report = lint_paths(args.paths, cache=store, changed=changed)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report)
        print(
            f"dsolint: wrote baseline with {count} finding"
            f"{'s' if count != 1 else ''} to {args.write_baseline}"
        )
        return 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-dso lint --baseline: {exc}")
        apply_baseline(report, entries)
    if args.output_format == "json":
        rendered = to_json(report)
    elif args.output_format == "sarif":
        rendered = to_sarif(report)
    else:
        rendered = to_text(report, show_suppressed=args.show_suppressed)
    print(rendered)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return 0 if report.ok else 1


def _run_serve_bench(args) -> int:
    from pathlib import Path

    from repro.oracle.snapshot import load_snapshot
    from repro.serving import QueryService
    from repro.sharding.snapshot import MANIFEST_NAME
    from repro.workload.queries import generate_queries, generate_zipf_queries

    try:
        worker_counts = [
            int(text) for text in args.workers.split(",") if text.strip()
        ]
    except ValueError:
        raise SystemExit(
            f"error: --workers expects comma-separated ints "
            f"(got {args.workers!r})"
        ) from None
    if not worker_counts or min(worker_counts) < 1:
        raise SystemExit("error: --workers needs at least one value >= 1")

    snapshot_path = Path(args.snapshot_file)
    if snapshot_path.is_dir() or snapshot_path.name == MANIFEST_NAME:
        return _run_serve_bench_sharded(args, worker_counts)
    if args.stitch_plane is not None:
        raise SystemExit(
            "error: --stitch-plane applies to sharded snapshot "
            "directories only"
        )

    oracle = load_snapshot(args.snapshot_file)
    if args.workload == "zipf":
        queries = generate_zipf_queries(
            oracle.graph, args.queries, seed=args.seed
        )
    else:
        queries = generate_queries(oracle.graph, args.queries, seed=args.seed)

    import time

    started = time.perf_counter()
    baseline = [
        oracle.query(q.source, q.target, q.failed) for q in queries
    ]
    base_wall = time.perf_counter() - started
    base_qps = len(queries) / base_wall if base_wall > 0 else float("inf")

    print(f"snapshot  : {args.snapshot_file} ({oracle.name})")
    print(
        f"queries   : {len(queries)}  "
        f"(seed {args.seed}, {args.workload} workload)"
    )
    if args.cache_size:
        hot = f", hot_pairs {args.hot_pairs}" if args.hot_pairs else ""
        print(f"cache     : {args.cache_size} entries{hot}")
    if args.deadline_ms is not None:
        print(f"deadline  : {args.deadline_ms} ms")
    print(f"{'workers':>8} {'plane':>6} {'qps':>10} {'p50 us':>9} "
          f"{'p99 us':>9} {'speedup':>8} {'hits':>6} {'hit%':>6} "
          f"{'shed%':>6} {'errors':>7} {'restarts':>9}")
    print(f"{'seq':>8} {'-':>6} {base_qps:>10.1f} {'-':>9} {'-':>9} "
          f"{1.0:>8.2f} {'-':>6} {'-':>6} {'-':>6} {'-':>7} {'-':>9}")
    for workers in worker_counts:
        with QueryService(
            args.snapshot_file,
            workers=workers,
            chunk_size=args.chunk_size,
            result_plane=args.result_plane,
            cache_size=args.cache_size,
            hot_pairs=args.hot_pairs,
            deadline_ms=args.deadline_ms,
        ) as service:
            report = service.run(queries)
        # Errored queries answer NaN by design, and shed queries are
        # NaN on purpose; parity holds on everything else.
        shed = set(report.shed_indices)
        diverged = [
            position
            for position, (got, want) in enumerate(
                zip(report.answers, baseline)
            )
            if report.errors[position] is None
            and position not in shed
            and got != want
        ]
        if diverged:
            raise SystemExit(
                f"error: {workers}-worker answers diverge from the "
                f"sequential baseline at positions {diverged[:5]}"
            )
        print(
            f"{workers:>8} {report.result_plane:>6} "
            f"{report.queries_per_second:>10.1f} "
            f"{1e6 * report.p50_seconds:>9.1f} "
            f"{1e6 * report.p99_seconds:>9.1f} "
            f"{report.queries_per_second / base_qps:>8.2f} "
            f"{report.cache_hits:>6} "
            f"{100.0 * report.cache_hit_ratio:>5.1f}% "
            f"{100.0 * report.shed_rate:>5.1f}% "
            f"{report.error_count:>7} {report.restarts:>9}"
        )
        for position in report.error_indices[:5]:
            print(f"  query {position} error: {report.errors[position]}")
    return 0


def _run_serve_bench_sharded(args, worker_counts: list[int]) -> int:
    """serve-bench over a sharded snapshot directory.

    Same contract as the unsharded bench (sequential baseline, strict
    divergence check) plus the stitched plane's columns: dispatcher
    stitch microseconds, cross-shard fraction, and closure fast-path
    hits.  Workload endpoints come from the manifest's assignment (no
    graph is loaded); every fourth query fails one cross-shard edge so
    the stitch and repair paths are actually exercised.
    """
    import random
    import time

    from repro.serving.sharded import ShardedQueryService
    from repro.sharding.snapshot import (
        load_shard_plan_overlay,
        load_sharded_snapshot,
    )
    from repro.workload.queries import generate_queries, generate_zipf_queries

    if args.hot_pairs:
        raise SystemExit(
            "error: --hot-pairs is not supported on the sharded plane"
        )
    overlay, meta, _ = load_shard_plan_overlay(args.snapshot_file)
    nodes = sorted(overlay.assignment)
    if args.workload == "zipf":
        base = generate_zipf_queries(
            None, args.queries, f_gen=0, p=0.0, seed=args.seed, nodes=nodes
        )
    else:
        base = generate_queries(
            None, args.queries, f_gen=0, p=0.0, seed=args.seed, nodes=nodes
        )
    cross_edges = sorted(overlay.cross_keys)
    rng = random.Random(args.seed)
    queries = [
        (
            query.source,
            query.target,
            (
                (cross_edges[rng.randrange(len(cross_edges))],)
                if cross_edges and position % 4 == 3
                else None
            ),
        )
        for position, query in enumerate(base)
    ]

    oracle = load_sharded_snapshot(args.snapshot_file)
    started = time.perf_counter()
    baseline = [
        oracle.query(source, target, frozenset(failed) if failed else None)
        for source, target, failed in queries
    ]
    base_wall = time.perf_counter() - started
    base_qps = len(queries) / base_wall if base_wall > 0 else float("inf")

    print(
        f"snapshot  : {args.snapshot_file} "
        f"({meta['parts']} shards, {meta['num_borders']} borders)"
    )
    print(
        f"queries   : {len(queries)}  "
        f"(seed {args.seed}, {args.workload} workload, "
        f"cross-edge failures on every 4th)"
    )
    if args.cache_size:
        print(f"cache     : {args.cache_size} entries")
    if args.deadline_ms is not None:
        print(f"deadline  : {args.deadline_ms} ms")
    print(f"{'workers':>8} {'stitch':>7} {'qps':>10} {'p50 us':>9} "
          f"{'p99 us':>9} {'stitch us':>10} {'cross%':>7} "
          f"{'closure':>8} {'hits':>6} {'shed%':>6} {'errors':>7}")
    print(f"{'seq':>8} {'-':>7} {base_qps:>10.1f} {'-':>9} {'-':>9} "
          f"{'-':>10} {'-':>7} {'-':>8} {'-':>6} {'-':>6} {'-':>7}")
    for workers in worker_counts:
        with ShardedQueryService(
            args.snapshot_file,
            workers_per_shard=workers,
            chunk_size=args.chunk_size,
            result_plane=args.result_plane,
            stitch_plane=args.stitch_plane,
            cache_size=args.cache_size,
            deadline_ms=args.deadline_ms,
        ) as service:
            report = service.run(queries)
        shed = set(report.shed_indices)
        diverged = [
            position
            for position, (got, want) in enumerate(
                zip(report.answers, baseline)
            )
            if report.errors[position] is None
            and position not in shed
            and got != want
        ]
        if diverged:
            raise SystemExit(
                f"error: {workers}-worker answers diverge from the "
                f"sequential baseline at positions {diverged[:5]}"
            )
        print(
            f"{workers:>8} {report.stitch_plane:>7} "
            f"{report.queries_per_second:>10.1f} "
            f"{1e6 * report.p50_seconds:>9.1f} "
            f"{1e6 * report.p99_seconds:>9.1f} "
            f"{report.stitch_us:>10.1f} "
            f"{100.0 * report.cross_shard_ratio:>6.1f}% "
            f"{report.closure_hits:>8} "
            f"{report.cache_hits:>6} "
            f"{100.0 * report.shed_rate:>5.1f}% "
            f"{report.error_count:>7}"
        )
        for position in report.error_indices[:5]:
            print(f"  query {position} error: {report.errors[position]}")
    return 0


def _run_experiment(args) -> int:
    from repro import experiments as exp

    name = args.name
    if name == "table2":
        print(exp.format_table2(exp.run_table2(scale=args.scale, seed=args.seed)))
    elif name == "table3":
        print(
            exp.format_table3(
                exp.run_table3(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "table4":
        print(
            exp.format_table4(
                exp.run_table4(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "table5":
        print(
            exp.format_table5(
                exp.run_table5(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "table6":
        print(exp.format_table6(exp.run_table6(scale=args.scale, seed=args.seed)))
    elif name == "figure4":
        print(exp.format_figure4(exp.run_figure4(scale=args.scale, seed=args.seed)))
    elif name == "figure5":
        print(exp.format_figure5(exp.run_figure5(scale=args.scale, seed=args.seed)))
    elif name == "figure6":
        print(exp.format_figure6(exp.run_figure6(scale=args.scale, seed=args.seed)))
    elif name == "accuracy":
        print(
            exp.format_accuracy(
                exp.run_accuracy(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "theta":
        print(
            exp.format_theta_sweep(
                exp.run_theta_sweep(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "alpha":
        print(
            exp.format_alpha_sweep(
                exp.run_alpha_sweep(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "affected":
        print(
            exp.format_affected_nodes_sweep(
                exp.run_affected_nodes_sweep(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "throughput":
        print(
            exp.format_throughput_scaling(
                exp.run_throughput_scaling(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "maintenance":
        print(
            exp.format_maintenance_experiment(
                exp.run_maintenance_experiment(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "replay":
        print(
            exp.format_replay(
                exp.run_replay(
                    scale=args.scale, query_count=args.queries, seed=args.seed
                )
            )
        )
    elif name == "all":
        sections = exp.run_all(
            scale=args.scale,
            query_count=args.queries,
            seed=args.seed,
            progress=lambda n: print(f"running {n} ...", flush=True),
        )
        print(exp.format_all(sections))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "build":
        return _run_build(args)
    if args.command == "snapshot":
        return _run_snapshot(args)
    if args.command == "shard":
        return _run_shard(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "serve-bench":
        return _run_serve_bench(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
