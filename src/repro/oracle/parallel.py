"""Parallel query processing on one shared oracle index.

The paper's motivating property (Section 1): because the query
algorithms never write to the index, "they can handle multiple queries
in parallel, each of which is processed with a separate thread on the
same index structure", linearly increasing throughput.

:class:`QueryEngine` packages that pattern: a thread pool over a single
oracle.  In CPython the GIL bounds the speed-up for pure-Python
workloads, but the *correctness* claim — concurrent failure queries on
one index, no locking, no cross-talk — holds and is what the tests
verify.  On free-threaded builds (or with the hot loops compiled) the
same code scales.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence
from dataclasses import dataclass

from repro.oracle.base import DistanceSensitivityOracle
from repro.workload.queries import Query


@dataclass
class ThroughputReport:
    """Aggregate outcome of a parallel batch run."""

    answers: list[float]
    wall_seconds: float
    threads: int

    @property
    def queries_per_second(self) -> float:
        """Observed throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.answers) / self.wall_seconds


class QueryEngine:
    """A thread pool answering distance sensitivity queries.

    Parameters
    ----------
    oracle:
        Any oracle whose query path does not mutate shared state —
        true for every oracle in this library except FDDO, which
        performs update-then-rollback per query.  Passing an FDDO
        raises immediately rather than racing silently.
    threads:
        Pool size.

    Examples
    --------
    >>> from repro import DISO, road_network, generate_queries
    >>> g = road_network(10, 10, seed=1)
    >>> engine = QueryEngine(DISO(g, tau=3), threads=2)
    >>> batch = generate_queries(g, 4, seed=2)
    >>> report = engine.run(batch)
    >>> len(report.answers)
    4
    """

    def __init__(
        self,
        oracle: DistanceSensitivityOracle,
        threads: int = 4,
    ) -> None:
        from repro.baselines.fddo import FDDOOracle

        if isinstance(oracle, FDDOOracle):
            raise ValueError(
                "FDDO mutates its index per query (update-then-rollback) "
                "and cannot serve concurrent queries without locking"
            )
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.oracle = oracle
        self.threads = threads

    def run(self, queries: Sequence[Query]) -> ThroughputReport:
        """Answer ``queries`` concurrently; results keep input order."""
        oracle = self.oracle

        def answer(query: Query) -> float:
            return oracle.query(query.source, query.target, query.failed)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            answers = list(pool.map(answer, queries))
        wall = time.perf_counter() - started
        return ThroughputReport(
            answers=answers, wall_seconds=wall, threads=self.threads
        )

    def run_sequential(self, queries: Sequence[Query]) -> ThroughputReport:
        """Single-threaded reference run for comparing throughput."""
        started = time.perf_counter()
        answers = [
            self.oracle.query(q.source, q.target, q.failed) for q in queries
        ]
        wall = time.perf_counter() - started
        return ThroughputReport(answers=answers, wall_seconds=wall, threads=1)
