"""Tests for Dijkstra variants, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    eccentricity,
    path_distance,
    reverse_dijkstra,
    shortest_distance,
    shortest_path,
    shortest_path_tree,
)
from repro.pathing.spt import INFINITY

from util import random_failures_from, random_graph


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes())
    for tail, head, weight in graph.edges():
        g.add_edge(tail, head, weight=weight)
    return g


class TestDijkstraBasics:
    def test_triangle(self, triangle):
        dist, parent = dijkstra(triangle, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0}
        assert parent[2] == 1

    def test_missing_source_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            dijkstra(triangle, 99)

    def test_unreachable_absent_from_dist(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(2)
        dist, _ = dijkstra(g, 0)
        assert 2 not in dist

    def test_early_exit_at_target(self, small_grid):
        dist, _ = dijkstra(small_grid, 0, target=1)
        # target settled; far corners may be unexplored
        assert dist[1] == 1.0

    def test_failed_edge_avoided(self, triangle):
        dist, _ = dijkstra(triangle, 0, failed={(0, 1)})
        assert dist[2] == 5.0

    def test_all_paths_failed(self, triangle):
        dist, _ = dijkstra(triangle, 0, failed={(0, 1), (0, 2)})
        assert 2 not in dist

    def test_grid_manhattan(self, small_grid):
        dist, _ = dijkstra(small_grid, 0)
        # node 24 is the far corner of the 5x5 grid
        assert dist[24] == pytest.approx(8.0)


class TestShortestPath:
    def test_path_edges(self, triangle):
        assert shortest_path(triangle, 0, 2) == [(0, 1), (1, 2)]

    def test_path_unreachable_is_none(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(2)
        assert shortest_path(g, 0, 2) is None

    def test_path_distance_matches(self, small_road):
        path = shortest_path(small_road, 0, 100)
        assert path is not None
        assert path_distance(small_road, path) == pytest.approx(
            shortest_distance(small_road, 0, 100)
        )

    def test_path_respects_failures(self, diamond):
        path = shortest_path(diamond, 0, 3, failed={(0, 1)})
        assert path == [(0, 2), (2, 3)]

    def test_shortest_distance_unreachable(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(5)
        assert shortest_distance(g, 0, 5) == INFINITY


class TestShortestPathTree:
    def test_tree_distances_match_dijkstra(self, small_road):
        tree = shortest_path_tree(small_road, 0)
        dist, _ = dijkstra(small_road, 0)
        assert tree.dist == dist
        tree.check_invariants()

    def test_tree_paths_are_shortest(self, small_grid):
        tree = shortest_path_tree(small_grid, 0)
        path = tree.path_to(24)
        assert path is not None
        assert path_distance(small_grid, path) == tree.dist[24]


class TestReverseDijkstra:
    def test_matches_forward_on_reversed_graph(self, small_road):
        into = reverse_dijkstra(small_road, 17)
        fwd_on_rev, _ = dijkstra(small_road.reverse(), 17)
        assert into == fwd_on_rev

    def test_respects_failures_in_original_orientation(self, triangle):
        into = reverse_dijkstra(triangle, 2, failed={(1, 2)})
        assert into[0] == 5.0


class TestBidirectional:
    def test_same_node(self, triangle):
        assert bidirectional_dijkstra(triangle, 1, 1) == 0.0

    def test_matches_unidirectional(self, small_road):
        for target in (5, 50, 99, 143):
            assert bidirectional_dijkstra(small_road, 0, target) == (
                pytest.approx(shortest_distance(small_road, 0, target))
            )

    def test_with_failures(self, diamond):
        assert bidirectional_dijkstra(diamond, 0, 3, failed={(1, 3)}) == (
            pytest.approx(4.0)
        )

    def test_unreachable(self):
        g = DiGraph([(0, 1, 1.0)])
        g.add_node(2)
        assert bidirectional_dijkstra(g, 0, 2) == INFINITY

    def test_missing_endpoint_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            bidirectional_dijkstra(triangle, 0, 77)


class TestEccentricity:
    def test_line_eccentricity(self, line):
        assert eccentricity(line, 0) == pytest.approx(7.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dijkstra_matches_networkx(seed):
    """Distances agree with networkx on random strongly connected graphs."""
    graph = random_graph(seed)
    nx_graph = to_networkx(graph)
    dist, _ = dijkstra(graph, 0)
    expected = nx.single_source_dijkstra_path_length(nx_graph, 0)
    assert set(dist) == set(expected)
    for node, d in expected.items():
        assert dist[node] == pytest.approx(d)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
)
def test_dijkstra_with_failures_matches_networkx(seed, fail_seed):
    """Failure-avoiding distances equal networkx on the edge-deleted graph."""
    graph = random_graph(seed)
    failed = random_failures_from(graph, fail_seed, 8)
    nx_graph = to_networkx(graph)
    nx_graph.remove_edges_from(failed)
    dist, _ = dijkstra(graph, 0, failed=failed)
    expected = nx.single_source_dijkstra_path_length(nx_graph, 0)
    assert set(dist) == set(expected)
    for node, d in expected.items():
        assert dist[node] == pytest.approx(d)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    target=st.integers(min_value=0, max_value=29),
)
def test_bidirectional_matches_unidirectional(seed, target):
    graph = random_graph(seed)
    expected = shortest_distance(graph, 0, target)
    assert bidirectional_dijkstra(graph, 0, target) == pytest.approx(expected)
