"""Project-wide symbol table and call graph over module summaries.

:class:`Project` stitches the per-file :class:`~repro.analysis.
summaries.ModuleSummary` records into one namespace: every file is
assigned a dotted module name (``src/repro/oracle/frozen.py`` →
``repro.oracle.frozen``; scripts outside a package root get their stem),
and the dotted names recorded at call sites are resolved through each
module's import table to a concrete :class:`FunctionSummary` or
:class:`ClassSummary` somewhere else in the project.

Resolution is deliberately shallow and sound-by-omission: a name the
table cannot resolve (builtins, third-party modules, dynamic dispatch)
resolves to ``None`` and the dataflow layer treats the call result as
clean.  That keeps the inter-procedural rules quiet exactly where the
per-file rules are quiet — on code the analysis cannot see.

The module-level import graph doubles as the dependency oracle for
``repro-dso lint --changed``: :meth:`Project.dependents_of` returns the
transitive *reverse* closure of a changed file set, which is the set of
files whose inter-procedural findings could change when those files
change.
"""

from __future__ import annotations

from pathlib import PurePosixPath

from repro.analysis.summaries import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

#: Directory names that act as import roots: the module name of a file
#: is its path below the innermost of these.
_SOURCE_ROOTS = frozenset({"src"})


def module_name_for(path: str) -> str:
    """The dotted module name the import system would give ``path``.

    >>> module_name_for("src/repro/oracle/frozen.py")
    'repro.oracle.frozen'
    >>> module_name_for("benchmarks/bench_util.py")
    'bench_util'
    >>> module_name_for("src/repro/graph/__init__.py")
    'repro.graph'
    """
    parts = list(PurePosixPath(str(path).replace("\\", "/")).parts)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _SOURCE_ROOTS:
            parts = parts[index + 1:]
            break
    if not parts:
        return ""
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    # Scripts outside a package root (tests/, benchmarks/, examples/)
    # import as their bare stem.
    if parts and parts[0] in {"tests", "benchmarks", "examples"}:
        return parts[-1]
    return ".".join(parts)


class Project:
    """Resolved whole-program view over a set of module summaries."""

    def __init__(self, modules: list[ModuleSummary]) -> None:
        #: module name -> summary (first definition wins on collision,
        #: which matches the import system's behaviour for sys.path).
        self.modules: dict[str, ModuleSummary] = {}
        for summary in modules:
            if not summary.module:
                summary.module = module_name_for(summary.path)
            self.modules.setdefault(summary.module, summary)
        self._resolve_memo: dict[tuple[str, str], tuple | None] = {}

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(
        self, module: str, dotted: str, cls: str | None = None
    ) -> tuple | None:
        """Resolve a call-site name to a project symbol.

        Returns ``("func", module_summary, function_summary)`` or
        ``("class", module_summary, class_summary)``, or ``None`` when
        the name leaves the project.  ``cls`` is the enclosing class
        for ``self.method(...)`` calls.
        """
        key = (module, f"{cls or ''}|{dotted}")
        if key in self._resolve_memo:
            return self._resolve_memo[key]
        result = self._resolve(module, dotted, cls)
        self._resolve_memo[key] = result
        return result

    def _resolve(
        self, module: str, dotted: str, cls: str | None
    ) -> tuple | None:
        owner = self.modules.get(module)
        if owner is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and cls is not None:
            if len(parts) == 2:
                return self._symbol_in(owner, f"{cls}.{parts[1]}")
            return None
        if len(parts) == 1:
            name = parts[0]
            local = self._symbol_in(owner, name)
            if local is not None:
                return local
            target = owner.imports.get(name)
            if target is None:
                return None
            return self._resolve_qualified(target)
        # "a.b.f": resolve the longest importable prefix to a module,
        # then look the remainder up inside it.
        head = owner.imports.get(parts[0])
        if head is None:
            return None
        return self._resolve_qualified(".".join([head, *parts[1:]]))

    def _resolve_qualified(self, qualified: str) -> tuple | None:
        """Resolve a fully-dotted target like ``repro.oracle.frozen.f``."""
        parts = qualified.split(".")
        # Longest module prefix wins; the remainder is a symbol path.
        for split in range(len(parts), 0, -1):
            module = ".".join(parts[:split])
            owner = self.modules.get(module)
            if owner is None:
                continue
            remainder = parts[split:]
            if not remainder:
                return None
            if len(remainder) == 1:
                direct = self._symbol_in(owner, remainder[0])
                if direct is not None:
                    return direct
                # One level of re-export: ``from x import f`` in the
                # target module forwards the lookup.
                forwarded = owner.imports.get(remainder[0])
                if forwarded is not None and forwarded != qualified:
                    return self._resolve_qualified(forwarded)
                return None
            if len(remainder) == 2:
                # Class attribute/method: Cls.method.
                return self._symbol_in(owner, ".".join(remainder))
            return None
        return None

    @staticmethod
    def _symbol_in(owner: ModuleSummary, name: str) -> tuple | None:
        function = owner.functions.get(name)
        if function is not None:
            return ("func", owner, function)
        klass = owner.classes.get(name)
        if klass is not None:
            return ("class", owner, klass)
        return None

    def init_of(
        self, owner: ModuleSummary, klass: ClassSummary
    ) -> FunctionSummary | None:
        return owner.functions.get(f"{klass.name}.__init__")

    # ------------------------------------------------------------------
    # Module dependency graph (for --changed)
    # ------------------------------------------------------------------
    def _import_edges(self) -> dict[str, set[str]]:
        """module -> set of project modules it imports from."""
        edges: dict[str, set[str]] = {}
        for name, summary in self.modules.items():
            targets: set[str] = set()
            for dotted in summary.imports.values():
                parts = dotted.split(".")
                for split in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:split])
                    if candidate in self.modules and candidate != name:
                        targets.add(candidate)
                        break
            edges[name] = targets
        return edges

    def dependents_of(self, paths: set[str]) -> set[str]:
        """Paths of every module transitively importing any of ``paths``.

        The result includes ``paths`` themselves (restricted to files
        the project knows).  This is the file set whose findings can
        change when ``paths`` change — the ``--changed`` lint target.
        """
        by_path = {
            summary.path: name for name, summary in self.modules.items()
        }
        seeds = {by_path[path] for path in sorted(paths) if path in by_path}
        reverse: dict[str, set[str]] = {name: set() for name in self.modules}
        for source, targets in self._import_edges().items():
            for target in sorted(targets):
                reverse[target].add(source)
        reached = set(seeds)
        frontier = sorted(seeds)
        while frontier:
            current = frontier.pop()
            for dependent in sorted(reverse.get(current, ())):
                if dependent not in reached:
                    reached.add(dependent)
                    frontier.append(dependent)
        return {self.modules[name].path for name in sorted(reached)}
