"""Sharded serving: route queries to owning shards, stitch the rest.

:class:`ShardedQueryService` serves a sharded snapshot directory
(:func:`repro.sharding.snapshot.save_sharded_snapshot`).  The
dispatcher loads only the manifest — the
:class:`~repro.sharding.oracle.BorderOverlay` — and composes one inner
:class:`~repro.serving.service.QueryService` *per shard*, each mapping
exactly one ``shard-*.dsosnap`` file across its workers.  The full
index is never resident in any single process.

``run()`` turns each input query into shard-local *leg* queries
(DESIGN.md §13 routing table):

* same-shard ``(s, t)``: one **local** leg on the owning shard — plus
  the border legs below, because the true shortest path may leave the
  shard and return (the stitched answer is min-ed with the local one);
* every query whose source shard has borders: one **outbound** leg
  ``(s, b1, F_s)`` per source-shard border, and one **inbound** leg
  ``(b2, t, F_t)`` per target-shard border;
* every shard ``k`` with a non-empty owned failure set ``F_k``: a
  **repair** leg ``(a, b, F_k)`` per ordered border pair, rebuilding
  its type-2 overlay rows under the failures.

Legs are deduplicated per shard on the canonical ``(s, t, F)`` key —
two queries sharing a source and failure set share the outbound legs,
and every query in a batch under the same ``F_k`` shares one repair set
(repaired rows are additionally memoized *across* batches per
``(shard, canonical F_k)`` until the snapshot epoch retires) — then
each shard's pool answers its batch through the ordinary dispatcher
(result planes, crash replacement, epoch fencing all inherited).

Stitching runs in this process over the answered legs, on one of two
planes (DESIGN.md §14), selected by the ``stitch_plane`` knob or the
``DSO_STITCH_PLANE`` environment variable:

* ``"scalar"`` — the PR 8 per-query heap walk
  (:func:`~repro.sharding.oracle.stitch_over_borders`);
* ``"frozen"`` (default when NumPy is available) — the compiled
  :class:`~repro.sharding.frozen_overlay.FrozenOverlay`: queries are
  grouped by failure patch and stitched per group by the batched CSR
  kernel, and failure-free cross-shard queries collapse to the
  precomputed border closure (two leg lookups + one matrix min).
  Answers are bitwise-identical to the scalar plane on every graph the
  parity suite runs.

The dispatcher-level ``cache_size`` / ``deadline_ms`` knobs mirror the
unsharded service: result-cache entries are stamped with the *sum* of
the shard pools' snapshot epochs (so retiring any shard's snapshot
invalidates every cached stitched answer), and deadline admission sheds
whole input queries before any leg is planned.

Error semantics match the unsharded plane: a poison endpoint yields a
NaN answer and a ``"QueryError: ..."`` message (same text the worker
would produce), never an aborted run; a failed leg poisons exactly the
queries that needed it, scanning legs in a fixed local → outbound →
inbound → repairs order on both stitch planes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from collections.abc import Sequence

from repro.oracle.parallel import latency_percentile
from repro.serving.admission import DeadlineAdmission
from repro.serving.cache import ResultCache, canonical_query_key
from repro.serving.service import QueryService, ServeReport, _wire_query
from repro.serving.worker import QUERY_ERROR
from repro.sharding.frozen_overlay import HAVE_NUMPY
from repro.sharding.oracle import INFINITY, stitch_over_borders
from repro.sharding.snapshot import load_frozen_overlay, load_shard_plan_overlay

#: Recognised stitch planes for :class:`ShardedQueryService`.
STITCH_PLANES = ("scalar", "frozen")

#: Cross-batch repaired-row memo entries kept per service (each entry
#: is one shard's full border matrix under one failure set).
_REPAIR_MEMO_LIMIT = 256


class _QueryPlan:
    """Routing decision for one input query (leg references by index)."""

    __slots__ = (
        "error", "shard_s", "shard_t", "local", "out_legs", "in_legs",
        "repairs", "cross_failed", "cross_shard",
    )

    def __init__(self) -> None:
        self.error: str | None = None
        self.shard_s = -1
        self.shard_t = -1
        #: ``(shard, leg index)`` of the local leg, or ``None``.
        self.local: tuple[int, int] | None = None
        #: ``[(border, (shard, leg index)), ...]`` source-side legs.
        self.out_legs: list = []
        #: ``[(border, (shard, leg index)), ...]`` target-side legs.
        self.in_legs: list = []
        #: ``[(shard, rows_key), ...]`` repair sets this query needs,
        #: sorted by shard; ``rows_key`` indexes the batch's shared
        #: repair table (and the cross-batch memo).
        self.repairs: list[tuple[int, tuple]] = []
        self.cross_failed = frozenset()
        self.cross_shard = False

    def patch_key(self) -> tuple:
        """Hashable failure-patch signature (groups the frozen stitch)."""
        return (tuple(self.repairs), self.cross_failed)


class ShardedQueryService:
    """Serve a sharded snapshot directory with per-shard worker pools.

    Parameters
    ----------
    snapshot_dir:
        Directory written by
        :func:`repro.sharding.snapshot.save_sharded_snapshot`.
    workers_per_shard:
        Pool size of each shard's inner :class:`QueryService`.
    verify:
        Verify manifest and shard checksums while loading.
    start_method, result_plane, chunk_size, max_restarts,
    batch_timeout, ping_timeout:
        Forwarded to every inner :class:`QueryService`.
    stitch_plane:
        ``"frozen"`` (CSR kernels + closure fast path; requires NumPy)
        or ``"scalar"`` (the per-query heap walk).  ``None`` reads
        ``DSO_STITCH_PLANE``, then defaults to ``"frozen"`` when NumPy
        is importable.
    cache_size:
        Dispatcher result-cache capacity (0 disables).  Entries are
        epoch-stamped across *all* shard pools.
    deadline_ms:
        Per-batch deadline for admission control (``None`` disables).

    Examples
    --------
    >>> from repro import DISO, grid_network
    >>> from repro.sharding import build_sharded, save_sharded_snapshot
    >>> from repro.serving.sharded import ShardedQueryService
    >>> g = grid_network(4, 4)
    >>> path = save_sharded_snapshot(
    ...     build_sharded(g, 2, seed=1), "/tmp/doc-sharded"
    ... )
    >>> with ShardedQueryService(path, workers_per_shard=1) as service:
    ...     report = service.run([(0, 15, None), (15, 0, ((0, 1),))])
    >>> report.shards
    2
    >>> report.error_count
    0
    """

    def __init__(
        self,
        snapshot_dir: str | Path,
        workers_per_shard: int = 1,
        verify: bool = True,
        start_method: str | None = None,
        result_plane: str | None = None,
        chunk_size: int | None = None,
        max_restarts: int | None = None,
        batch_timeout: float = 30.0,
        ping_timeout: float = 5.0,
        stitch_plane: str | None = None,
        cache_size: int = 0,
        deadline_ms: float | None = None,
    ) -> None:
        if workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if stitch_plane is None:
            stitch_plane = os.environ.get("DSO_STITCH_PLANE") or None
        if stitch_plane is None:
            stitch_plane = "frozen" if HAVE_NUMPY else "scalar"
        if stitch_plane not in STITCH_PLANES:
            raise ValueError(
                f"stitch_plane must be one of {STITCH_PLANES}, "
                f"got {stitch_plane!r}"
            )
        if stitch_plane == "frozen" and not HAVE_NUMPY:
            raise ValueError(
                "stitch_plane='frozen' requires numpy; "
                "pass stitch_plane='scalar'"
            )
        self.snapshot_dir = str(snapshot_dir)
        overlay, meta, shard_paths = load_shard_plan_overlay(
            snapshot_dir, verify=verify
        )
        self.overlay = overlay
        self.meta = meta
        self.shards = overlay.parts
        self.workers_per_shard = workers_per_shard
        self.stitch_plane = stitch_plane
        self._frozen = (
            load_frozen_overlay(snapshot_dir, verify=verify)
            if stitch_plane == "frozen"
            else None
        )
        self._services = [
            QueryService(
                path,
                workers=workers_per_shard,
                start_method=start_method,
                result_plane=result_plane,
                chunk_size=chunk_size,
                max_restarts=max_restarts,
                batch_timeout=batch_timeout,
                ping_timeout=ping_timeout,
            )
            for path in shard_paths
        ]
        self._started = False
        self.cache_size = cache_size
        self.deadline_ms = deadline_ms
        self._cache = ResultCache(cache_size) if cache_size else None
        self._admission = (
            DeadlineAdmission(deadline_ms, self.workers)
            if deadline_ms is not None
            else None
        )
        #: ``(shard, canonical F_k) -> resolved float rows`` — repaired
        #: border matrices carried across batches.  Cleared whenever
        #: any shard's snapshot epoch retires (the rows embed that
        #: shard's answers).
        self._repair_memo: dict[tuple, list[list[float]]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedQueryService":
        """Start every shard pool (lazy on first ``run()`` otherwise)."""
        for service in self._services:
            service.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop every shard pool and release the frozen overlay mmap."""
        for service in self._services:
            service.stop()
        if self._frozen is not None:
            self._frozen.close()
        self._started = False

    def __enter__(self) -> "ShardedQueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def workers(self) -> int:
        """Total workers across every shard pool."""
        return self.shards * self.workers_per_shard

    @property
    def total_restarts(self) -> int:
        """Worker replacements across all shard pools since start."""
        return sum(service.total_restarts for service in self._services)

    # ------------------------------------------------------------------
    # Caching plane: epochs spanning every shard pool
    # ------------------------------------------------------------------
    @property
    def snapshot_epoch(self) -> int:
        """Cache stamp: the sum of every shard pool's snapshot epoch.

        Any single shard retiring its snapshot changes the sum, which
        retires every cached *stitched* answer — a stitched value may
        embed legs from any shard, so per-shard invalidation cannot be
        finer than this.
        """
        return sum(service.snapshot_epoch for service in self._services)

    def retire_snapshot_epoch(self) -> int:
        """Invalidate all cached answers and memoized repaired rows."""
        for service in self._services:
            service.retire_snapshot_epoch()
        epoch = self.snapshot_epoch
        if self._cache is not None:
            self._cache.retire_older_than(epoch)
        self._repair_memo.clear()
        return epoch

    def cache_stats(self) -> dict | None:
        """Dispatcher cache counters, or ``None`` when disabled."""
        if self._cache is None:
            return None
        return self._cache.stats()

    def admission_stats(self) -> dict | None:
        """Admission-control state, or ``None`` when disabled."""
        if self._admission is None:
            return None
        return self._admission.stats()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _plan_queries(
        self, wire: list[tuple]
    ) -> tuple[list[_QueryPlan], list[list[tuple]], dict]:
        """Turn wire queries into per-shard leg batches plus plans.

        Returns ``(plans, shard_legs, repair_refs)`` where
        ``repair_refs`` maps each distinct ``(shard, canonical F_k)``
        this batch needs — and the cross-batch memo cannot supply — to
        its leg-reference rows (resolved once after dispatch).
        """
        overlay = self.overlay
        assignment = overlay.assignment
        shard_legs: list[list[tuple]] = [[] for _ in range(self.shards)]
        leg_index: list[dict] = [{} for _ in range(self.shards)]
        repair_refs: dict[tuple, list[list]] = {}

        def leg(shard: int, source: int, target: int, failed) -> tuple[int, int]:
            key = canonical_query_key(source, target, failed)
            index = leg_index[shard].get(key)
            if index is None:
                index = len(shard_legs[shard])
                leg_index[shard][key] = index
                shard_legs[shard].append(
                    (source, target, tuple(failed) if failed else None)
                )
            return (shard, index)

        plans: list[_QueryPlan] = []
        for source, target, failed in wire:
            plan = _QueryPlan()
            plans.append(plan)
            if source not in assignment:
                plan.error = (
                    f"QueryError: source node {source!r} is not in the graph"
                )
                continue
            if target not in assignment:
                plan.error = (
                    f"QueryError: target node {target!r} is not in the graph"
                )
                continue
            try:
                per_shard, cross_failed = overlay.split_failures(failed)
            except Exception as exc:
                plan.error = f"{type(exc).__name__}: {exc}"
                continue
            plan.shard_s = assignment[source]
            plan.shard_t = assignment[target]
            plan.cross_shard = plan.shard_s != plan.shard_t
            plan.cross_failed = cross_failed
            f_s = per_shard.get(plan.shard_s, frozenset())
            f_t = per_shard.get(plan.shard_t, frozenset())
            if not plan.cross_shard:
                plan.local = leg(plan.shard_s, source, target, f_s)
            borders_s = overlay.shard_borders[plan.shard_s]
            borders_t = overlay.shard_borders[plan.shard_t]
            if not borders_s or not borders_t:
                continue  # local answer (or inf) is already exact
            plan.out_legs = [
                (border, leg(plan.shard_s, source, border, f_s))
                for border in borders_s
            ]
            plan.in_legs = [
                (border, leg(plan.shard_t, border, target, f_t))
                for border in borders_t
            ]
            for shard in overlay.shards_touched(per_shard):
                failures = per_shard[shard]
                rows_key = (shard, canonical_query_key(0, 0, failures)[2])
                plan.repairs.append((shard, rows_key))
                if rows_key in self._repair_memo or rows_key in repair_refs:
                    continue  # repaired once per batch — or never again
                borders = overlay.shard_borders[shard]
                repair_refs[rows_key] = [
                    [
                        None if a == b else leg(shard, a, b, failures)
                        for b in borders
                    ]
                    for a in borders
                ]
        return plans, shard_legs, repair_refs

    # ------------------------------------------------------------------
    # Dispatch + stitch
    # ------------------------------------------------------------------
    def run(
        self, queries: Sequence, chunk_size: int | None = None
    ) -> ServeReport:
        """Answer ``queries``, stitching cross-shard ones over borders.

        Answers keep input order and are bitwise-identical (NaN
        sentinel included) to the unsharded frozen oracle whenever
        float addition over the graph's weights is exact — the
        property the sharded parity suite locks down, on both stitch
        planes.
        """
        started = time.perf_counter()
        for service in self._services:
            if not service._started:
                service.start()
        self._started = True
        wire = [_wire_query(query) for query in queries]
        total = len(wire)
        assignment = self.overlay.assignment
        cross_flags = [
            source in assignment
            and target in assignment
            and assignment[source] != assignment[target]
            for source, target, _ in wire
        ]

        # ---- cache lookup + within-batch dedup + deadline shedding ---
        # (mirrors QueryService.run — the knobs compose identically).
        cache_hits = 0
        precomputed_hits = 0
        shed_indices: list[int] = []
        duplicates: dict[int, list[int]] = {}
        keys: list | None = None
        full_answers: list[float] = [float("nan")] * total
        if self._cache is not None:
            keys = [canonical_query_key(*triple) for triple in wire]
            epoch = self.snapshot_epoch
            first_seen: dict = {}
            dispatch_positions: list[int] = []
            for position, key in enumerate(keys):
                hit = self._cache.get(key, epoch)
                if hit is not None:
                    full_answers[position], was_precomputed = hit
                    cache_hits += 1
                    if was_precomputed:
                        precomputed_hits += 1
                    continue
                leader = first_seen.get(key)
                if leader is not None:
                    duplicates.setdefault(leader, []).append(position)
                else:
                    first_seen[key] = position
                    dispatch_positions.append(position)
        else:
            dispatch_positions = list(range(total))
        if self._admission is not None and dispatch_positions:
            admitted = self._admission.admit(len(dispatch_positions))
            if admitted < len(dispatch_positions):
                for position in dispatch_positions[admitted:]:
                    shed_indices.append(position)
                    shed_indices.extend(duplicates.pop(position, ()))
                dispatch_positions = dispatch_positions[:admitted]
                shed_indices.sort()
        identity = self._cache is None and not shed_indices
        compact_wire = (
            wire if identity
            else [wire[position] for position in dispatch_positions]
        )
        n_dispatch = len(compact_wire)

        plans, shard_legs, repair_refs = self._plan_queries(compact_wire)
        reports: list[ServeReport | None] = [None] * self.shards
        for shard, legs in enumerate(shard_legs):
            if legs:
                reports[shard] = self._services[shard].run(
                    legs, chunk_size=chunk_size
                )

        def leg_value(ref: tuple[int, int]) -> tuple[float, str | None]:
            shard, index = ref
            report = reports[shard]
            return report.answers[index], report.errors[index]

        answers, latencies, errors, stitch_seconds, closure_hits = (
            self._stitch_all(plans, leg_value, repair_refs)
        )

        # ---- scatter back + cache fill (compact -> input positions) --
        if not identity:
            full_latencies = [0.0] * total
            full_errors: list[str | None] = [None] * total
            for index, position in enumerate(dispatch_positions):
                full_answers[position] = answers[index]
                full_latencies[position] = latencies[index]
                full_errors[position] = errors[index]
            for leader, positions in duplicates.items():
                for position in positions:
                    full_answers[position] = full_answers[leader]
                    full_errors[position] = full_errors[leader]
                    cache_hits += 1
            if self._cache is not None:
                epoch = self.snapshot_epoch
                for index, position in enumerate(dispatch_positions):
                    if errors[index] is None:
                        self._cache.put(keys[position], answers[index], epoch)
            answers = full_answers
            latencies = full_latencies
            errors = full_errors

        # Aggregate the shard pools' accounting into one report.
        per_worker = []
        restarts = 0
        dispatch_seconds = 0.0
        pipe_bytes = 0
        result_batches = 0
        busy_seconds = 0.0
        planes = set()
        for report in reports:
            if report is None:
                continue
            restarts += report.restarts
            dispatch_seconds += report.dispatch_seconds
            pipe_bytes += report.pipe_bytes
            result_batches += report.result_batches
            planes.add(report.result_plane)
            per_worker.extend(report.per_worker)
        for slot, stats in enumerate(per_worker):
            stats.index = slot
            busy_seconds += stats.busy_seconds
        if self._admission is not None and n_dispatch:
            self._admission.observe(n_dispatch, busy_seconds)

        # Same-shard vs cross-shard latency split over the queries that
        # were actually stitched this run (cache hits and sheds carry
        # no stitch latency and would only dilute the percentiles).
        split: dict[str, dict] = {}
        planned = (
            range(total) if identity else dispatch_positions
        )
        for label, wanted in (("same_shard", False), ("cross_shard", True)):
            lane = [
                latencies[position]
                for position in planned
                if cross_flags[position] is wanted
            ]
            if lane:
                split[label] = {
                    "count": len(lane),
                    "p50_us": round(1e6 * latency_percentile(lane, 0.50), 3),
                    "p99_us": round(1e6 * latency_percentile(lane, 0.99), 3),
                }
        cross = sum(1 for flag in cross_flags if flag)
        return ServeReport(
            answers=answers,
            latencies=latencies,
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
            per_worker=per_worker,
            restarts=restarts,
            errors=errors,
            result_plane="pipe" if not planes else (
                "shm" if planes == {"shm"} else "pipe"
            ),
            dispatch_seconds=dispatch_seconds,
            pipe_bytes=pipe_bytes,
            result_batches=result_batches,
            cache_hits=cache_hits,
            precomputed_hits=precomputed_hits,
            shed_indices=shed_indices,
            shards=self.shards,
            cross_shard_ratio=(cross / total) if wire else 0.0,
            shard_loads=[len(legs) for legs in shard_legs],
            stitch_plane=self.stitch_plane,
            stitch_seconds=stitch_seconds,
            closure_hits=closure_hits,
            latency_split=split,
        )

    # ------------------------------------------------------------------
    # Stitch planes
    # ------------------------------------------------------------------
    def _resolve_repairs(
        self, repair_refs: dict, leg_value
    ) -> dict[tuple, tuple]:
        """Resolve each distinct repair set once, memoizing clean ones.

        Returns ``rows_key -> (rows, first_error_message)``; scan order
        inside a set is row-major, matching the scalar plane's per-query
        scan so error strings stay byte-identical.
        """
        resolved: dict[tuple, tuple] = {}
        for rows_key, ref_rows in repair_refs.items():
            rows: list[list[float]] = []
            message: str | None = None
            for ref_row in ref_rows:
                row: list[float] = []
                for ref in ref_row:
                    if ref is None:
                        row.append(0.0)
                        continue
                    value, leg_message = leg_value(ref)
                    if leg_message is not None:
                        message = leg_message
                        break
                    row.append(value)
                if message is not None:
                    break
                rows.append(row)
            if message is not None:
                resolved[rows_key] = (None, message)
            else:
                resolved[rows_key] = (rows, None)
                if len(self._repair_memo) < _REPAIR_MEMO_LIMIT:
                    self._repair_memo[rows_key] = rows
        return resolved

    def _resolve_legs(self, plan: _QueryPlan, leg_value, resolved):
        """Answered legs of one plan, scanned in the canonical order.

        Returns ``("done", answer, message)`` for plans that finish
        without stitching (errors, borderless shards), else
        ``("stitch", sources, targets, upper, repaired)``.
        """
        if plan.error is not None:
            return ("done", QUERY_ERROR, plan.error)
        local = INFINITY
        if plan.local is not None:
            local, message = leg_value(plan.local)
            if message is not None:
                return ("done", QUERY_ERROR, message)
        if not plan.out_legs:
            return ("done", local, None)
        sources = []
        for border, ref in plan.out_legs:
            value, message = leg_value(ref)
            if message is not None:
                return ("done", QUERY_ERROR, message)
            sources.append((border, value))
        targets = []
        for border, ref in plan.in_legs:
            value, message = leg_value(ref)
            if message is not None:
                return ("done", QUERY_ERROR, message)
            targets.append((border, value))
        repaired: dict[int, list[list[float]]] = {}
        for shard, rows_key in plan.repairs:
            rows = self._repair_memo.get(rows_key)
            if rows is None:
                rows, message = resolved[rows_key]
                if message is not None:
                    return ("done", QUERY_ERROR, message)
            repaired[shard] = rows
        return ("stitch", sources, targets, local, repaired)

    def _stitch_all(self, plans, leg_value, repair_refs):
        """Stitch every plan on the active plane; returns the lanes.

        Per-query ``latencies`` measure dispatcher-side stitch work
        only (leg resolution plus the walk/kernel share); the legs'
        own worker time is accounted by the shard pools.
        """
        perf = time.perf_counter
        count = len(plans)
        answers = [float("nan")] * count
        latencies = [0.0] * count
        errors: list[str | None] = [None] * count
        closure_hits = 0
        stitch_started = perf()
        resolved = self._resolve_repairs(repair_refs, leg_value)
        frozen = self._frozen if self.stitch_plane == "frozen" else None
        #: patch signature -> (repaired, cross_failed, [(position, s, t, u)])
        groups: dict[tuple, tuple] = {}
        for position, plan in enumerate(plans):
            tick = perf()
            outcome = self._resolve_legs(plan, leg_value, resolved)
            if outcome[0] == "done":
                _, answers[position], errors[position] = outcome
                latencies[position] = perf() - tick
                continue
            _, sources, targets, upper, repaired = outcome
            if frozen is None:
                targets_map = {
                    border: value
                    for border, value in targets
                    if value < INFINITY
                }
                adjacency = self.overlay.adjacency(
                    repaired or None, plan.cross_failed
                )
                answers[position] = stitch_over_borders(
                    sources, targets_map, adjacency, upper_bound=upper
                )
                latencies[position] = perf() - tick
                continue
            if (
                not repaired
                and not plan.cross_failed
                and frozen.closure is not None
            ):
                # Failure-free fast path: the precomputed closure.
                answers[position] = frozen.closure_answer(
                    sources, targets, upper
                )
                closure_hits += 1
                latencies[position] = perf() - tick
                continue
            group = groups.get(plan.patch_key())
            if group is None:
                group = (repaired, plan.cross_failed, [])
                groups[plan.patch_key()] = group
            group[2].append((position, sources, targets, upper))
            latencies[position] = perf() - tick
        for repaired, cross_failed, members in groups.values():
            tick = perf()
            batch = [
                (sources, targets, upper)
                for _, sources, targets, upper in members
            ]
            stitched = frozen.stitch_batch(
                batch, repaired=repaired or None, cross_failed=cross_failed
            )
            share = (perf() - tick) / len(members)
            for slot, (position, _, _, _) in enumerate(members):
                answers[position] = float(stitched[slot])
                latencies[position] += share
        return (
            answers, latencies, errors,
            perf() - stitch_started, closure_hits,
        )
