"""Rule registry for ``dsolint``.

Every rule is a subclass of :class:`Rule` with a stable ``rule_id``
(``DSO`` + family digit + two digits), a severity, and a one-line
``summary`` quoted by ``--format json`` and DESIGN.md §10.  Rules are
``ast.NodeVisitor`` subclasses; the engine instantiates each enabled
rule per file with a shared :class:`RuleContext` and visits the module
once per rule (the tree is tiny compared to parse cost, and per-rule
visitors keep rules independent and testable).

Bump :data:`RULE_CATALOGUE_VERSION` whenever a rule is added, removed,
or materially re-scoped — benchmark entries record it (see
``benchmarks/bench_util.py``), so perf numbers are attributable to the
invariant set they were produced under.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.inference import ScopeEnv, build_envs, enclosing_env

#: Catalogue version stamped into BENCH_*.json entries.
RULE_CATALOGUE_VERSION = "2.0"


@dataclass
class RuleContext:
    """Per-file state shared by every rule visitor."""

    path: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    envs: dict[ast.AST, ScopeEnv] = field(default_factory=dict)

    @classmethod
    def for_tree(cls, path: str, tree: ast.Module) -> "RuleContext":
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(
            path=path, tree=tree, parents=parents, envs=build_envs(tree)
        )

    def env_at(self, node: ast.AST) -> ScopeEnv:
        return enclosing_env(node, self.parents, self.envs, self.tree)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)


class Rule(ast.NodeVisitor):
    """Base class: collect findings while visiting one module."""

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""

    def __init__(self, context: RuleContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=self.context.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.context.tree)
        return self.findings


def _registry() -> tuple[type[Rule], ...]:
    from repro.analysis.rules.conformance import (
        EpochFencedPutRule,
        LockCoverageRule,
        WriteThenStampRule,
    )
    from repro.analysis.rules.determinism import (
        SetIterationOrderRule,
        SetLoopEmissionRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.analysis.rules.floats import (
        FloatLiteralEqualityRule,
        NanSentinelComparisonRule,
        SelfComparisonNanRule,
    )
    from repro.analysis.rules.mp_safety import (
        MutableGlobalWriteRule,
        UnpicklableDispatchRule,
    )
    from repro.analysis.rules.protocol import (
        BareExceptRule,
        SilentWorkerHandlerRule,
        SwallowedBroadExceptRule,
    )

    return (
        SetIterationOrderRule,
        SetLoopEmissionRule,
        UnseededRandomRule,
        WallClockRule,
        UnpicklableDispatchRule,
        MutableGlobalWriteRule,
        NanSentinelComparisonRule,
        FloatLiteralEqualityRule,
        SelfComparisonNanRule,
        BareExceptRule,
        SwallowedBroadExceptRule,
        SilentWorkerHandlerRule,
        WriteThenStampRule,
        EpochFencedPutRule,
        LockCoverageRule,
    )


RULES: tuple[type[Rule], ...] = _registry()


def rule_catalogue() -> dict[str, dict[str, str]]:
    """``{rule_id: {severity, summary}}`` for reports and docs.

    Covers the per-file registry *and* the DSO5xx dataflow family,
    which runs in the project pass (no :class:`Rule` subclass) but is
    part of the same contract and the same catalogue version.
    """
    from repro.analysis.dataflow import DATAFLOW_RULES

    catalogue = {
        rule.rule_id: {"severity": rule.severity, "summary": rule.summary}
        for rule in RULES
    }
    for rule_id, info in DATAFLOW_RULES.items():
        catalogue[rule_id] = {
            "severity": info["severity"],
            "summary": info["summary"],
        }
    return catalogue
