"""One-shot driver: run every reproduction experiment and collate.

``run_all`` executes each table, figure, supplemental sweep, and
extension experiment at a configurable scale and returns the formatted
sections; the CLI exposes it as ``repro-dso experiment all``.  Use a
small scale (0.2-0.3) for a quick look and 0.5+ for the numbers
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from collections.abc import Callable


def run_all(
    scale: float = 0.3,
    query_count: int = 10,
    seed: int = 7,
    progress: Callable[[str], None] | None = None,
) -> list[tuple[str, str]]:
    """Run every experiment; return ``(name, formatted_text)`` sections.

    Parameters
    ----------
    scale:
        Dataset scale shared by all experiments.
    query_count:
        Queries per measurement batch.
    seed:
        Shared determinism seed.
    progress:
        Optional callback invoked with each experiment name before it
        runs (the CLI prints them).
    """
    from repro import experiments as exp

    sections: list[tuple[str, str]] = []

    def announce(name: str) -> None:
        if progress is not None:
            progress(name)

    announce("table2")
    sections.append(
        ("table2", exp.format_table2(exp.run_table2(scale=scale, seed=seed)))
    )
    announce("table3")
    sections.append(
        (
            "table3",
            exp.format_table3(
                exp.run_table3(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("table4")
    sections.append(
        (
            "table4",
            exp.format_table4(
                exp.run_table4(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("table5")
    sections.append(
        (
            "table5",
            exp.format_table5(
                exp.run_table5(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("table6")
    sections.append(
        ("table6", exp.format_table6(exp.run_table6(scale=scale, seed=seed)))
    )
    announce("figure4")
    sections.append(
        (
            "figure4",
            exp.format_figure4(
                exp.run_figure4(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("figure5")
    sections.append(
        (
            "figure5",
            exp.format_figure5(
                exp.run_figure5(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("figure6")
    sections.append(
        (
            "figure6",
            exp.format_figure6(
                exp.run_figure6(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("accuracy")
    sections.append(
        (
            "accuracy",
            exp.format_accuracy(
                exp.run_accuracy(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("theta")
    sections.append(
        (
            "theta",
            exp.format_theta_sweep(
                exp.run_theta_sweep(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("alpha")
    sections.append(
        (
            "alpha",
            exp.format_alpha_sweep(
                exp.run_alpha_sweep(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("affected")
    sections.append(
        (
            "affected",
            exp.format_affected_nodes_sweep(
                exp.run_affected_nodes_sweep(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("throughput")
    sections.append(
        (
            "throughput",
            exp.format_throughput_scaling(
                exp.run_throughput_scaling(
                    scale=scale, query_count=query_count * 3, seed=seed
                )
            ),
        )
    )
    announce("maintenance")
    sections.append(
        (
            "maintenance",
            exp.format_maintenance_experiment(
                exp.run_maintenance_experiment(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    announce("replay")
    sections.append(
        (
            "replay",
            exp.format_replay(
                exp.run_replay(
                    scale=scale, query_count=query_count, seed=seed
                )
            ),
        )
    )
    return sections


def format_all(sections: list[tuple[str, str]]) -> str:
    """Join all sections into one report document."""
    parts = []
    for name, text in sections:
        banner = "=" * 72
        parts.append(f"{banner}\n# {name}\n{banner}\n{text}")
    return "\n\n".join(parts)
