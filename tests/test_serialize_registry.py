"""Index serialization must round-trip every oracle family.

The registry covers DISO, DISO-B, ADISO, and the boosted variants
DISO-S and ADISO-P.  For each family: save to JSON, load, and compare
answers (``==``-equal — the loaded oracle runs the same arithmetic)
over randomized queries with failures.  The boosted variants also keep
their extras: the Dijkstra fallback graph and sparsification
bookkeeping for DISO-S, the second overlay ``H`` for ADISO-P.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.exceptions import FormatError
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.oracle.diso_s import DISOSparse
from repro.oracle.serialize import load_index, save_index
from util import random_failures_from, random_graph


def _roundtrip(oracle):
    buffer = io.StringIO()
    save_index(oracle, buffer)
    buffer.seek(0)
    return load_index(buffer)


def _assert_query_parity(original, loaded, graph, seed, count=20):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    for index in range(count):
        source = rng.choice(nodes)
        target = source if index % 6 == 0 else rng.choice(nodes)
        failed = (
            random_failures_from(graph, seed + index, rng.randint(1, 4))
            if index % 3
            else None
        )
        expected = original.query(source, target, failed)
        got = loaded.query(source, target, failed)
        assert got == expected, (source, target, failed)


@pytest.mark.parametrize(
    "family",
    ["diso", "diso_bi", "adiso", "diso_s", "adiso_p"],
)
def test_roundtrip_parity(family):
    graph = random_graph(17, n=28, extra=80)
    oracle = {
        "diso": lambda: DISO(graph, tau=3),
        "diso_bi": lambda: DISOBidirectional(graph, tau=3),
        "adiso": lambda: ADISO(graph, tau=3, seed=17),
        "diso_s": lambda: DISOSparse(graph, beta=1.5, tau=3),
        "adiso_p": lambda: ADISOPartial(graph, tau=3, seed=17),
    }[family]()
    loaded = _roundtrip(oracle)
    assert type(loaded) is type(oracle)
    assert loaded.name == oracle.name
    assert loaded.transit == oracle.transit
    _assert_query_parity(oracle, loaded, graph, seed=23)


def test_loaded_diso_s_keeps_extras():
    graph = random_graph(19, n=24, extra=70)
    oracle = DISOSparse(graph, beta=1.5, tau=3)
    loaded = _roundtrip(oracle)
    assert loaded.beta == oracle.beta
    assert sorted(loaded.original_graph.edges()) == sorted(
        oracle.original_graph.edges()
    )
    assert (
        loaded.input_sparsification.removed
        == oracle.input_sparsification.removed
    )
    assert (
        loaded.overlay_sparsification.removed
        == oracle.overlay_sparsification.removed
    )
    # The restored original graph powers both the Dijkstra safety net
    # and freeze(); exercise the frozen plane from the loaded object.
    frozen = loaded.freeze()
    _assert_query_parity(oracle, frozen, graph, seed=29, count=10)


def test_loaded_adiso_p_keeps_second_overlay():
    graph = random_graph(21, n=24, extra=70)
    oracle = ADISOPartial(graph, tau=3, seed=21)
    loaded = _roundtrip(oracle)
    assert sorted(loaded.h_overlay.graph.edges()) == sorted(
        oracle.h_overlay.graph.edges()
    )
    assert set(loaded.h_trees) == set(oracle.h_trees)
    assert loaded._node_to_h_roots == oracle._node_to_h_roots
    assert loaded.exit_candidates == oracle.exit_candidates
    assert loaded.avoid_affected_bias == oracle.avoid_affected_bias


def test_unknown_class_raises_format_error():
    oracle = DISO(random_graph(3), tau=3)
    buffer = io.StringIO()
    save_index(oracle, buffer)
    import json

    document = json.loads(buffer.getvalue())
    document["oracle"] = "EvilOracle"
    with pytest.raises(FormatError, match="unknown oracle class"):
        load_index(io.StringIO(json.dumps(document)))
