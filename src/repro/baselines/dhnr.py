"""DHNR — a dynamic highway-node routing style baseline (paper §2).

Schultes & Sanders' dynamic highway-node routing handles edge-weight
changes by *not relaxing affected highway edges*: instead of repairing
overlay weights, the query simply routes through the underlying graph
wherever the overlay is dirty.  The paper discusses this approach at
length in Related Work and predicts its failure mode: "since many
highway edges may become unavailable, the algorithm would mostly use
edges in G, which means that it would act like the Dijkstra's
algorithm".

This baseline reproduces that design on DISO's own index so the
comparison isolates the *failure-handling policy*:

* DISO (lazy recomputation): affected overlay weights are repaired from
  the stored bounded trees;
* DHNR (avoidance): affected transit nodes relax their plain graph
  edges and never touch the trees.

Mechanically this is ADISO's merged two-queue procedure with a zero
heuristic (plain Dijkstra ordering) — popping an affected transit node
falls through to graph-edge relaxation, which is exactly the
"avoid affected highway edges" rule.  Answers remain exact; only the
search-space behaviour differs, and the benchmark shows it degrading
toward Dijkstra as the failure rate grows, as the paper predicts.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.oracle.adiso import ADISO


class _ZeroHeuristicTable:
    """A landmark-table stand-in whose lower bound is identically zero.

    Plugging it into ADISO's machinery turns the A* ordering into plain
    Dijkstra ordering — the ordering DHNR uses.
    """

    landmarks: tuple[int, ...] = ()

    def __len__(self) -> int:
        return 0

    def lower_bound(self, u: int, v: int) -> float:
        return 0.0

    def landmark_bound(self, index: int, u: int, v: int) -> float:
        raise IndexError("the zero table has no landmarks")

    def heuristic_to(self, target: int):
        def heuristic(_node: int) -> float:
            return 0.0

        return heuristic

    def size_in_entries(self) -> int:
        return 0


class DHNROracle(ADISO):
    """Dynamic highway-node routing style oracle (exact).

    Parameters
    ----------
    graph, tau, theta, transit:
        Index parameters, as in :class:`repro.DISO`.
    """

    name = "DHNR"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
    ) -> None:
        super().__init__(
            graph,
            tau=tau,
            theta=theta,
            transit=transit,
            landmark_table=_ZeroHeuristicTable(),
        )
