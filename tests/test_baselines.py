"""Tests for the competitor baselines: DI, A*, FDDO."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.exceptions import QueryError
from repro.oracle.base import INFINITY
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestDijkstraOracle:
    def test_zero_preprocessing(self, small_road):
        oracle = DijkstraOracle(small_road)
        assert oracle.preprocess_seconds == 0.0
        assert oracle.index_entries() == {}

    def test_exact(self, small_road):
        oracle = DijkstraOracle(small_road)
        failed = {(0, 1), (10, 11)}
        assert oracle.query(0, 143, failed) == pytest.approx(
            shortest_distance(small_road, 0, 143, failed)
        )

    def test_validates_endpoints(self, small_road):
        with pytest.raises(QueryError):
            DijkstraOracle(small_road).query(0, 10_000)

    def test_stats_settled(self, small_road):
        result = DijkstraOracle(small_road).query_detailed(0, 143)
        assert result.stats.graph_settled > 0


class TestAStarOracle:
    def test_exact_with_failures(self, small_road):
        oracle = AStarOracle(small_road, num_landmarks=4, seed=1)
        failed = {(0, 1), (10, 11), (99, 100)}
        for target in (5, 77, 143):
            assert oracle.query(0, target, failed) == pytest.approx(
                shortest_distance(small_road, 0, target, failed)
            )

    def test_explicit_landmarks(self, small_road):
        oracle = AStarOracle(small_road, landmarks=[0, 143])
        assert oracle.landmarks.landmarks == (0, 143)

    def test_prunes_vs_dijkstra(self, small_road):
        astar = AStarOracle(small_road, num_landmarks=6, seed=1)
        dijkstra = DijkstraOracle(small_road)
        a = astar.query_detailed(0, 143)
        d = dijkstra.query_detailed(0, 143)
        assert a.stats.graph_settled <= d.stats.graph_settled

    def test_index_entries(self, small_road):
        oracle = AStarOracle(small_road, num_landmarks=4, seed=1)
        assert oracle.index_entries()["landmark_entries"] > 0


class TestFDDO:
    def build(self, graph, count=8):
        return FDDOOracle(graph, num_landmarks=count, seed=1)

    def test_marked_approximate(self, small_road):
        assert not self.build(small_road).exact

    def test_never_underestimates(self, small_road):
        oracle = self.build(small_road)
        for s, t in [(0, 143), (12, 95), (100, 3)]:
            estimate = oracle.query(s, t)
            true = shortest_distance(small_road, s, t)
            assert estimate >= true - 1e-9

    def test_exact_through_landmark(self, small_road):
        # Querying from a landmark is exact: d(l, t) is stored.
        oracle = self.build(small_road)
        landmark = oracle.landmark_nodes[0]
        assert oracle.query(landmark, 143) == pytest.approx(
            shortest_distance(small_road, landmark, 143)
        )

    def test_update_and_rollback(self, small_road):
        """Trees are updated for the query, then restored afterwards."""
        oracle = self.build(small_road)
        snapshots = [dict(t.dist) for t in oracle.forward_trees]
        failed = {(0, 1), (10, 11), (50, 51), (90, 91)}
        result = oracle.query_detailed(0, 143, failed)
        assert result.distance >= shortest_distance(
            small_road, 0, 143, failed
        ) - 1e-9
        for tree, before in zip(oracle.forward_trees, snapshots):
            assert tree.dist == before

    def test_failures_respected(self, small_road):
        """Post-update estimates are valid for the failed graph too."""
        oracle = self.build(small_road, count=12)
        failed = random_failures_from(small_road, 4, 10)
        for s, t in [(0, 143), (20, 77)]:
            estimate = oracle.query(s, t, failed)
            true = shortest_distance(small_road, s, t, failed)
            assert estimate >= true - 1e-9

    def test_recompute_time_counted(self, small_road):
        oracle = self.build(small_road)
        # Fail edges guaranteed to be tree edges of some landmark tree.
        tree = oracle.forward_trees[0]
        edge = next(iter(tree.tree_edges()))
        result = oracle.query_detailed(0, 143, {edge})
        assert result.stats.recompute_seconds > 0
        assert result.stats.affected_count >= 1

    def test_index_entries(self, small_road):
        entries = self.build(small_road).index_entries()
        assert entries["landmark_tree_entries"] > 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_fddo_upper_bound_random(seed, fail_seed, s, t):
    """FDDO estimates are distances of real surviving paths."""
    graph = random_graph(seed)
    oracle = FDDOOracle(graph, num_landmarks=6, seed=seed)
    failed = random_failures_from(graph, fail_seed, 6)
    true = shortest_distance(graph, s, t, failed)
    estimate = oracle.query(s, t, failed)
    assert estimate >= true - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_astar_oracle_exact_random(seed, fail_seed, s, t):
    graph = random_graph(seed)
    oracle = AStarOracle(graph, num_landmarks=3, seed=seed)
    failed = random_failures_from(graph, fail_seed, 6)
    assert oracle.query(s, t, failed) == pytest.approx(
        shortest_distance(graph, s, t, failed)
    )
