"""Table 6 — index sizes of DISO, ADISO, FDDO, and A*.

The paper reports preprocessed index sizes in MB.  Expected shape:
DISO smallest (overlay + trees + inverted index), A* next (landmark
distance tables), ADISO = DISO + landmark tables, FDDO largest
(50 full landmark trees in both directions).
"""

from __future__ import annotations

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.fddo import FDDOOracle
from repro.experiments.report import render_table
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.sizing import index_size_megabytes
from repro.workload.datasets import DATASETS, load_dataset


def run_table6(
    datasets: tuple[str, ...] = ("NY", "DBLP"),
    scale: float = 0.5,
    seed: int = 7,
    fddo_landmarks: int = 20,
) -> list[dict[str, object]]:
    """Reproduce Table 6 rows: index size (MB) per dataset x method."""
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        oracles = {
            "DISO": DISO(graph, tau=spec.tau_diso, theta=spec.theta),
            "ADISO": ADISO(
                graph,
                tau=spec.tau_adiso,
                theta=spec.theta,
                alpha=spec.alpha,
                seed=seed,
            ),
            "FDDO": FDDOOracle(
                graph, num_landmarks=fddo_landmarks, seed=seed
            ),
            "A*": AStarOracle(graph, alpha=spec.alpha, seed=seed),
        }
        for method, oracle in oracles.items():
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "size_mb": index_size_megabytes(oracle),
                }
            )
    return rows


def format_table6(rows: list[dict[str, object]]) -> str:
    """Render :func:`run_table6` rows like the paper's Table 6."""
    display = [
        {
            "dataset": row["dataset"],
            "method": row["method"],
            "size": f"{row['size_mb']:.3f}",
        }
        for row in rows
    ]
    return render_table(
        display,
        columns=[
            ("dataset", "Data"),
            ("method", "Method"),
            ("size", "Index size (MB)"),
        ],
        title="Table 6: index sizes",
    )
