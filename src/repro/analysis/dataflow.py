"""Inter-procedural dataflow: the DSO5xx rule family.

This is the layer the per-file rules provably cannot be: a taint
engine that evaluates the abstract terms recorded in function
summaries (:mod:`repro.analysis.summaries`) against the project call
graph (:mod:`repro.analysis.callgraph`).  Three taints propagate:

* **unordered** — the value is a set/frozenset; its iteration order is
  hash order.
* **tainted** — the value is *ordered data whose order came from
  iterating an unordered container* (``list(s)``, a comprehension over
  a set parameter).  Serializing it bakes nondeterminism into bytes.
* **sentinel** — the value may be the NaN ``QUERY_ERROR`` sentinel.
* **unpicklable** — the value (or, transitively, one of its
  attributes) is something pickle rejects.

Rules
-----
``DSO501``
    An unordered or order-tainted value reaches a serialization sink
    (``json.dump``, ``struct.pack``, ``handle.write``, ...) through
    *any* call chain — including "helper A iterates the set, caller B
    two files away serializes A's return value", which no single-file
    rule can see.  Also fires at a call site that passes an unordered
    value into a parameter the callee (transitively) serializes.
``DSO502``
    A value crossing a process boundary (``conn.send``, pool dispatch,
    ``Process(args=...)``) whose type summary is transitively
    unpicklable — e.g. an instance of a class holding a
    ``threading.Lock`` three attribute hops down.  Classes defining
    ``__getstate__``/``__reduce__`` are exempt by contract.
``DSO503``
    A NaN-sentinel value (the return of a function that can return
    ``QUERY_ERROR``/``float("nan")``) flows into arithmetic or an
    ordering comparison in *another* function without an
    ``math.isnan`` guard — NaN poisons every sum silently and every
    ``<`` is constant-False.

Soundness posture: unresolved calls evaluate to no taints, so the
engine is quiet on code it cannot see — identical philosophy to the
per-file inference.  Evaluation is memoized per run and guarded
against recursion, so the fixpoint terminates on any call graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.callgraph import Project
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

#: Maximum call-chain depth one evaluation may descend.
_MAX_DEPTH = 12

_ORDER_TAINTS = frozenset({"unordered", "tainted"})

#: Dataflow rule ids, their severities and catalogue summaries.
DATAFLOW_RULES: dict[str, dict[str, str]] = {
    "DSO501": {
        "severity": Severity.ERROR,
        "summary": (
            "unordered iteration order reaches a serialization sink "
            "across call boundaries"
        ),
    },
    "DSO502": {
        "severity": Severity.ERROR,
        "summary": (
            "transitively unpicklable value crosses a process boundary"
        ),
    },
    "DSO503": {
        "severity": Severity.ERROR,
        "summary": (
            "NaN-sentinel return value used in arithmetic/comparison "
            "without an isnan guard"
        ),
    },
}


@dataclass
class _Eval:
    """One evaluated term: its taints and a human-readable origin."""

    tags: frozenset[str]
    origin: str = ""

    def has(self, *tags: str) -> bool:
        return any(tag in self.tags for tag in tags)


_CLEAN_EVAL = _Eval(frozenset())


class DataflowEngine:
    """Evaluates summary terms over the project graph; emits findings."""

    def __init__(self, project: Project, config: LintConfig) -> None:
        self.project = project
        self.config = config
        self._memo: dict[str, _Eval] = {}
        self._class_memo: dict[str, bool] = {}
        self._sink_params: dict[str, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # Term evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        term: dict,
        module: ModuleSummary,
        fn: FunctionSummary | None,
        binding: dict[int, _Eval] | None = None,
        depth: int = 0,
        stack: frozenset[str] = frozenset(),
    ) -> _Eval:
        kind = term.get("k", "clean")
        if kind == "clean":
            return _CLEAN_EVAL
        if kind == "set":
            return _Eval(frozenset({"unordered"}))
        if kind == "sentinel":
            return _Eval(frozenset({"sentinel"}))
        if kind == "unpicklable":
            return _Eval(
                frozenset({"unpicklable"}), term.get("why", "unpicklable")
            )
        if kind == "cap":
            inner = self.evaluate(
                term["of"], module, fn, binding, depth, stack
            )
            if inner.has(*_ORDER_TAINTS):
                return _Eval(frozenset({"tainted"}), inner.origin)
            return _CLEAN_EVAL
        if kind == "tuple":
            tags: set[str] = set()
            origin = ""
            for item in term.get("items", ()):
                result = self.evaluate(
                    item, module, fn, binding, depth, stack
                )
                tags.update(result.tags)
                origin = origin or result.origin
            return _Eval(frozenset(tags), origin)
        if kind == "param":
            index = term.get("i", -1)
            if binding is not None and index in binding:
                return binding[index]
            if fn is not None and index in fn.set_params:
                return _Eval(
                    frozenset({"unordered"}),
                    f"set-annotated parameter of {fn.qualname}()",
                )
            return _CLEAN_EVAL
        if kind == "call":
            return self._evaluate_call(
                term, module, fn, binding, depth, stack
            )
        return _CLEAN_EVAL

    def _evaluate_call(
        self,
        term: dict,
        module: ModuleSummary,
        fn: FunctionSummary | None,
        binding: dict[int, _Eval] | None,
        depth: int,
        stack: frozenset[str],
    ) -> _Eval:
        if depth >= _MAX_DEPTH:
            return _CLEAN_EVAL
        enclosing_class = _enclosing_class(fn)
        resolved = self.project.resolve(
            module.module, term["fn"], cls=enclosing_class
        )
        if resolved is None:
            return _CLEAN_EVAL
        kind, owner, symbol = resolved
        if kind == "class":
            if self.class_unpicklable(owner, symbol):
                return _Eval(
                    frozenset({"unpicklable"}),
                    f"instance of {symbol.name} [{owner.path}:"
                    f"{symbol.line}]",
                )
            return _CLEAN_EVAL
        callee: FunctionSummary = symbol
        args = [
            self.evaluate(arg, module, fn, binding, depth, stack)
            for arg in term.get("args", ())
        ]
        offset = 1 if callee.is_method else 0
        callee_binding = {
            position + offset: value
            for position, value in enumerate(args)
            if value.tags
        }
        frame = (
            f"{owner.module}:{callee.qualname}:"
            f"{','.join(sorted(str(k) for k in callee_binding))}"
        )
        if frame in stack:
            return _CLEAN_EVAL
        stack = stack | {frame}
        memo_key = frame + "|" + ",".join(
            sorted(
                f"{index}={'+'.join(sorted(value.tags))}"
                for index, value in callee_binding.items()
            )
        )
        if memo_key in self._memo:
            return self._memo[memo_key]
        tags: set[str] = set()
        origin = ""
        for ret in callee.returns:
            result = self.evaluate(
                ret, owner, callee, callee_binding, depth + 1, stack
            )
            tags.update(result.tags)
            origin = origin or result.origin
        note = origin or (
            f"via {callee.qualname}() [{owner.path}:{callee.line}]"
        )
        evaluated = _Eval(frozenset(tags), note if tags else "")
        self._memo[memo_key] = evaluated
        return evaluated

    # ------------------------------------------------------------------
    # Class picklability
    # ------------------------------------------------------------------
    def class_unpicklable(
        self,
        owner: ModuleSummary,
        klass: ClassSummary,
        stack: frozenset[str] = frozenset(),
    ) -> bool:
        key = f"{owner.module}:{klass.name}"
        if key in self._class_memo:
            return self._class_memo[key]
        if key in stack or klass.custom_pickle:
            return False
        stack = stack | {key}
        verdict = False
        init = self.project.init_of(owner, klass)
        for term in klass.attrs.values():
            result = self.evaluate(term, owner, init, None, 0)
            if result.has("unpicklable"):
                verdict = True
                break
            if term.get("k") == "call" and not verdict:
                resolved = self.project.resolve(owner.module, term["fn"])
                if resolved is not None and resolved[0] == "class":
                    if self.class_unpicklable(
                        resolved[1], resolved[2], stack
                    ):
                        verdict = True
                        break
        self._class_memo[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # Sink-parameter fixpoint (params the callee transitively serializes)
    # ------------------------------------------------------------------
    def _function_id(
        self, module: ModuleSummary, fn: FunctionSummary
    ) -> str:
        return f"{module.module}:{fn.qualname}"

    def compute_sink_params(self) -> None:
        """Fixpoint: which parameters reach a serialization sink.

        Parameter ``i`` of ``f`` is a *sink param* when an unordered
        value bound to it would arrive (order-intact or captured) at a
        serialization sink inside ``f`` — directly, or by being passed
        onward into a sink param of another function.
        """
        for module in self._modules():
            for fn in module.functions.values():
                self._sink_params[self._function_id(module, fn)] = (
                    frozenset()
                )
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for module in self._modules():
                for fn in module.functions.values():
                    fid = self._function_id(module, fn)
                    known = self._sink_params[fid]
                    grown = set(known)
                    for index in range(len(fn.params)):
                        if index in grown:
                            continue
                        if self._param_reaches_sink(module, fn, index):
                            grown.add(index)
                    if len(grown) != len(known):
                        self._sink_params[fid] = frozenset(grown)
                        changed = True
        # A fixpoint round invalidates call memos (sink params are not
        # part of the memo key, but findings below re-evaluate terms).

    def _param_reaches_sink(
        self, module: ModuleSummary, fn: FunctionSummary, index: int
    ) -> bool:
        # Origin-free so memoized call evaluations carry the callee
        # frame ("via f() [path:line]") rather than a probe marker.
        probe = {index: _Eval(frozenset({"unordered"}))}
        for sink in fn.sinks:
            for arg in sink["args"]:
                with_taint = self.evaluate(arg, module, fn, probe)
                without = self.evaluate(arg, module, fn, {})
                if with_taint.has(*_ORDER_TAINTS) and not without.has(
                    *_ORDER_TAINTS
                ):
                    return True
        for call in fn.calls:
            resolved = self.project.resolve(
                module.module, call["fn"], cls=_enclosing_class(fn)
            )
            if resolved is None or resolved[0] != "func":
                continue
            _, owner, callee = resolved
            callee_sinks = self._sink_params.get(
                self._function_id(owner, callee), frozenset()
            )
            if not callee_sinks:
                continue
            offset = 1 if callee.is_method else 0
            for position, arg in enumerate(call["args"]):
                if position + offset not in callee_sinks:
                    continue
                with_taint = self.evaluate(arg, module, fn, probe)
                without = self.evaluate(arg, module, fn, {})
                if with_taint.has(*_ORDER_TAINTS) and not without.has(
                    *_ORDER_TAINTS
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # Finding generation
    # ------------------------------------------------------------------
    def _modules(self) -> list[ModuleSummary]:
        return [
            self.modules_by_name[name]
            for name in sorted(self.modules_by_name)
        ]

    @property
    def modules_by_name(self) -> dict[str, ModuleSummary]:
        return self.project.modules

    def _emit(
        self,
        findings: list[Finding],
        rule_id: str,
        module: ModuleSummary,
        line: int,
        col: int,
        message: str,
    ) -> None:
        profile = self.config.profile_for(module.path)
        if not profile.rule_enabled(rule_id):
            return
        findings.append(
            Finding(
                rule_id=rule_id,
                severity=DATAFLOW_RULES[rule_id]["severity"],
                path=module.path,
                line=line,
                col=col,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        """Evaluate every sink/dispatch/arith site; return findings."""
        self.compute_sink_params()
        findings: list[Finding] = []
        for module in self._modules():
            for fn in module.functions.values():
                self._check_sinks(findings, module, fn)
                self._check_call_sites(findings, module, fn)
                self._check_dispatches(findings, module, fn)
                self._check_arith(findings, module, fn)
        return findings

    def _check_sinks(
        self,
        findings: list[Finding],
        module: ModuleSummary,
        fn: FunctionSummary,
    ) -> None:
        for sink in fn.sinks:
            for arg in sink["args"]:
                result = self.evaluate(arg, module, fn, None)
                if not result.has(*_ORDER_TAINTS):
                    continue
                what = (
                    "set iteration order"
                    if result.has("tainted")
                    else "an unordered set"
                )
                origin = f" ({result.origin})" if result.origin else ""
                self._emit(
                    findings,
                    "DSO501",
                    module,
                    sink["line"],
                    sink["col"],
                    f"{what} reaches serialization sink "
                    f"{sink['fn']}(){origin}; sort before capture or "
                    "suppress with a justification",
                )
                break

    def _check_call_sites(
        self,
        findings: list[Finding],
        module: ModuleSummary,
        fn: FunctionSummary,
    ) -> None:
        for call in fn.calls:
            resolved = self.project.resolve(
                module.module, call["fn"], cls=_enclosing_class(fn)
            )
            if resolved is None or resolved[0] != "func":
                continue
            _, owner, callee = resolved
            if owner.path == module.path and callee.qualname == fn.qualname:
                continue
            callee_sinks = self._sink_params.get(
                self._function_id(owner, callee), frozenset()
            )
            if not callee_sinks:
                continue
            offset = 1 if callee.is_method else 0
            for position, arg in enumerate(call["args"]):
                if position + offset not in callee_sinks:
                    continue
                result = self.evaluate(arg, module, fn, None)
                if not result.has(*_ORDER_TAINTS):
                    continue
                self._emit(
                    findings,
                    "DSO501",
                    module,
                    call["line"],
                    call["col"],
                    f"unordered value passed to {callee.qualname}() "
                    f"[{owner.path}:{callee.line}], which serializes "
                    "its iteration order; pass sorted(...) instead",
                )
                break

    def _check_dispatches(
        self,
        findings: list[Finding],
        module: ModuleSummary,
        fn: FunctionSummary,
    ) -> None:
        for dispatch in fn.dispatches:
            for arg in dispatch["args"]:
                result = self.evaluate(arg, module, fn, None)
                if not result.has("unpicklable"):
                    continue
                origin = f" ({result.origin})" if result.origin else ""
                self._emit(
                    findings,
                    "DSO502",
                    module,
                    dispatch["line"],
                    dispatch["col"],
                    "transitively unpicklable value crosses a process "
                    f"boundary via {dispatch['fn']}(){origin}; works "
                    "under fork, breaks under spawn — ship a picklable "
                    "handle (spec/state dict) instead",
                )
                break

    def _check_arith(
        self,
        findings: list[Finding],
        module: ModuleSummary,
        fn: FunctionSummary,
    ) -> None:
        for use in fn.arith:
            result = self.evaluate(use["term"], module, fn, None)
            if not result.has("sentinel"):
                continue
            origin = f" ({result.origin})" if result.origin else ""
            self._emit(
                findings,
                "DSO503",
                module,
                use["line"],
                use["col"],
                f"{use['name']!r} may hold the NaN error "
                f"sentinel{origin} and flows into arithmetic/"
                "comparison; guard with math.isnan(...) first",
            )


def _enclosing_class(fn: FunctionSummary | None) -> str | None:
    if fn is not None and fn.is_method and "." in fn.qualname:
        return fn.qualname.rsplit(".", 1)[0]
    return None


def run_dataflow(
    project: Project, config: LintConfig
) -> list[Finding]:
    """The DSO5xx pass: evaluate the project, return raw findings."""
    return DataflowEngine(project, config).run()
