"""Hierarchical DISO: a multi-level distance-graph hierarchy.

ADISO-P already builds a second overlay ``H`` — a distance graph *of*
the distance graph.  This module generalises that to an arbitrary
number of levels, the natural multi-level TNR the related work (highway
hierarchies, multi-level overlay graphs) builds and the paper's
construction supports out of the box:

* level 0 is the input graph ``G``;
* level ``i`` is the distance graph of level ``i-1`` over a k-path
  cover of its nodes, built with the same bounded-Dijkstra machinery —
  so ``cover_L ⊆ ... ⊆ cover_1`` and each level's edges are exact
  transit-free distances of the level below.

**Failure handling** stacks the paper's localisation level by level:

* level-1 affected nodes come from the inverted tree index over ``G``
  edges, exactly as in DISO, and their out-weights are lazily repaired
  from their bounded trees;
* a level-``i`` node (``i ≥ 2``) is *affected* when its level-``i``
  bounded tree (a tree over level-``i-1`` edges) contains any edge
  whose tail is affected at level ``i-1`` — those are precisely the
  lower-level weights that may have changed.

**Query algorithm** is DISO's with the higher levels as accelerators:
the overlay search relaxes, for each popped node, its level-1 edges
(repaired when affected — this alone is already exact, by Theorem 1's
argument) *plus* the edges of every higher level at which the node is
unaffected (valid real-path distances under ``F``, so they can only
tighten labels, never break exactness).  Affected higher-level edges
are simply skipped — no recomputation above level 1 is ever needed.
"""

from __future__ import annotations

import time

from repro.graph.digraph import DiGraph, Edge
from repro.cover.isc import isc_path_cover
from repro.oracle.base import QueryStats
from repro.oracle.diso import DISO
from repro.overlay.distance_graph import DistanceGraph, build_distance_graph


class _Level:
    """One overlay level above the base DISO index."""

    __slots__ = ("overlay", "node_to_roots")

    def __init__(
        self,
        overlay: DistanceGraph,
        node_to_roots: dict[int, set[int]],
    ) -> None:
        self.overlay = overlay
        # Maps a lower-level node u to the roots of this level's bounded
        # trees that contain an edge with tail u — the trees (and hence
        # this level's out-edges) invalidated when u's lower-level
        # weights change.
        self.node_to_roots = node_to_roots


class HierarchicalDISO(DISO):
    """DISO with a multi-level distance-graph hierarchy.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    tau, theta, transit:
        Level-1 parameters, as in :class:`DISO`.
    extra_level_taus:
        ISC rounds for each additional level, applied to the previous
        level's overlay with ``theta = infinity`` (node reduction, as
        ADISO-P does for ``H``).  Levels whose cover would come out
        empty are skipped.
    landmark_table:
        Optional :class:`repro.landmarks.LandmarkTable`.  Without goal
        direction, long shortcuts tighten labels but cannot *prune*: a
        Dijkstra settles every node closer than the answer regardless.
        With a landmark table the overlay search runs in A* order and
        the shortcuts actually skip territory (the ADISO-P effect).
    """

    name = "DISO-H"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
        extra_level_taus: tuple[int, ...] = (3, 3),
        landmark_table=None,
    ) -> None:
        super().__init__(graph, tau=tau, theta=theta, transit=transit)
        self.landmarks = landmark_table
        started = time.perf_counter()
        self.levels: list[_Level] = []
        current = self.distance_graph.graph
        for level_tau in extra_level_taus:
            cover = isc_path_cover(
                current, tau=level_tau, theta=float("inf")
            ).cover
            if not cover or len(cover) >= current.number_of_nodes():
                break
            overlay, trees = build_distance_graph(current, cover)
            node_to_roots: dict[int, set[int]] = {}
            for root, tree in trees.items():
                for parent, _child in tree.tree_edges():
                    node_to_roots.setdefault(parent, set()).add(root)
                # The root's own out-weights depend on the root's
                # lower-level edges as well.
                node_to_roots.setdefault(root, set()).add(root)
            self.levels.append(_Level(overlay, node_to_roots))
            current = overlay.graph
        self.preprocess_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Failure propagation across levels
    # ------------------------------------------------------------------
    def _affected_by_level(
        self,
        failed: frozenset[Edge],
        stats: QueryStats,
    ) -> list[set[int]]:
        """Affected sets per level: index 0 = level 1 (base DISO)."""
        per_level: list[set[int]] = [
            self.inverted_index.affected_nodes(failed)
        ]
        for level in self.levels:
            below = per_level[-1]
            affected: set[int] = set()
            if below:
                node_to_roots = level.node_to_roots
                for node in below:
                    roots = node_to_roots.get(node)
                    if roots:
                        affected.update(roots)
            per_level.append(affected)
        return per_level

    # ------------------------------------------------------------------
    # Overlay search with hierarchical shortcuts
    # ------------------------------------------------------------------
    def _overlay_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed: frozenset[Edge],
        affected: set[int],
        stats: QueryStats,
        upper_bound: float,
        target: int | None = None,
    ) -> float:
        from heapq import heappop, heappush

        INFINITY = float("inf")
        per_level = self._affected_by_level(failed, stats)
        # ``affected`` (level 1) was already computed by query_detailed;
        # per_level[0] recomputes it identically — keep the caller's.
        per_level[0] = affected

        if self.landmarks is not None and target is not None:
            heuristic = self.landmarks.heuristic_to(target)
        else:
            def heuristic(_node: int) -> float:
                return 0.0

        best = upper_bound
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for node, d in seeds.items():
            dist[node] = d
            heappush(heap, (d + heuristic(node), node))
        settled: set[int] = set()
        overlay_edges = self.distance_graph.graph
        recompute_seconds = 0.0
        recomputed_nodes = 0

        while heap:
            cost, node = heappop(heap)
            if node in settled:
                continue
            if cost >= best:
                # cost = d + h(node) lower-bounds any completion through
                # this or any remaining node (consistent ALT bounds).
                break
            settled.add(node)
            d = dist[node]
            tail_distance = into_target.get(node)
            if tail_distance is not None and d + tail_distance < best:
                best = d + tail_distance

            # Level-1 edges: exact machinery of DISO.
            if node in per_level[0]:
                tick = time.perf_counter()
                out_weights = self._recomputed_weights(node, failed)
                recompute_seconds += time.perf_counter() - tick
                recomputed_nodes += 1
            else:
                out_weights = overlay_edges.successors(node)
            for head, weight in out_weights.items():
                if head in settled or head == node:
                    continue
                candidate = d + weight
                if candidate < dist.get(head, INFINITY):
                    dist[head] = candidate
                    heappush(heap, (candidate + heuristic(head), head))

            # Higher-level shortcuts where this node is unaffected.
            for index, level in enumerate(self.levels):
                if node not in level.overlay.transit:
                    break  # covers are nested; no higher membership
                if node in per_level[index + 1]:
                    continue  # stale weights at this level: skip
                for head, weight in level.overlay.out_edges(node).items():
                    if head in settled or head == node:
                        continue
                    candidate = d + weight
                    if candidate < dist.get(head, INFINITY):
                        dist[head] = candidate
                        heappush(heap, (candidate + heuristic(head), head))

        stats.overlay_settled += len(settled)
        stats.recompute_seconds += recompute_seconds
        stats.recomputed_nodes += recomputed_nodes
        return best

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        entries = super().index_entries()
        entries["h_overlay_nodes"] = sum(
            level.overlay.num_nodes for level in self.levels
        )
        entries["h_overlay_edges"] = sum(
            level.overlay.num_edges for level in self.levels
        )
        entries["h_tree_nodes"] = sum(
            len(roots)
            for level in self.levels
            for roots in level.node_to_roots.values()
        )
        return entries

    @property
    def level_count(self) -> int:
        """Total levels including the base distance graph."""
        return 1 + len(self.levels)
