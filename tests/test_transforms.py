"""Tests for graph transforms: symmetrisation, SCCs, weight assignment."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import road_network
from repro.graph.transforms import (
    assign_uniform_weights,
    induced_weight_map,
    is_strongly_connected,
    largest_strongly_connected_subgraph,
    remove_self_loops,
    scale_weights,
    strongly_connected_components,
    symmetrize,
    without_edges,
)


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        g = DiGraph([(0, 1, 2.0)])
        sym = symmetrize(g)
        assert sym.weight(1, 0) == 2.0
        assert sym.weight(0, 1) == 2.0

    def test_keeps_minimum_when_both_exist(self):
        g = DiGraph([(0, 1, 2.0), (1, 0, 5.0)])
        sym = symmetrize(g)
        assert sym.weight(1, 0) == 2.0

    def test_original_untouched(self):
        g = DiGraph([(0, 1, 2.0)])
        symmetrize(g)
        assert not g.has_edge(1, 0)


class TestWeights:
    def test_uniform_weights_in_range(self, small_road):
        weighted = assign_uniform_weights(small_road, seed=1)
        assert all(0 < w <= 1.0 for _, _, w in weighted.edges())
        assert weighted.number_of_edges() == small_road.number_of_edges()

    def test_uniform_weights_deterministic(self, small_road):
        a = assign_uniform_weights(small_road, seed=1)
        b = assign_uniform_weights(small_road, seed=1)
        assert a == b

    def test_scale_weights(self):
        g = DiGraph([(0, 1, 2.0)])
        assert scale_weights(g, 3.0).weight(0, 1) == 6.0

    def test_scale_negative_raises(self):
        with pytest.raises(ValueError):
            scale_weights(DiGraph(), -1.0)

    def test_induced_weight_map(self):
        g = DiGraph([(0, 1, 2.0), (1, 2, 3.0)])
        assert induced_weight_map(g) == {(0, 1): 2.0, (1, 2): 3.0}


class TestSelfLoops:
    def test_removed(self):
        g = DiGraph([(0, 0, 1.0), (0, 1, 1.0)])
        cleaned = remove_self_loops(g)
        assert not cleaned.has_edge(0, 0)
        assert cleaned.has_edge(0, 1)


class TestSCC:
    def test_single_component(self, ring):
        components = strongly_connected_components(ring)
        assert len(components) == 1
        assert components[0] == set(ring.nodes())

    def test_two_components(self):
        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
        components = strongly_connected_components(g)
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]

    def test_singletons_in_dag(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        components = strongly_connected_components(g)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_largest_scc_subgraph(self):
        g = DiGraph(
            [
                (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),  # triangle
                (2, 3, 1.0),  # tail
            ]
        )
        sub = largest_strongly_connected_subgraph(g)
        assert set(sub.nodes()) == {0, 1, 2}
        assert is_strongly_connected(sub)

    def test_empty_graph(self):
        assert not is_strongly_connected(DiGraph())
        assert largest_strongly_connected_subgraph(DiGraph()).number_of_nodes() == 0

    def test_deep_graph_no_recursion_error(self):
        # A long directed cycle would blow a recursive Tarjan.
        g = DiGraph()
        n = 5000
        for i in range(n):
            g.add_edge(i, (i + 1) % n, 1.0)
        components = strongly_connected_components(g)
        assert len(components) == 1

    def test_road_network_strongly_connected(self):
        assert is_strongly_connected(road_network(9, 9, seed=0))


class TestWithoutEdges:
    def test_removes_present_edges(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        cut = without_edges(g, [(0, 1)])
        assert not cut.has_edge(0, 1)
        assert cut.has_edge(1, 2)

    def test_missing_edges_ignored(self):
        g = DiGraph([(0, 1, 1.0)])
        cut = without_edges(g, [(5, 6)])
        assert cut == g
