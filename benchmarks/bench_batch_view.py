"""Bench: shared failure-state batches (Examples 2-3 serving pattern).

Many queries against one system-wide failure state: FailureStateView
hoists the affected-set computation and memoizes per-affected-node
recomputation across the batch.  Compared against issuing the same
queries individually through plain DISO.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.oracle.batch import FailureStateView
from repro.oracle.diso import DISO

from bench_util import SEED, dataset, write_result


@lru_cache(maxsize=None)
def setup():
    graph = dataset("NY")
    oracle = DISO(graph, tau=4, theta=1.0)
    rng = random.Random(SEED)
    edges = sorted(graph.edge_set())
    failed = frozenset(rng.sample(edges, 20))
    nodes = sorted(graph.nodes())
    pairs = tuple(
        tuple(rng.sample(nodes, 2)) for _ in range(30)
    )
    return graph, oracle, failed, pairs


def test_individual_queries(benchmark):
    _, oracle, failed, pairs = setup()

    def run():
        return sum(
            d for s, t in pairs
            if (d := oracle.query(s, t, failed)) != float("inf")
        )

    checksum = benchmark(run)
    assert checksum > 0


def test_failure_state_view(benchmark):
    _, oracle, failed, pairs = setup()

    def run():
        view = FailureStateView(oracle, failed)
        return sum(
            d for d in view.query_many(list(pairs))
            if d != float("inf")
        )

    checksum = benchmark(run)
    assert checksum > 0


def test_view_matches_individual(benchmark):
    _, oracle, failed, pairs = setup()

    def compare():
        view = FailureStateView(oracle, failed)
        mismatches = 0
        for s, t in pairs:
            if abs(view.query(s, t) - oracle.query(s, t, failed)) > 1e-9:
                mismatches += 1
        return mismatches, view.memoized_nodes, len(view.affected)

    mismatches, memoized, affected = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    write_result(
        "batch_view",
        (
            "FailureStateView vs per-query DISO (30 queries, 20 failures)\n"
            f"mismatches: {mismatches}\n"
            f"affected transit nodes: {affected}\n"
            f"recomputed once across the whole batch: {memoized}"
        ),
    )
    assert mismatches == 0
    assert memoized <= affected
