"""Lint engine: parse files, run rules, apply suppressions.

Suppression grammar (checked per physical line, so it works without a
tokenizer pass)::

    expr()  # dsolint: disable=DSO101 -- why order cannot matter here
    # dsolint: disable-next=DSO102,DSO301 -- reason (applies to line+1)
    # dsolint: disable-file=DSO104 -- reason (whole file, any position)

The ``--`` justification is part of the contract: a suppression
*without* one still silences its target, but the engine then emits
``DSO001 suppression lacks a justification`` at the same line — the
gate stays red until the waiver says why.  This keeps "fixed" and
"consciously waived" the only two terminal states a finding can reach.

Findings attach to the first physical line of the offending node, so
for a multi-line comprehension the trailing comment goes on the line
where the expression starts.

Two passes
----------
:func:`lint_source` is the per-file pass: the DSO1xx–DSO4xx idiom
rules plus the DSO6xx protocol machines, all of which see one module.
:func:`lint_paths` runs that pass over every file, then stitches the
per-file summaries into a :class:`~repro.analysis.callgraph.Project`
and runs the inter-procedural DSO5xx dataflow pass on top.  Dataflow
findings land at their *sink* and are subject to the sink file's
suppressions — a ``# dsolint: disable=DSO501`` where the bytes are
written silences the finding even when the taint originates in
another file.

With a :class:`~repro.analysis.summaries.SummaryCache`, the per-file
pass is skipped entirely for files whose content hash is unchanged —
only the (cheap) project pass re-runs — which is what makes warm CI
lints and ``--changed`` pre-commit runs fast.
"""

from __future__ import annotations

import ast
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import Project, module_name_for
from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.dataflow import run_dataflow
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import RULES, RuleContext
from repro.analysis.summaries import (
    ModuleSummary,
    SummaryCache,
    content_sha,
    summarize_module,
)

_SUPPRESS_RE = re.compile(
    r"#\s*dsolint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<ids>[A-Z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

META_RULE_ID = "DSO001"

def _finding_order(finding: Finding) -> tuple[int, int, str]:
    return (finding.line, finding.col, finding.rule_id)


@dataclass
class _Suppression:
    line: int  # line the suppression applies to (0 = whole file)
    rule_ids: frozenset[str]
    justification: str | None
    comment_line: int


@dataclass
class LintReport:
    """Everything one lint run learned."""

    findings: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    #: Run statistics: summary-cache hits/misses, changed-mode targets.
    stats: dict = field(default_factory=dict)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files.extend(other.files)


def _parse_suppressions(source: str) -> list[_Suppression]:
    suppressions: list[_Suppression] = []
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = frozenset(
            part.strip()
            for part in match.group("ids").split(",")
            if part.strip()
        )
        if not ids:
            continue
        kind = match.group("kind")
        if kind == "disable-file":
            target = 0
        elif kind == "disable-next":
            target = number + 1
        else:
            target = number
        suppressions.append(
            _Suppression(
                line=target,
                rule_ids=ids,
                justification=match.group("reason"),
                comment_line=number,
            )
        )
    return suppressions


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[_Suppression],
    path: str,
    already_reported: set[int] | None = None,
) -> list[Finding]:
    """Mark suppressed findings; report unjustified suppressions.

    ``already_reported`` carries the comment lines the per-file pass
    already flagged with DSO001, so the project pass does not report
    the same reason-less waiver twice when an inter-procedural finding
    matches it too.
    """
    used_without_reason: dict[int, _Suppression] = {}
    for finding in findings:
        for suppression in suppressions:
            if finding.rule_id not in suppression.rule_ids:
                continue
            if suppression.line not in (0, finding.line):
                continue
            finding.suppressed = True
            finding.justification = suppression.justification
            if suppression.justification is None:
                used_without_reason[suppression.comment_line] = suppression
            break
    for comment_line in sorted(used_without_reason):
        if already_reported is not None and comment_line in already_reported:
            continue
        findings.append(
            Finding(
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                path=path,
                line=comment_line,
                col=0,
                message=(
                    "suppression lacks a justification; append "
                    "'-- <why this is safe>'"
                ),
            )
        )
    return findings


def _analyze_source(
    source: str, path: str, config: LintConfig
) -> tuple[list[Finding], ModuleSummary | None]:
    """One parse: per-file rule findings (raw) plus the module summary."""
    profile = config.profile_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        lineno = getattr(exc, "lineno", None) or 0
        offset = getattr(exc, "offset", None) or 0
        message = getattr(exc, "msg", None) or str(exc)
        return (
            [
                Finding(
                    rule_id="DSO000",
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    col=offset,
                    message=(
                        f"syntax error: {message} "
                        f"({path}:{lineno}:{offset})"
                    ),
                )
            ],
            None,
        )
    context = RuleContext.for_tree(path, tree)
    findings: list[Finding] = []
    for rule_cls in RULES:
        if not profile.rule_enabled(rule_cls.rule_id):
            continue
        findings.extend(rule_cls(context).run())
    summary = summarize_module(tree, path, module_name_for(path))
    return findings, summary


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string as though it lived at ``path``.

    The path drives profile selection (see
    :mod:`repro.analysis.config`), which is what makes this directly
    testable: the same snippet linted under ``src/repro/oracle/x.py``
    and ``src/repro/experiments/x.py`` sees different rule sets.

    This is the *per-file* pass only; the inter-procedural DSO5xx
    rules need a project and run in :func:`lint_paths`.
    """
    config = config or DEFAULT_CONFIG
    findings, _ = _analyze_source(source, path, config)
    findings = _apply_suppressions(
        findings, _parse_suppressions(source), path
    )
    findings.sort(key=_finding_order)
    return findings


def _python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # Deduplicate while keeping the sorted-walk order deterministic.
    unique: dict[str, Path] = {}
    for path in files:
        unique[str(path.resolve())] = path
    return [unique[key] for key in sorted(unique)]


def _lint_one_file(
    text: str,
    display: str,
    config: LintConfig,
    store: SummaryCache | None,
) -> tuple[list[Finding], ModuleSummary | None]:
    """Per-file pass with cache: findings (suppressions applied) + summary."""
    sha = content_sha(text)
    if store is not None:
        entry = store.get(display, sha)
        if entry is not None:
            findings = [
                Finding.from_dict(payload) for payload in entry["findings"]
            ]
            summary = (
                ModuleSummary.from_dict(entry["summary"])
                if entry["summary"] is not None
                else None
            )
            return findings, summary
    findings, summary = _analyze_source(text, display, config)
    findings = _apply_suppressions(
        findings, _parse_suppressions(text), display
    )
    findings.sort(key=_finding_order)
    if store is not None:
        store.put(
            display,
            {
                "sha": sha,
                "findings": [finding.to_dict() for finding in findings],
                "summary": (
                    summary.to_dict() if summary is not None else None
                ),
            },
        )
    return findings, summary


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    *,
    cache: SummaryCache | None = None,
    changed: set[str] | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    Runs the per-file pass (cached when ``cache`` is given), then the
    whole-program DSO5xx dataflow pass over the stitched project.

    ``changed`` restricts the *report* to the given posix paths plus
    their reverse import-graph dependents — the summary/project build
    still covers everything (dataflow through an unchanged middleman
    must still be seen), but findings and the file list are filtered
    to the blast radius of the change.
    """
    config = config or DEFAULT_CONFIG
    report = LintReport()
    per_file: dict[str, list[Finding]] = {}
    texts: dict[str, str] = {}
    summaries: list[ModuleSummary] = []
    for path in _python_files(paths):
        text = path.read_text(encoding="utf-8")
        display = path.as_posix()
        texts[display] = text
        findings, summary = _lint_one_file(text, display, config, cache)
        report.files.append(display)
        per_file[display] = findings
        if summary is not None:
            summaries.append(summary)
    if cache is not None:
        cache.save()
        report.stats["cache_hits"] = cache.hits
        report.stats["cache_misses"] = cache.misses

    # Project pass: inter-procedural findings, attributed to their
    # sink file and filtered through that file's suppressions.
    project = Project(summaries)
    by_sink: dict[str, list[Finding]] = {}
    for finding in run_dataflow(project, config):
        by_sink.setdefault(finding.path, []).append(finding)
    for display in sorted(by_sink):
        flow_findings = by_sink[display]
        already = {
            finding.line
            for finding in per_file.get(display, [])
            if finding.rule_id == META_RULE_ID
        }
        _apply_suppressions(
            flow_findings,
            _parse_suppressions(texts.get(display, "")),
            display,
            already_reported=already,
        )
        per_file.setdefault(display, []).extend(flow_findings)

    if changed is not None:
        # A changed file the project has no summary for (syntax error)
        # must still be reported, hence the union with the raw set.
        targets = project.dependents_of(changed) | (
            changed & set(report.files)
        )
        report.files = [
            display for display in report.files if display in targets
        ]
        report.stats["changed_targets"] = sorted(targets)
    for display in report.files:
        ordered = sorted(per_file.get(display, []), key=_finding_order)
        report.findings.extend(ordered)
    return report


def changed_files(ref: str, root: str | Path = ".") -> set[str]:
    """Posix paths of files differing from ``ref`` plus untracked files.

    The input set for ``repro-dso lint --changed``; raises
    ``RuntimeError`` when ``git`` cannot resolve the ref so the CLI
    can fail loudly instead of silently linting nothing.
    """
    commands = (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    changed: set[str] = set()
    for command in commands:
        proc = subprocess.run(
            command,
            cwd=str(root),
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(command)} failed: {proc.stderr.strip()}"
            )
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return changed
