"""Bench: endpoint caching on repeated-endpoint workloads (Example 1).

The paper's Example 1 workload — one commuter, many closure variants —
re-uses the same endpoints across queries.  CachingDISO serves the
access-node searches from cache whenever the failures stay outside the
endpoints' bounded regions; this bench quantifies the win over plain
DISO on exactly that workload.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.oracle.caching import CachingDISO
from repro.oracle.diso import DISO

from bench_util import SEED, dataset


@lru_cache(maxsize=None)
def commuter_workload():
    """One (s, t) pair, 30 closure variants away from the endpoints."""
    graph = dataset("NY")
    nodes = sorted(graph.nodes())
    source, target = nodes[0], nodes[-1]
    rng = random.Random(SEED)
    edges = sorted(graph.edge_set())
    # Closures sampled from the middle of the edge list: statistically
    # far from the two corner endpoints of the road grid.
    middle = edges[len(edges) // 3: 2 * len(edges) // 3]
    variants = [frozenset(rng.sample(middle, 4)) for _ in range(30)]
    return graph, source, target, variants


def _run(oracle, source, target, variants) -> float:
    total = 0.0
    for failed in variants:
        distance = oracle.query(source, target, failed)
        if distance != float("inf"):
            total += distance
    return total


def test_plain_diso_repeated_endpoints(benchmark):
    graph, source, target, variants = commuter_workload()
    oracle = DISO(graph, tau=4, theta=1.0)
    checksum = benchmark(_run, oracle, source, target, variants)
    assert checksum > 0


def test_caching_diso_repeated_endpoints(benchmark):
    graph, source, target, variants = commuter_workload()
    oracle = CachingDISO(graph, tau=4, theta=1.0)
    oracle.query(source, target)  # warm
    checksum = benchmark(_run, oracle, source, target, variants)
    assert checksum > 0
    assert oracle.cache_hits > 0


def test_answers_identical(benchmark):
    graph, source, target, variants = commuter_workload()
    plain = DISO(graph, tau=4, theta=1.0)
    cached = CachingDISO(graph, transit=plain.transit)

    def compare():
        mismatches = 0
        for failed in variants:
            a = plain.query(source, target, failed)
            b = cached.query(source, target, failed)
            if abs(a - b) > 1e-9:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert mismatches == 0
