"""Unit tests for the oracle base layer and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    FormatError,
    GraphError,
    NegativeWeightError,
    NodeNotFoundError,
    PreprocessingError,
    QueryError,
    ReproError,
)
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    QueryStats,
    normalize_failures,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            NodeNotFoundError,
            EdgeNotFoundError,
            NegativeWeightError,
            QueryError,
            PreprocessingError,
            FormatError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_node_not_found_attributes(self):
        exc = NodeNotFoundError(42)
        assert exc.node == 42
        assert "42" in str(exc)

    def test_edge_not_found_attributes(self):
        exc = EdgeNotFoundError(1, 2)
        assert (exc.tail, exc.head) == (1, 2)

    def test_negative_weight_attributes(self):
        exc = NegativeWeightError(1, 2, -3.5)
        assert exc.weight == -3.5
        assert "negative" in str(exc)

    def test_format_error_line_number(self):
        exc = FormatError("bad token", line_number=7)
        assert exc.line_number == 7
        assert str(exc).startswith("line 7")

    def test_format_error_without_line(self):
        exc = FormatError("bad token")
        assert exc.line_number is None
        assert str(exc) == "bad token"

    def test_single_guard_catches_everything(self):
        caught = []
        for raiser in (
            lambda: (_ for _ in ()).throw(NodeNotFoundError(1)),
            lambda: (_ for _ in ()).throw(QueryError("x")),
            lambda: (_ for _ in ()).throw(FormatError("y")),
        ):
            try:
                next(raiser())
            except ReproError as exc:
                caught.append(type(exc).__name__)
        assert len(caught) == 3


class TestNormalizeFailures:
    def test_none_is_empty(self):
        assert normalize_failures(None) == frozenset()

    def test_empty_set_is_empty(self):
        assert normalize_failures(set()) == frozenset()

    def test_set_is_frozen(self):
        result = normalize_failures({(1, 2)})
        assert isinstance(result, frozenset)
        assert result == {(1, 2)}

    def test_frozenset_passthrough(self):
        original = frozenset({(1, 2), (3, 4)})
        assert normalize_failures(original) == original

    def test_rejects_non_tuples(self):
        with pytest.raises(QueryError):
            normalize_failures({"not-an-edge"})  # type: ignore[arg-type]

    def test_rejects_wrong_arity(self):
        with pytest.raises(QueryError):
            normalize_failures({(1, 2, 3)})  # type: ignore[arg-type]


class TestQueryResult:
    def test_reachable_flag(self):
        assert QueryResult(distance=1.5).reachable
        assert not QueryResult(distance=INFINITY).reachable

    def test_default_stats(self):
        result = QueryResult(distance=0.0)
        assert result.stats.affected_count == 0
        assert result.stats.used_fallback is False

    def test_stats_fields_independent(self):
        a = QueryResult(distance=0.0)
        b = QueryResult(distance=0.0)
        a.stats.affected_count = 5
        assert b.stats.affected_count == 0


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.access_seconds == 0.0
        assert stats.recompute_seconds == 0.0
        assert stats.overlay_settled == 0
        assert stats.graph_settled == 0
        assert stats.recomputed_nodes == 0
        assert stats.total_seconds == 0.0
