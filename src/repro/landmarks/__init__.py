"""Landmark lower bounds and selection strategies."""

from repro.landmarks.base import LandmarkTable
from repro.landmarks.selection import (
    best_cover_landmarks,
    build_landmarks,
    max_cover_landmarks,
    random_landmarks,
    sls_landmarks,
)

__all__ = [
    "LandmarkTable",
    "build_landmarks",
    "random_landmarks",
    "sls_landmarks",
    "max_cover_landmarks",
    "best_cover_landmarks",
]
