"""Cross-oracle integration tests.

All exact methods must agree with each other on shared query batches,
on both dataset families and under the paper's query generation model;
approximate methods must sandwich between the truth and a sane bound.
Also exercises the no-stall concurrency claim with real threads.
"""

from __future__ import annotations

import threading

import pytest

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_minus import DISOMinus
from repro.oracle.diso_s import DISOSparse
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries


@pytest.fixture(scope="module")
def road():
    return load_dataset("NY", scale=0.3, seed=7)


@pytest.fixture(scope="module")
def social():
    return load_dataset("DBLP", scale=0.3, seed=7)


@pytest.fixture(scope="module")
def road_queries(road):
    return generate_queries(road, 12, f_gen=4, p=0.002, seed=11)


@pytest.fixture(scope="module")
def social_queries(social):
    return generate_queries(social, 12, f_gen=4, p=0.002, seed=11)


class TestExactAgreementRoad:
    def test_all_exact_methods_agree(self, road, road_queries):
        reference = DijkstraOracle(road)
        oracles = [
            DISO(road, tau=3, theta=1.0),
            DISOMinus(road, tau=3, theta=1.0),
            ADISO(road, tau=3, theta=1.0, num_landmarks=5, seed=1),
            AStarOracle(road, num_landmarks=5, seed=1),
        ]
        for query in road_queries:
            expected = reference.query(query.source, query.target, query.failed)
            for oracle in oracles:
                got = oracle.query(query.source, query.target, query.failed)
                assert got == pytest.approx(expected), oracle.name


class TestExactAgreementSocial:
    def test_all_exact_methods_agree(self, social, social_queries):
        reference = DijkstraOracle(social)
        oracles = [
            DISO(social, tau=3, theta=16.0),
            ADISO(social, tau=2, theta=16.0, num_landmarks=5, seed=1),
        ]
        for query in social_queries:
            expected = reference.query(query.source, query.target, query.failed)
            for oracle in oracles:
                got = oracle.query(query.source, query.target, query.failed)
                assert got == pytest.approx(expected), oracle.name


class TestApproximateSandwich:
    def test_adiso_p_road(self, road, road_queries):
        reference = DijkstraOracle(road)
        oracle = ADISOPartial(
            road, tau=3, theta=1.0, tau_h=2, num_landmarks=5, seed=1
        )
        for query in road_queries:
            truth = reference.query(query.source, query.target, query.failed)
            estimate = oracle.query(query.source, query.target, query.failed)
            assert estimate >= truth - 1e-9

    def test_diso_s_social(self, social, social_queries):
        reference = DijkstraOracle(social)
        oracle = DISOSparse(social, beta=1.5, tau=3, theta=16.0)
        for query in social_queries:
            truth = reference.query(query.source, query.target, query.failed)
            estimate = oracle.query(query.source, query.target, query.failed)
            assert estimate >= truth - 1e-9

    def test_fddo_social(self, social, social_queries):
        reference = DijkstraOracle(social)
        oracle = FDDOOracle(social, num_landmarks=10, seed=1)
        for query in social_queries:
            truth = reference.query(query.source, query.target, query.failed)
            estimate = oracle.query(query.source, query.target, query.failed)
            assert estimate >= truth - 1e-9


class TestThreadedQueries:
    def test_concurrent_queries_on_shared_index(self, road, road_queries):
        """The no-stall design: one index, many querying threads.

        Every thread answers its own failed-edge queries on the shared
        DISO index; results must equal the single-threaded answers.
        """
        oracle = DISO(road, tau=3, theta=1.0)
        expected = [
            oracle.query(q.source, q.target, q.failed)
            for q in road_queries
        ]
        results: list[list[float]] = [[] for _ in range(4)]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                for q in road_queries:
                    results[slot].append(
                        oracle.query(q.source, q.target, q.failed)
                    )
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for slot in range(4):
            assert results[slot] == pytest.approx(expected)


class TestNodeFailureModelling:
    def test_node_failure_as_edge_set(self, road):
        """Section 3.1: node failures reduce to failing incident edges."""
        reference = DijkstraOracle(road)
        oracle = DISO(road, tau=3, theta=1.0)
        victim = 50
        incident = {(victim, h) for h in road.successors(victim)}
        incident |= {(t, victim) for t in road.predecessors(victim)}
        got = oracle.query(0, 100, incident)
        expected = reference.query(0, 100, incident)
        assert got == pytest.approx(expected)
