"""The parallel build plane: process-pool index construction.

``build_parallel`` fans per-landmark work units over a worker pool and
merges the resulting shards deterministically — the frozen snapshot of
the result is bitwise-identical to the sequential constructor's.
``finalize_checkpoint`` completes an interrupted, spooled build without
redoing finished work.  See DESIGN.md §9.
"""

from repro.build.coordinator import (
    FAMILIES,
    BuildResult,
    build_parallel,
    canonical_snapshot_bytes,
    finalize_checkpoint,
)
from repro.build.profiler import BuildReport, BuildWorkerStats, format_report

__all__ = [
    "FAMILIES",
    "BuildReport",
    "BuildResult",
    "BuildWorkerStats",
    "build_parallel",
    "canonical_snapshot_bytes",
    "finalize_checkpoint",
    "format_report",
]
