"""DISO-S — DISO with distance graph sparsification (Section 6.2).

DISO-S trades a bounded amount of accuracy for query speed on dense
(scale-free) inputs, where the plain distance graph is the bottleneck.
As in the paper's experiments, sparsification is applied *both* to the
input graph and to the distance graph with the same ``beta``:

1. sparsify ``G`` to ``G'`` (every removed edge keeps a witness path
   within ``beta``),
2. build the full DISO index on ``G'``,
3. sparsify the resulting distance graph ``D`` to ``D-hat``, with the
   degree floor preventing nodes from being stranded by future failures.

Queries run the DISO procedure over ``G'`` and ``D-hat``.  Failed edges
that were sparsified away are dropped from ``F`` (they no longer exist
in the index's world; their witness paths bound the error).  When the
sparsified oracle reports ``t`` unreachable, the query falls back to
plain Dijkstra on the *original* graph — the paper's safety net ("if the
query algorithm fails to find the query answer, the Dijkstra's algorithm
is used"; such cases are extremely rare).
"""

from __future__ import annotations

import time

from repro.graph.digraph import DiGraph, Edge
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    normalize_failures,
)
from repro.oracle.diso import DISO
from repro.overlay.distance_graph import DistanceGraph
from repro.overlay.sparsify import sparsify_graph
from repro.pathing.dijkstra import shortest_distance


class DISOSparse(DISO):
    """DISO over a sparsified input graph and distance graph.

    Parameters
    ----------
    graph:
        The *original* input graph; kept for the Dijkstra fallback.
    beta:
        Sparsification stretch bound (>= 1).  Paper settings: 1.5 for
        DBLP/Youtube-like graphs, 2.0 for Pokec-like graphs.
    tau, theta, transit:
        Transit-set parameters, as in :class:`DISO`.
    degree_floor:
        Minimum retained degree; ``None`` applies the paper's rule.
    """

    name = "DISO-S"
    exact = False

    def __init__(
        self,
        graph: DiGraph,
        beta: float = 1.5,
        tau: int = 4,
        theta: float = 16.0,
        transit: set[int] | frozenset[int] | None = None,
        degree_floor: int | None = None,
    ) -> None:
        started = time.perf_counter()
        self.original_graph = graph
        self.beta = beta
        input_result = sparsify_graph(graph, beta, degree_floor)
        sparse_input = input_result.graph
        self.input_sparsification = input_result
        super().__init__(sparse_input, tau=tau, theta=theta, transit=transit)
        self._sparsify_overlay(beta, degree_floor)
        self.preprocess_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Build plane hooks
    # ------------------------------------------------------------------
    def _sparsify_overlay(self, beta: float, degree_floor: int | None) -> None:
        """Step 3: sparsify ``D`` to ``D-hat`` (same rule both phases)."""
        overlay_result = sparsify_graph(
            self.distance_graph.graph, beta, degree_floor
        )
        self.overlay_sparsification = overlay_result
        self.distance_graph = DistanceGraph(
            graph=overlay_result.graph, transit=self.transit
        )

    @classmethod
    def _from_assembled(  # type: ignore[override]
        cls,
        original_graph: DiGraph,
        input_sparsification,
        distance_graph,
        trees,
        *,
        beta: float = 1.5,
        degree_floor: int | None = None,
        preprocess_seconds: float = 0.0,
    ) -> "DISOSparse":
        """Adopt an index built on the sparsified input graph.

        ``input_sparsification`` is the step-1 result (the oracle's
        working graph is its ``.graph``); ``distance_graph``/``trees``
        are the *unsparsified* overlay and trees assembled from worker
        shards.  Step 3 (overlay sparsification) runs here — it needs
        the fully merged ``D``, so it cannot be farmed out per landmark.
        """
        from repro.oracle.base import DistanceSensitivityOracle

        oracle = cls.__new__(cls)
        DistanceSensitivityOracle.__init__(oracle, input_sparsification.graph)
        oracle.original_graph = original_graph
        oracle.beta = beta
        oracle.input_sparsification = input_sparsification
        oracle._install_index(distance_graph, trees)
        oracle._sparsify_overlay(beta, degree_floor)
        oracle.preprocess_seconds = preprocess_seconds
        return oracle

    def freeze(self):
        """Compile for flat-array serving, keeping DISO-S semantics.

        The compiled overlay is the sparsified ``D-hat`` (the frozen
        recomputation filter keeps removed edges removed), failures
        naming sparsified-away edges drop out during edge-id
        translation, and the Dijkstra safety net answers on the
        *original* graph — so frozen answers match the dict path
        exactly, including its bounded approximation error.
        """
        from repro.oracle.frozen import FrozenDISO

        return FrozenDISO(self, fallback_graph=self.original_graph)

    def _recomputed_weights(
        self,
        node: int,
        failed: frozenset[Edge],
    ) -> dict[int, float]:
        """Lazy recomputation restricted to surviving overlay edges.

        The trees cover the unsparsified overlay neighbourhood; edges
        removed from ``D-hat`` stay removed, keeping the sparsified
        topology authoritative.
        """
        weights = super()._recomputed_weights(node, failed)
        surviving = self.distance_graph.graph.successors(node)
        return {v: d for v, d in weights.items() if v in surviving}

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        fail_set = normalize_failures(failed)
        # Failures naming sparsified-away edges do not exist in this
        # oracle's world; drop them (their witnesses bound the error).
        live_failures = frozenset(  # dsolint: disable=DSO101 -- frozenset-to-frozenset filter; only membership is read
            edge for edge in fail_set if self.graph.has_edge(*edge)
        )
        result = super().query_detailed(source, target, live_failures)
        if result.distance == INFINITY:
            # Safety net: answer exactly on the original graph.
            fallback_start = time.perf_counter()
            exact = shortest_distance(
                self.original_graph, source, target, set(fail_set)
            )
            result.stats.used_fallback = True
            result.stats.total_seconds += (
                time.perf_counter() - fallback_start
            )
            result.distance = exact
        return result
