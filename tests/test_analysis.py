"""Unit tests for the ``dsolint`` static-analysis subsystem.

Each rule family gets a seeded violation (positive), a compliant
variant (negative), and the suppression/path-scoping machinery is
exercised end to end on inline fixture snippets.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    RULES,
    RULE_CATALOGUE_VERSION,
    lint_paths,
    lint_source,
    profile_for_path,
    rule_catalogue,
    to_json,
    to_text,
)

CORE = "src/repro/oracle/fixture.py"
WORKER = "src/repro/serving/fixture.py"
EXPERIMENTS = "src/repro/experiments/fixture.py"
TESTS = "tests/fixture.py"


def ids(snippet: str, path: str = CORE) -> list[str]:
    """Unsuppressed rule ids the snippet triggers at ``path``."""
    findings = lint_source(textwrap.dedent(snippet), path)
    return [f.rule_id for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# DSO101 — set iteration into ordered expressions
# ----------------------------------------------------------------------

def test_dso101_list_comprehension_over_set():
    assert "DSO101" in ids("rows = [n for n in set(values)]\n")


def test_dso101_list_call_over_set():
    assert "DSO101" in ids("rows = list({1, 2, 3})\n")


def test_dso101_set_annotation_on_parameter():
    snippet = """
        def emit(failed: frozenset) -> list:
            return [edge for edge in failed]
    """
    assert "DSO101" in ids(snippet)


def test_dso101_sorted_wrapper_is_clean():
    assert ids("rows = [n for n in sorted(set(values))]\n") == []


def test_dso101_order_free_aggregate_is_clean():
    assert ids("total = sum(n for n in set(values))\n") == []


def test_dso101_plain_list_iteration_is_clean():
    assert ids("rows = [n for n in values]\n") == []


# ----------------------------------------------------------------------
# DSO102 — for-loops over sets that emit ordered output
# ----------------------------------------------------------------------

def test_dso102_append_inside_set_loop():
    snippet = """
        def report(transit: set) -> list:
            lines = []
            for node in transit:
                lines.append(str(node))
            return lines
    """
    assert "DSO102" in ids(snippet)


def test_dso102_sorted_loop_is_clean():
    snippet = """
        def report(transit: set) -> list:
            lines = []
            for node in sorted(transit):
                lines.append(str(node))
            return lines
    """
    assert ids(snippet) == []


def test_dso102_accumulating_loop_is_clean():
    snippet = """
        def total(transit: set) -> float:
            acc = 0.0
            for node in transit:
                acc += node
            return acc
    """
    assert ids(snippet) == []


# ----------------------------------------------------------------------
# DSO103 — unseeded randomness
# ----------------------------------------------------------------------

def test_dso103_global_random_draw():
    assert "DSO103" in ids("import random\npick = random.random()\n")


def test_dso103_unseeded_random_instance():
    assert "DSO103" in ids("import random\nrng = random.Random()\n")


def test_dso103_seeded_instance_is_clean():
    snippet = """
        import random
        rng = random.Random(7)
        pick = rng.random()
    """
    assert ids(snippet) == []


# ----------------------------------------------------------------------
# DSO104 — wall-clock time in library code (path-scoped)
# ----------------------------------------------------------------------

def test_dso104_time_time_in_core():
    assert "DSO104" in ids("import time\nstamp = time.time()\n")


def test_dso104_perf_counter_is_clean():
    assert ids("import time\nstamp = time.perf_counter()\n") == []


def test_dso104_allowed_in_experiments_profile():
    snippet = "import time\nstamp = time.time()\n"
    assert ids(snippet, path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# DSO201 — unpicklable callables at process boundaries
# ----------------------------------------------------------------------

def test_dso201_lambda_process_target():
    snippet = """
        import multiprocessing
        proc = multiprocessing.Process(target=lambda: None)
    """
    assert "DSO201" in ids(snippet)


def test_dso201_nested_function_target():
    snippet = """
        def start(ctx):
            def inner():
                return 1
            return ctx.Process(target=inner)
    """
    assert "DSO201" in ids(snippet)


def test_dso201_lambda_in_pipe_send():
    snippet = """
        def ship(conn):
            conn.send(("work", lambda x: x + 1))
    """
    assert "DSO201" in ids(snippet)


def test_dso201_module_level_target_is_clean():
    snippet = """
        def start(ctx, worker_main):
            return ctx.Process(target=worker_main, args=(1,))
    """
    assert ids(snippet) == []


# ----------------------------------------------------------------------
# DSO202 — module-global mutable state written in functions
# ----------------------------------------------------------------------

def test_dso202_global_write():
    snippet = """
        CACHE = {}

        def reset():
            global CACHE
            CACHE = {}
    """
    assert "DSO202" in ids(snippet)


def test_dso202_local_shadow_is_clean():
    snippet = """
        CACHE = {}

        def reset():
            cache = {}
            return cache
    """
    assert ids(snippet) == []


# ----------------------------------------------------------------------
# DSO301 — NaN / QUERY_ERROR sentinel comparison
# ----------------------------------------------------------------------

def test_dso301_sentinel_equality():
    assert "DSO301" in ids("bad = answer == QUERY_ERROR\n")


def test_dso301_float_nan_inequality():
    assert "DSO301" in ids('bad = answer != float("nan")\n')


def test_dso301_math_nan_attribute():
    assert "DSO301" in ids("import math\nbad = answer == math.nan\n")


def test_dso301_isnan_is_clean():
    assert ids("import math\nok = math.isnan(answer)\n") == []


def test_dso301_infinity_equality_is_clean():
    assert ids('unreachable = answer == float("inf")\n') == []


def test_dso301_np_equal_call_form():
    assert "DSO301" in ids(
        "import numpy as np\nmask = np.equal(answers, np.nan)\n"
    )
    assert "DSO301" in ids(
        "import numpy as np\nmask = np.not_equal(answers, QUERY_ERROR)\n"
    )


def test_dso301_np_isnan_is_clean():
    assert ids("import numpy as np\nmask = np.isnan(answers)\n") == []


# ----------------------------------------------------------------------
# DSO303 — self-comparison NaN idiom
# ----------------------------------------------------------------------

def test_dso303_name_self_comparison():
    assert "DSO303" in ids("poisoned = answer != answer\n")


def test_dso303_subscript_self_comparison():
    assert "DSO303" in ids("mask = answers[low:high] == answers[low:high]\n")


def test_dso303_attribute_self_comparison():
    assert "DSO303" in ids("weird = report.answers != report.answers\n")


def test_dso303_distinct_operands_are_clean():
    assert ids("same = left == right\n") == []
    assert ids("same = result.dist == dist\n") == []


def test_dso303_repeated_calls_are_clean():
    # A call can legitimately return different values per evaluation.
    assert ids("flaky = roll() != roll()\n") == []


# ----------------------------------------------------------------------
# DSO302 — fractional float literal equality
# ----------------------------------------------------------------------

def test_dso302_fractional_literal():
    assert "DSO302" in ids("hit = distance == 0.3\n")


def test_dso302_integral_literal_is_clean():
    assert ids("hit = distance == 1.0\n") == []


# ----------------------------------------------------------------------
# DSO401 / DSO402 / DSO403 — exception protocol hygiene
# ----------------------------------------------------------------------

def test_dso401_bare_except():
    snippet = """
        try:
            risky()
        except:
            pass
    """
    assert "DSO401" in ids(snippet)


def test_dso402_swallowed_broad_except():
    snippet = """
        def guard():
            try:
                return risky()
            except Exception:
                return None
    """
    assert "DSO402" in ids(snippet)


def test_dso402_reraise_is_clean():
    snippet = """
        def guard(cleanup):
            try:
                return risky()
            except Exception:
                cleanup()
                raise
    """
    assert ids(snippet) == []


def test_dso402_used_exception_is_clean():
    snippet = """
        def guard(channel):
            try:
                return risky()
            except Exception as exc:
                channel.append(str(exc))
                return None
    """
    assert ids(snippet) == []


def test_dso403_pass_handler_in_worker_path():
    snippet = """
        def loop(conn):
            try:
                conn.send(("stop",))
            except OSError:
                pass
    """
    assert "DSO403" in ids(snippet, path=WORKER)


def test_dso403_off_in_core_profile():
    snippet = """
        def loop(conn):
            try:
                conn.send(("stop",))
            except OSError:
                pass
    """
    assert ids(snippet, path=CORE) == []


# ----------------------------------------------------------------------
# Suppression machinery
# ----------------------------------------------------------------------

def test_justified_suppression_silences_finding():
    snippet = (
        "rows = [n for n in set(values)]"
        "  # dsolint: disable=DSO101 -- fixture: order provably irrelevant\n"
    )
    findings = lint_source(snippet, CORE)
    assert [f.rule_id for f in findings if not f.suppressed] == []
    suppressed = [f for f in findings if f.suppressed]
    assert suppressed and suppressed[0].justification.startswith("fixture")


def test_unjustified_suppression_reports_meta_rule():
    snippet = "rows = [n for n in set(values)]  # dsolint: disable=DSO101\n"
    assert ids(snippet) == ["DSO001"]


def test_disable_next_line():
    snippet = (
        "# dsolint: disable-next=DSO101 -- fixture reason\n"
        "rows = [n for n in set(values)]\n"
    )
    assert ids(snippet) == []


def test_disable_file():
    snippet = (
        "# dsolint: disable-file=DSO101 -- fixture reason\n"
        "rows = [n for n in set(values)]\n"
        "more = [n for n in set(values)]\n"
    )
    assert ids(snippet) == []


def test_suppression_for_other_rule_does_not_apply():
    snippet = (
        "rows = [n for n in set(values)]"
        "  # dsolint: disable=DSO301 -- wrong rule id\n"
    )
    assert "DSO101" in ids(snippet)


# ----------------------------------------------------------------------
# Path-scoped configuration
# ----------------------------------------------------------------------

def test_profiles_by_path():
    assert profile_for_path(WORKER).name == "worker"
    assert profile_for_path(CORE).name == "core"
    assert profile_for_path(EXPERIMENTS).name == "experiments"
    assert profile_for_path("benchmarks/bench_x.py").name == "experiments"
    assert profile_for_path(TESTS).name == "tests"
    assert profile_for_path("somewhere/else.py").name == "core"


def test_scope_matching_is_cwd_independent():
    absolute = "/home/ci/checkout/src/repro/serving/worker.py"
    assert DEFAULT_CONFIG.profile_for(absolute).name == "worker"


def test_tests_profile_keeps_only_universal_rules():
    determinism = "rows = [n for n in set(values)]\n"
    assert ids(determinism, path=TESTS) == []
    bare = "try:\n    risky()\nexcept:\n    pass\n"
    assert "DSO401" in ids(bare, path=TESTS)


# ----------------------------------------------------------------------
# Engine, reporting, catalogue
# ----------------------------------------------------------------------

def test_syntax_error_becomes_dso000():
    findings = lint_source("def broken(:\n", CORE)
    assert [f.rule_id for f in findings] == ["DSO000"]


def test_lint_paths_walks_directories(tmp_path):
    package = tmp_path / "src" / "repro" / "oracle"
    package.mkdir(parents=True)
    (package / "dirty.py").write_text(
        "rows = [n for n in set(values)]\n", encoding="utf-8"
    )
    (package / "clean.py").write_text("rows = [1, 2]\n", encoding="utf-8")
    report = lint_paths([tmp_path])
    assert not report.ok
    assert len(report.files) == 2
    assert [f.rule_id for f in report.unsuppressed] == ["DSO101"]


def test_json_report_schema(tmp_path):
    target = tmp_path / "src" / "repro" / "oracle"
    target.mkdir(parents=True)
    (target / "dirty.py").write_text(
        "rows = [n for n in set(values)]\n", encoding="utf-8"
    )
    report = lint_paths([tmp_path])
    payload = json.loads(to_json(report))
    assert payload["catalogue_version"] == RULE_CATALOGUE_VERSION
    assert payload["counts"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "DSO101"
    assert "DSO101" in payload["catalogue"]


def test_text_report_lists_findings():
    from repro.analysis.engine import LintReport

    report = LintReport(
        findings=lint_source("rows = [n for n in set(values)]\n", CORE),
        files=[CORE],
    )
    text = to_text(report)
    assert "DSO101" in text and CORE in text and "1 finding" in text


def test_rule_ids_are_unique_and_catalogued():
    rule_ids = [rule.rule_id for rule in RULES]
    assert len(rule_ids) == len(set(rule_ids))
    assert len(rule_ids) >= 8
    catalogue = rule_catalogue()
    for rule_id in rule_ids:
        assert catalogue[rule_id]["summary"]


def test_every_rule_family_represented():
    families = {rule.rule_id[:4] for rule in RULES}
    assert {"DSO1", "DSO2", "DSO3", "DSO4"} <= families
