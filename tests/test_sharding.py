"""Sharded serving plane tests: plans, parity, snapshots, serving.

The acceptance bar (ISSUE 8): stitched answers must be bitwise-equal
to the unsharded frozen oracle — NaN sentinel included — on seeded
graphs at K in {2, 4}, under failure sets that delete border-incident
and cross-shard edges.  Bitwise equality is meaningful because every
graph here has integer (or unit) weights, making float addition exact
regardless of association order.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FormatError, PartitionError, QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import grid_network
from repro.oracle.diso import DISO
from repro.sharding import (
    MANIFEST_NAME,
    ShardedOracle,
    build_sharded,
    compute_border_matrix,
    load_shard_plan_overlay,
    load_sharded_snapshot,
    make_shard_plan,
    save_sharded_snapshot,
    sharded_snapshot_info,
)
from repro.serving.sharded import ShardedQueryService
from util import exact_random_graph


def _reference(graph):
    return DISO(graph, tau=3).freeze()


def _assert_same(got: float, want: float) -> None:
    """Bitwise equality, with inf==inf and NaN==NaN."""
    if math.isinf(want):
        assert math.isinf(got)
    elif math.isnan(want):
        assert math.isnan(got)
    else:
        assert got == want


def _query_mix(graph, plan, seed: int, count: int):
    """Random (s, t, F) triples biased toward the hard failure classes:
    failure sets deleting border-incident edges and cross-shard edges."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    edges = [(tail, head) for tail, head, _ in graph.edges()]
    cross = [(tail, head) for tail, head, _ in plan.cross_edges]
    border_set = set(plan.borders)
    border_edges = [
        (tail, head)
        for tail, head in edges
        if tail in border_set or head in border_set
    ]
    for _ in range(count):
        failed: set = set()
        if cross and rng.random() < 0.5:
            failed.update(rng.sample(cross, min(len(cross), 2)))
        if border_edges and rng.random() < 0.5:
            failed.update(rng.sample(border_edges, min(len(border_edges), 2)))
        if rng.random() < 0.4:
            failed.update(rng.sample(edges, min(len(edges), 2)))
        yield (
            rng.choice(nodes),
            rng.choice(nodes),
            frozenset(failed) or None,
        )


class TestShardPlan:
    def test_every_sequence_sorted(self):
        plan = make_shard_plan(grid_network(5, 5), 3, seed=1)
        assert list(plan.borders) == sorted(plan.borders)
        for nodes in plan.shard_nodes:
            assert list(nodes) == sorted(nodes)
            assert nodes  # never empty
        for borders in plan.shard_borders:
            assert list(borders) == sorted(borders)
        assert list(plan.cross_edges) == sorted(plan.cross_edges)

    def test_borders_union_and_cross_endpoints(self):
        graph = grid_network(5, 5)
        plan = make_shard_plan(graph, 3, seed=1)
        union = sorted(
            node for borders in plan.shard_borders for node in borders
        )
        assert union == list(plan.borders)
        border_set = set(plan.borders)
        for tail, head, weight in plan.cross_edges:
            assert tail in border_set and head in border_set
            assert plan.shard_of(tail) != plan.shard_of(head)
            assert weight == graph.weight(tail, head)

    def test_cut_matches_cross_edges(self):
        plan = make_shard_plan(grid_network(4, 4), 2, seed=0)
        assert plan.edge_cut == len(plan.cross_edges)
        assert (plan.edge_cut > 0) == (plan.num_borders > 0)

    def test_bad_method_raises(self):
        with pytest.raises(ValueError):
            make_shard_plan(grid_network(3, 3), 2, method="kmeans")

    def test_empty_graph_raises(self):
        with pytest.raises(PartitionError):
            make_shard_plan(DiGraph(), 2)

    def test_nonpositive_parts_raise(self):
        for parts in (0, -3):
            with pytest.raises(PartitionError):
                make_shard_plan(grid_network(3, 3), parts)

    def test_single_part_skips_partitioner(self):
        """K=1 plans need no partitioner and produce no borders, so no
        query ever stitches — the PartitionError-free trivial path."""
        graph = grid_network(4, 4)
        plan = make_shard_plan(graph, 1, seed=0)
        assert plan.parts == 1
        assert set(plan.assignment.values()) == {0}
        assert plan.num_borders == 0
        assert plan.cross_edges == ()
        assert plan.edge_cut == 0

    def test_too_many_parts_raises(self):
        with pytest.raises(PartitionError):
            make_shard_plan(grid_network(2, 2), 9)

    def test_deterministic(self):
        graph = exact_random_graph(5, n=24, extra=40)
        assert make_shard_plan(graph, 4, seed=2) == make_shard_plan(
            graph, 4, seed=2
        )


class TestBorderMatrix:
    def test_diagonal_zero_rows_match_shards(self):
        graph = grid_network(4, 4)
        plan = make_shard_plan(graph, 2, seed=1)
        shard_graph = graph.subgraph(plan.shard_nodes[0])
        matrix = compute_border_matrix(shard_graph, plan.shard_borders[0])
        width = len(plan.shard_borders[0])
        assert len(matrix) == width
        for i, row in enumerate(matrix):
            assert len(row) == width
            assert row[i] == 0.0

    def test_pooled_equals_inline(self):
        graph = grid_network(5, 5)
        plan = make_shard_plan(graph, 2, seed=1)
        shard_graph = graph.subgraph(plan.shard_nodes[0])
        borders = plan.shard_borders[0]
        inline = compute_border_matrix(shard_graph, borders, jobs=0)
        pooled = compute_border_matrix(shard_graph, borders, jobs=2)
        assert inline == pooled

    def test_empty_borders(self):
        graph = grid_network(3, 3)
        assert compute_border_matrix(graph, ()) == []


class TestStitchEarlyExit:
    """Degenerate stitches return the upper bound without walking."""

    def _counting_adjacency(self):
        calls = []

        def adjacency(u):
            calls.append(u)
            return ()

        return adjacency, calls

    def test_empty_targets_skip_the_walk(self):
        from repro.sharding.oracle import stitch_over_borders

        adjacency, calls = self._counting_adjacency()
        best = stitch_over_borders(
            [(1, 0.0), (2, 3.0)], {}, adjacency, upper_bound=5.0
        )
        assert best == 5.0
        assert calls == []

    def test_all_infinite_leads_skip_the_walk(self):
        from repro.sharding.oracle import stitch_over_borders

        adjacency, calls = self._counting_adjacency()
        inf = float("inf")
        best = stitch_over_borders(
            [(1, inf), (2, inf)], {3: 0.0}, adjacency, upper_bound=7.0
        )
        assert best == 7.0
        assert calls == []


GRAPHS = {
    "grid6": lambda: grid_network(6, 6),
    "rand30": lambda: exact_random_graph(11, n=30, extra=60),
    "rand40": lambda: exact_random_graph(12, n=40, extra=70),
}


class TestShardedParity:
    """Sharded answers == unsharded answers, bitwise."""

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("parts", [2, 4])
    def test_bitwise_parity(self, graph_name, parts):
        graph = GRAPHS[graph_name]()
        reference = _reference(graph)
        build = build_sharded(graph, parts, method="metis", seed=1)
        sharded = ShardedOracle.from_build(build)
        for source, target, failed in _query_mix(
            graph, build.plan, seed=7, count=80
        ):
            _assert_same(
                sharded.query(source, target, failed),
                reference.query(source, target, failed),
            )

    @pytest.mark.parametrize("method", ["metis", "spectral", "uniform"])
    def test_parity_across_partitioners(self, method):
        graph = grid_network(5, 5)
        reference = _reference(graph)
        build = build_sharded(graph, 3, method=method, seed=2)
        sharded = ShardedOracle.from_build(build)
        for source, target, failed in _query_mix(
            graph, build.plan, seed=3, count=50
        ):
            _assert_same(
                sharded.query(source, target, failed),
                reference.query(source, target, failed),
            )

    def test_poison_queries_match_unsharded_errors(self):
        graph = grid_network(4, 4)
        reference = _reference(graph)
        sharded = ShardedOracle.from_build(build_sharded(graph, 2, seed=1))
        for source, target in ((999, 0), (0, 999)):
            with pytest.raises(QueryError) as unsharded_exc:
                reference.query(source, target)
            with pytest.raises(QueryError) as sharded_exc:
                sharded.query(source, target)
            assert str(sharded_exc.value) == str(unsharded_exc.value)

    def test_single_shard_is_local_only(self):
        graph = grid_network(4, 4)
        reference = _reference(graph)
        sharded = ShardedOracle.from_build(build_sharded(graph, 1, seed=0))
        assert sharded.overlay.shard_borders == ((),)
        for node in (0, 5, 15):
            _assert_same(
                sharded.query(0, node), reference.query(0, node)
            )

    def test_disconnected_components_cross_shard_unreachable(self):
        graph = DiGraph()
        for base in (0, 10):
            for i in range(4):
                graph.add_edge(base + i, base + (i + 1) % 4, 1.0)
                graph.add_edge(base + (i + 1) % 4, base + i, 1.0)
        build = build_sharded(graph, 2, method="metis", seed=0)
        sharded = ShardedOracle.from_build(build)
        # The ISC cover is empty on this graph, so pin the transit set.
        reference = DISO(graph, tau=3, transit=set(graph.nodes())).freeze()
        _assert_same(sharded.query(0, 12), reference.query(0, 12))
        _assert_same(sharded.query(0, 3), reference.query(0, 3))

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        parts=st.sampled_from([2, 4]),
    )
    def test_parity_property(self, seed, parts):
        """Random graphs, random failure sets hitting borders and cross
        edges — the stitched plane never disagrees with the oracle."""
        graph = exact_random_graph(seed, n=16, extra=26)
        reference = _reference(graph)
        build = build_sharded(graph, parts, method="uniform", seed=seed)
        sharded = ShardedOracle.from_build(build)
        for source, target, failed in _query_mix(
            graph, build.plan, seed=seed + 1, count=25
        ):
            _assert_same(
                sharded.query(source, target, failed),
                reference.query(source, target, failed),
            )


class TestShardedSnapshot:
    def test_roundtrip_parity(self, tmp_path):
        graph = grid_network(5, 5)
        reference = _reference(graph)
        build = build_sharded(graph, 3, seed=1)
        target = save_sharded_snapshot(build, tmp_path / "sharded")
        assert (target / MANIFEST_NAME).exists()
        restored = load_sharded_snapshot(target)
        for source, target_node, failed in _query_mix(
            graph, build.plan, seed=9, count=40
        ):
            _assert_same(
                restored.query(source, target_node, failed),
                reference.query(source, target_node, failed),
            )

    def test_manifest_bytes_deterministic(self, tmp_path):
        graph = exact_random_graph(4, n=20, extra=30)
        build = build_sharded(graph, 3, seed=5)
        a = save_sharded_snapshot(build, tmp_path / "a") / MANIFEST_NAME
        b = save_sharded_snapshot(build, tmp_path / "b") / MANIFEST_NAME
        assert a.read_bytes() == b.read_bytes()

    def test_info_reports_layout(self, tmp_path):
        graph = grid_network(4, 4)
        build = build_sharded(graph, 2, seed=1)
        target = save_sharded_snapshot(build, tmp_path / "sharded")
        info = sharded_snapshot_info(target)
        meta = info["meta"]
        assert meta["parts"] == 2
        assert meta["method"] == "metis"
        assert meta["num_nodes"] == 16
        assert sum(meta["shard_sizes"]) == 16
        assert len(info["shard_file_bytes"]) == 2
        assert all(
            size and size > 0 for size in info["shard_file_bytes"].values()
        )
        assert info["manifest_bytes"] > 0

    def test_overlay_only_load_skips_shards(self, tmp_path):
        graph = grid_network(4, 4)
        build = build_sharded(graph, 2, seed=1)
        target = save_sharded_snapshot(build, tmp_path / "sharded")
        # Dispatcher-side load must not need the shard files at all.
        for path in target.glob("shard-*.dsosnap"):
            path.rename(path.with_suffix(".moved"))
        overlay, meta, shard_paths = load_shard_plan_overlay(target)
        assert overlay.parts == 2
        assert set(overlay.assignment) == set(graph.nodes())
        assert len(shard_paths) == 2

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FormatError):
            load_sharded_snapshot(tmp_path)

    def test_unsharded_snapshot_rejected(self, tmp_path):
        from repro.oracle.snapshot import save_snapshot

        graph = grid_network(3, 3)
        path = tmp_path / MANIFEST_NAME
        save_snapshot(_reference(graph), path)
        with pytest.raises(FormatError):
            load_sharded_snapshot(tmp_path)


class TestShardedServing:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        graph = grid_network(5, 5)
        build = build_sharded(graph, 2, seed=1)
        target = save_sharded_snapshot(
            build, tmp_path_factory.mktemp("sharded") / "snap"
        )
        return graph, build, target

    def test_serving_parity_and_stats(self, served):
        graph, build, target = served
        reference = _reference(graph)
        batch = list(_query_mix(graph, build.plan, seed=21, count=25))
        batch.append((999, 0, None))  # poison source
        batch.append((0, 999, None))  # poison target
        with ShardedQueryService(target, workers_per_shard=1) as service:
            report = service.run(batch)
        assert len(report.answers) == len(batch)
        for position, (source, target_node, failed) in enumerate(batch):
            try:
                want = reference.query(source, target_node, failed)
            except QueryError as exc:
                assert math.isnan(report.answers[position])
                assert report.errors[position] == f"QueryError: {exc}"
                continue
            assert report.errors[position] is None
            _assert_same(report.answers[position], want)
        # Shard-aware routing stats.
        assert report.shards == 2
        assert 0.0 <= report.cross_shard_ratio <= 1.0
        assert len(report.shard_loads) == 2
        assert sum(report.shard_loads) > 0
        summary = report.summary()
        assert summary["shards"] == 2
        assert summary["cross_shard_ratio"] == round(
            report.cross_shard_ratio, 3
        )

    def test_cross_shard_ratio_counts_cross_queries(self, served):
        graph, build, target = served
        assignment = build.plan.assignment
        by_shard: dict[int, list[int]] = {}
        for node, shard in assignment.items():
            by_shard.setdefault(shard, []).append(node)
        same = (by_shard[0][0], by_shard[0][-1], None)
        cross = (by_shard[0][0], by_shard[1][0], None)
        with ShardedQueryService(target, workers_per_shard=1) as service:
            report = service.run([same, cross, cross, same])
        assert report.cross_shard_ratio == 0.5

    def test_workers_accounting(self, served):
        _, _, target = served
        with ShardedQueryService(target, workers_per_shard=2) as service:
            assert service.workers == 4
            report = service.run([(0, 24, None)])
        assert report.workers == 4
        assert len(report.per_worker) == 4
        assert [stats.index for stats in report.per_worker] == [0, 1, 2, 3]

    def test_result_cache_spans_shard_epochs(self, served):
        graph, build, target = served
        batch = list(_query_mix(graph, build.plan, seed=33, count=10))
        batch.append(batch[0])  # within-batch duplicate
        with ShardedQueryService(
            target, workers_per_shard=1, cache_size=64
        ) as service:
            first = service.run(batch)
            assert first.cache_hits >= 1  # the duplicate coalesced
            second = service.run(batch)
            # Everything answered from the dispatcher cache: no legs
            # planned, no shard dispatched.
            assert second.cache_hits == len(batch)
            assert sum(second.shard_loads) == 0
            for got, want in zip(second.answers, first.answers):
                _assert_same(got, want)
            # The cache stamp is the *sum* of shard epochs: retiring
            # (any) shard snapshots invalidates every stitched answer.
            before = service.snapshot_epoch
            assert service.retire_snapshot_epoch() > before
            third = service.run(batch)
            assert third.cache_hits == 1  # only the duplicate again
            assert sum(third.shard_loads) > 0
            for got, want in zip(third.answers, first.answers):
                _assert_same(got, want)
            stats = service.cache_stats()
            assert stats is not None and stats["hits"] >= len(batch)

    def test_deadline_sheds_whole_queries(self, served):
        _, _, target = served
        batch = [(0, 24, None), (24, 0, None), (0, 12, None)]
        with ShardedQueryService(
            target, workers_per_shard=1, deadline_ms=1e-6
        ) as service:  # impossible budget: everything sheds
            report = service.run(batch)
        assert report.shed_count == len(batch)
        assert set(report.statuses) == {"shed"}
        assert all(math.isnan(answer) for answer in report.answers)
        assert report.error_count == 0

    def test_bad_knobs_rejected(self, served):
        _, _, target = served
        with pytest.raises(ValueError):
            ShardedQueryService(target, cache_size=-1)
        with pytest.raises(ValueError):
            ShardedQueryService(target, workers_per_shard=0)
