"""The dispatcher: shard query batches across snapshot-mapped workers.

:class:`QueryService` owns a pool of worker processes
(:func:`repro.serving.worker.worker_main`), each of which maps the same
snapshot file read-only.  ``run()`` splits a query batch into
contiguous chunks, deals them round-robin across the pool, and streams
results back over pipes — restoring input order, aggregating per-query
latencies, and keeping per-worker accounting.

Failure semantics (v2, spec in DESIGN.md §8) — an oracle built to keep
answering under edge failures should itself degrade per-query, not
per-run:

* a query that raises inside a worker comes back as a per-query error
  (NaN answer + message in :attr:`ServeReport.errors`) with **zero**
  worker restarts — poison queries cannot start a crash-replace-resend
  loop;
* a worker that dies mid-batch is replaced and its outstanding chunks
  are re-sent to the replacement, so one crash costs one chunk of
  rework, not the run;
* every ``run()`` is fenced by a monotonically increasing *epoch*
  stamped into each batch id; results echoing a stale epoch (a
  previous, possibly aborted, run) are dropped instead of spliced into
  the wrong positions, and outstanding bookkeeping is cleared on every
  raise path so an aborted run never poisons the next one;
* a worker silent past ``batch_timeout`` is pinged: if it answers the
  pong (alive, but a result was lost) its chunks are re-sent; if it
  stays silent past ``ping_timeout`` (hung or wedged) it is replaced.

Result planes (v3, spec in DESIGN.md §11): by default answers travel
through a per-run :class:`~repro.serving.ring.ResultRing` — a
preallocated ``multiprocessing.shared_memory`` float64 ring with one
slot per chunk — and the pipe carries only small epoch-tagged
completion records, so the dispatcher stops paying pickle cost
proportional to the answer volume.  ``result_plane="pipe"`` (or env
``DSO_RESULT_PLANE=pipe``) restores the v2 all-pipe channel for
platforms without usable shared memory; both planes produce identical
reports, and the shm plane additionally falls back per-run (ring
creation failure) and per-batch (worker-side attach/write failure)
without losing answers.

Caching and admission (v4, spec in DESIGN.md §12): with
``cache_size > 0`` the dispatcher keeps a
:class:`~repro.serving.cache.ResultCache` keyed on ``(s, t,
canonicalized failure set)`` — repeats of a finished query are served
as a dictionary lookup without touching a worker, duplicates *within*
one batch are computed once and fanned out, and every entry is stamped
with the snapshot epoch it was computed under so retiring a snapshot
(:meth:`QueryService.swap_snapshot`) invalidates the whole cache by
bumping an integer.  ``hot_pairs > 0`` adds a
:class:`~repro.serving.cache.HotPairTracker` whose hottest uncached
keys are precomputed during dispatcher idle gaps
(:meth:`QueryService.refresh_hot_pairs`).  ``deadline_ms`` arms a
:class:`~repro.serving.admission.DeadlineAdmission` load-shedder: when
the queued work provably cannot meet the deadline budget, the excess
is answered with the NaN sentinel under a ``"shed"`` status instead of
queueing unboundedly.  All three sit *before* shard dispatch — cache
hits and sheds never reach a worker — and all three are off by
default, leaving the v2/v3 behaviour untouched.

The dispatcher itself never loads the oracle: the only artifacts it
touches are the snapshot path (a string), the query/answer tuples on
the pipes, and the float lanes of the result ring.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
from array import array
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from collections.abc import Sequence

from repro.oracle.parallel import latency_percentile
from repro.serving.admission import DeadlineAdmission
from repro.serving.cache import (
    HotPairTracker,
    ResultCache,
    canonical_query_key,
)
from repro.serving.ring import ResultRing
from repro.serving.worker import worker_main
from repro.workload.queries import Query

#: Recognised ``result_plane`` values.
RESULT_PLANES = ("shm", "pipe")

#: Seconds to wait for a freshly spawned worker to map the snapshot.
_READY_TIMEOUT = 60.0
#: Ceiling on the result-wait poll interval (liveness/deadline checks).
_POLL_SECONDS = 0.5
#: Floor on the poll interval so tiny test timeouts cannot spin-wait.
_MIN_POLL_SECONDS = 0.02


@dataclass
class WorkerStats:
    """Accounting for one worker *slot* across a ``run()`` call.

    A slot survives replacement: when the process crashes mid-run,
    ``pid`` moves to the replacement's pid, ``load_seconds``
    accumulates the replacement's snapshot-load time on top of the
    original's, and ``restarts`` counts the swaps.
    """

    index: int
    pid: int = 0
    queries: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    load_seconds: float = 0.0
    restarts: int = 0


@dataclass
class ServeReport:
    """Aggregate outcome of one sharded batch run."""

    answers: list[float]
    latencies: list[float]
    wall_seconds: float
    workers: int
    per_worker: list[WorkerStats] = field(default_factory=list)
    restarts: int = 0
    #: Per-query error messages, aligned with ``answers``; ``None`` for
    #: a query that succeeded.  An errored query's answer is NaN.
    errors: list[str | None] = field(default_factory=list)
    #: Result plane the run actually used (``"shm"`` may degrade to
    #: ``"pipe"`` when no usable shared memory exists).
    result_plane: str = "pipe"
    #: Dispatcher-side seconds spent decoding results per accepted
    #: batch: unpickling the pipe payload plus, on the shm plane, the
    #: stamped memcpy out of the ring (``read_into``); the end-of-run
    #: bulk boxing of the typed buffers is epilogue, not per-batch
    #: work.  The OS wait for the raw bytes is excluded — on a
    #: one-core box it is scheduler noise an order of magnitude above
    #: the plane cost being compared.
    dispatch_seconds: float = 0.0
    #: Result-channel bytes that crossed the pipe (pickled result or
    #: completion messages), summed over accepted batches.
    pipe_bytes: int = 0
    #: Accepted result batches (denominator for the per-batch rates).
    result_batches: int = 0
    #: Queries served without touching a worker: repeats answered from
    #: the dispatcher result cache plus within-batch duplicates fanned
    #: out from a single computation.
    cache_hits: int = 0
    #: The subset of ``cache_hits`` served from entries that were
    #: precomputed by the hot-pair refresh rather than by past queries.
    precomputed_hits: int = 0
    #: Input positions refused by deadline admission control.  A shed
    #: query's answer is NaN, its ``errors`` slot stays ``None`` (a
    #: shed is a dispatcher decision, not a query failure), and its
    #: status reads ``"shed"``.
    shed_indices: list[int] = field(default_factory=list)
    #: Shard count of the serving plane that produced this report; 0
    #: for the unsharded (single-snapshot) service.
    shards: int = 0
    #: Fraction of the batch whose endpoints lived in different shards
    #: (answered by stitching); 0.0 on the unsharded plane.
    cross_shard_ratio: float = 0.0
    #: Per-shard routed load: leg queries dispatched to each shard's
    #: pool (local legs, border legs, and matrix repairs all count).
    #: Empty on the unsharded plane.
    shard_loads: list[int] = field(default_factory=list)
    #: Stitch plane the sharded dispatcher combined legs with
    #: (``"scalar"`` heap walk or ``"frozen"`` CSR kernels); empty on
    #: the unsharded plane.
    stitch_plane: str = ""
    #: Dispatcher-side seconds spent stitching answered legs into final
    #: answers (the cost the frozen plane exists to shrink).
    stitch_seconds: float = 0.0
    #: Cross-shard queries answered by the precomputed border closure
    #: (failure-free fast path) instead of an overlay search.
    closure_hits: int = 0
    #: Same-shard vs cross-shard latency split:
    #: ``{"same_shard"|"cross_shard": {count, p50_us, p99_us}}``.
    #: Empty on the unsharded plane.
    latency_split: dict = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        """Aggregate observed throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.answers) / self.wall_seconds

    @property
    def p50_seconds(self) -> float:
        """Median per-query latency (inside-worker, excludes transport)."""
        return latency_percentile(self.latencies, 0.50)

    @property
    def p99_seconds(self) -> float:
        """Nearest-rank 99th percentile per-query latency."""
        return latency_percentile(self.latencies, 0.99)

    @property
    def error_count(self) -> int:
        """Number of queries that came back as per-query errors."""
        return sum(1 for message in self.errors if message is not None)

    @property
    def error_indices(self) -> list[int]:
        """Input positions of the errored queries."""
        return [
            position
            for position, message in enumerate(self.errors)
            if message is not None
        ]

    @property
    def statuses(self) -> list[str]:
        """Per-query ``"ok"`` / ``"error"`` / ``"shed"``, aligned with
        ``answers``."""
        shed = set(self.shed_indices)
        return [
            "shed"
            if position in shed
            else ("ok" if message is None else "error")
            for position, message in enumerate(self.errors)
        ]

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of the batch served from the dispatcher cache."""
        if not self.answers:
            return 0.0
        return self.cache_hits / len(self.answers)

    @property
    def shed_count(self) -> int:
        """Number of queries refused by admission control."""
        return len(self.shed_indices)

    @property
    def shed_rate(self) -> float:
        """Fraction of the batch shed by admission control."""
        if not self.answers:
            return 0.0
        return self.shed_count / len(self.answers)

    @property
    def dispatch_overhead_us(self) -> float:
        """Mean dispatcher-side microseconds per accepted result batch."""
        if self.result_batches == 0:
            return 0.0
        return 1e6 * self.dispatch_seconds / self.result_batches

    @property
    def pipe_bytes_per_batch(self) -> float:
        """Mean result-channel pipe bytes per accepted batch."""
        if self.result_batches == 0:
            return 0.0
        return self.pipe_bytes / self.result_batches

    @property
    def stitch_us(self) -> float:
        """Mean dispatcher-side stitch microseconds per query."""
        if not self.answers:
            return 0.0
        return 1e6 * self.stitch_seconds / len(self.answers)

    def summary(self) -> dict:
        """The comparison row shared with ``ThroughputReport``."""
        row = {
            "workers": self.workers,
            "queries": len(self.answers),
            "qps": round(self.queries_per_second, 2),
            "p50_us": round(1e6 * self.p50_seconds, 3),
            "p99_us": round(1e6 * self.p99_seconds, 3),
            "restarts": self.restarts,
            "errors": self.error_count,
            "result_plane": self.result_plane,
            "dispatch_overhead_us": round(self.dispatch_overhead_us, 3),
            "pipe_bytes_per_batch": round(self.pipe_bytes_per_batch, 1),
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": round(self.cache_hit_ratio, 3),
            "precomputed_hits": self.precomputed_hits,
            "shed_rate": round(self.shed_rate, 3),
            "shards": self.shards,
            "cross_shard_ratio": round(self.cross_shard_ratio, 3),
        }
        if self.shards:
            row["stitch_plane"] = self.stitch_plane
            row["stitch_us"] = round(self.stitch_us, 3)
            row["closure_hits"] = self.closure_hits
            row["latency_split"] = self.latency_split
        return row


class _WorkerHandle:
    """One live worker process plus its pipe and outstanding chunks."""

    __slots__ = ("index", "process", "conn", "outstanding", "load_seconds",
                 "pid", "last_progress", "ping_sent_at")

    def __init__(self, index, process, conn, load_seconds, pid) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.load_seconds = load_seconds
        self.pid = pid
        #: ``{(epoch, seq): (start, queries)}`` sent but not yet answered.
        self.outstanding: dict[tuple[int, int], tuple[int, list]] = {}
        #: When this worker last produced evidence of progress.
        self.last_progress = time.perf_counter()
        #: When a deadline ping went out; ``None`` while healthy.
        self.ping_sent_at: float | None = None


def _wire_query(query) -> tuple:
    """Normalize a Query / (s, t, F) triple to the pipe representation."""
    if isinstance(query, Query):
        failed = tuple(query.failed) if query.failed else None
        return (query.source, query.target, failed)
    source, target, failed = query
    return (source, target, tuple(failed) if failed else None)


class QueryService:
    """A process pool serving DISO/ADISO queries from one snapshot.

    Parameters
    ----------
    snapshot_path:
        File written by :func:`repro.oracle.snapshot.save_snapshot`.
        Every worker maps it independently; the OS shares the pages.
    workers:
        Pool size (>= 1).
    start_method:
        ``multiprocessing`` start method.  ``None`` reads the
        ``DSO_SERVING_START_METHOD`` environment variable (how CI pins
        its fork x spawn matrix), then prefers ``fork`` (instant
        worker startup) with a ``spawn`` fallback.
    chunk_size:
        Queries per dispatched chunk; default splits each batch into
        roughly four chunks per worker to smooth load imbalance.
    max_restarts:
        Worker replacements tolerated within one ``run()`` before
        giving up with ``RuntimeError``.
    batch_timeout:
        Seconds a worker holding outstanding chunks may stay silent
        before the dispatcher pings it.  A pong triggers a re-send of
        its chunks (result lost in transit); silence past
        ``ping_timeout`` triggers replacement (worker hung).  Size this
        above the worst-case time to answer one chunk.
    ping_timeout:
        Seconds to wait for the pong before declaring the worker hung.
    fault_plan:
        Optional :class:`repro.serving.faults.FaultPlan` shipped to
        every spawned worker — the deterministic fault-injection rig
        used by the test suite.  Leave ``None`` in production.
    result_plane:
        ``"shm"`` (default) ships answers through a per-run
        shared-memory :class:`~repro.serving.ring.ResultRing`;
        ``"pipe"`` keeps the protocol-v2 all-pipe result channel for
        platforms without usable shared memory.  ``None`` reads the
        ``DSO_RESULT_PLANE`` environment variable, falling back to
        ``"shm"``.  Answers are identical either way.
    cache_size:
        When > 0, keep a dispatcher-level
        :class:`~repro.serving.cache.ResultCache` of at most this many
        finished answers keyed on ``(s, t, canonicalized F)``.  Cache
        hits (including within-batch duplicates) never reach a worker
        and are bitwise-identical to recomputation under the same
        snapshot epoch.  0 (default) disables caching entirely.
    hot_pairs:
        When > 0 (requires ``cache_size > 0``), track workload skew
        with a :class:`~repro.serving.cache.HotPairTracker` and
        precompute up to this many of the hottest uncached keys after
        each run, while the pool is idle
        (:meth:`refresh_hot_pairs`).
    deadline_ms:
        When set, arm :class:`~repro.serving.admission.
        DeadlineAdmission`: queries beyond what the pool can answer
        within this budget (per the observed service rate) are shed —
        NaN answer, ``"shed"`` status — instead of queued unboundedly.

    Examples
    --------
    >>> from repro import DISO, road_network, generate_queries
    >>> from repro.oracle.snapshot import save_snapshot
    >>> from repro.serving import QueryService
    >>> g = road_network(8, 8, seed=1)
    >>> path = save_snapshot(DISO(g, tau=3).freeze(), "/tmp/doc.dsosnap")
    >>> with QueryService(path, workers=2) as service:
    ...     report = service.run(generate_queries(g, 6, seed=2))
    >>> len(report.answers)
    6
    >>> report.error_count
    0
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        workers: int = 2,
        start_method: str | None = None,
        chunk_size: int | None = None,
        max_restarts: int | None = None,
        batch_timeout: float = 30.0,
        ping_timeout: float = 5.0,
        fault_plan=None,
        result_plane: str | None = None,
        cache_size: int = 0,
        hot_pairs: int = 0,
        deadline_ms: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_timeout <= 0 or ping_timeout <= 0:
            raise ValueError("batch_timeout and ping_timeout must be > 0")
        if cache_size < 0 or hot_pairs < 0:
            raise ValueError("cache_size and hot_pairs must be >= 0")
        if hot_pairs and not cache_size:
            raise ValueError(
                "hot-pair precomputation stores its answers in the result "
                "cache; pass cache_size > 0 alongside hot_pairs"
            )
        if result_plane is None:
            result_plane = os.environ.get("DSO_RESULT_PLANE") or "shm"
        if result_plane not in RESULT_PLANES:
            raise ValueError(
                f"result_plane must be one of {RESULT_PLANES}, "
                f"got {result_plane!r}"
            )
        self.result_plane = result_plane
        #: The current run's ring; ``None`` between runs / on the pipe
        #: plane.  Replacement/resend paths read it to rebuild batch
        #: messages mid-run.
        self._ring: ResultRing | None = None
        self.snapshot_path = str(snapshot_path)
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_restarts = (
            max_restarts if max_restarts is not None else 3 * workers
        )
        self.batch_timeout = batch_timeout
        self.ping_timeout = ping_timeout
        self.fault_plan = fault_plan
        if start_method is None:
            start_method = os.environ.get("DSO_SERVING_START_METHOD") or None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool: list[_WorkerHandle] = []
        self._restart_counts: list[int] = [0] * workers
        self._started = False
        #: Monotonic run counter; stamped into every batch id so the
        #: dispatcher can fence out results from aborted past runs.
        self._epoch = 0
        self.cache_size = cache_size
        self.hot_pairs = hot_pairs
        self.deadline_ms = deadline_ms
        self._cache = ResultCache(cache_size) if cache_size else None
        self._hot = HotPairTracker() if hot_pairs else None
        self._admission = (
            DeadlineAdmission(deadline_ms, workers)
            if deadline_ms is not None
            else None
        )
        #: Snapshot-epoch stamp for cache entries.  Distinct from the
        #: per-run ``_epoch`` fence: it advances only when the served
        #: snapshot is retired (``swap_snapshot``), at which point every
        #: cache entry stamped with an older value is dead.
        self._snapshot_epoch = 1
        #: Total answers precomputed by ``refresh_hot_pairs``.
        self.precomputed_total = 0
        self._poll_seconds = max(
            _MIN_POLL_SECONDS,
            min(_POLL_SECONDS, batch_timeout / 5.0, ping_timeout / 5.0),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Spawn the pool; blocks until every worker mapped the snapshot."""
        if self._started:
            return self
        self._pool = [self._spawn(index) for index in range(self.workers)]
        self._started = True
        return self

    def stop(self) -> None:
        """Shut the pool down, terminating any unresponsive worker."""
        for handle in self._pool:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):  # dsolint: disable=DSO403 -- stop is best-effort; a dead worker is already the goal state
                pass
        for handle in self._pool:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.conn.close()
        self._pool = []
        self._started = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                self.snapshot_path,
                child_conn,
                index,
                self.fault_plan,
                self._restart_counts[index],
            ),
            daemon=True,
            name=f"dso-worker-{index}",
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT):
            process.terminate()
            raise RuntimeError(
                f"worker {index} did not become ready within "
                f"{_READY_TIMEOUT:.0f}s"
            )
        message = parent_conn.recv()
        if message[0] == "error":
            process.join(timeout=5.0)
            raise RuntimeError(
                f"worker {index} failed to load snapshot "
                f"{self.snapshot_path!r}: {message[2]}"
            )
        info = message[2]
        return _WorkerHandle(
            index=index,
            process=process,
            conn=parent_conn,
            load_seconds=info.get("load_seconds", 0.0),
            pid=info.get("pid", process.pid or 0),
        )

    def _replace(self, handle: _WorkerHandle) -> _WorkerHandle:
        """Spawn a replacement and re-dispatch the dead worker's chunks."""
        handle.conn.close()
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        # Count the restart before spawning so the replacement sees its
        # own spawn generation (the fault rig targets generations).
        self._restart_counts[handle.index] += 1
        replacement = self._spawn(handle.index)
        for batch_id, (start, chunk) in handle.outstanding.items():
            replacement.outstanding[batch_id] = (start, chunk)
            replacement.conn.send(self._batch_message(batch_id, chunk))
        replacement.last_progress = time.perf_counter()
        self._pool[handle.index] = replacement
        return replacement

    @property
    def total_restarts(self) -> int:
        """Worker replacements since ``start()``, across all runs.

        Includes replacements made by the idle liveness sweep at the
        top of ``run()`` (``_ensure_alive``) for workers that died
        *between* runs, so this can exceed the sum of per-run
        ``ServeReport.restarts``.
        """
        return sum(self._restart_counts)

    def _ensure_alive(self) -> None:
        """Replace any worker that died while the service was idle."""
        for handle in list(self._pool):
            if not handle.process.is_alive():
                self._replace(handle)

    # ------------------------------------------------------------------
    # Test hook
    # ------------------------------------------------------------------
    def inject_crash(self, worker_index: int) -> None:
        """Ask one worker to die (exercises the replacement path)."""
        self._pool[worker_index].conn.send(("crash",))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(
        self, queries: Sequence, chunk_size: int | None = None
    ) -> ServeReport:
        """Answer ``queries`` across the pool; results keep input order.

        ``queries`` may be :class:`~repro.workload.queries.Query`
        objects or plain ``(source, target, failed)`` triples.

        A query that raises inside a worker does not abort the run (or
        restart anything): its slot in ``answers`` is NaN and
        ``ServeReport.errors`` carries the message at the same index.

        With caching enabled, repeats of finished queries (and
        duplicates within this batch) are answered from the dispatcher
        cache without reaching a worker; with a deadline armed,
        queries beyond the feasible budget come back NaN under a
        ``"shed"`` status.  Cache hits are bitwise-identical to what a
        worker would recompute under the current snapshot epoch.

        Raises
        ------
        RuntimeError
            If worker replacements exceed ``max_restarts`` during this
            run (e.g. a snapshot that crashes every worker), or a
            worker reports a protocol-level ``"error"``.  Every raise
            path clears outstanding-chunk bookkeeping and the epoch
            fence discards any late results, so a subsequent ``run()``
            or ``stop()`` sees a consistent pool.
        """
        if not self._started:
            self.start()
        self._ensure_alive()
        self._epoch += 1
        epoch = self._epoch
        wire = [_wire_query(query) for query in queries]
        total = len(wire)
        started = time.perf_counter()
        stats = [
            WorkerStats(
                index=handle.index,
                pid=handle.pid,
                load_seconds=handle.load_seconds,
            )
            for handle in self._pool
        ]
        metrics = {
            "dispatch_seconds": 0.0, "pipe_bytes": 0, "result_batches": 0,
        }

        # ---- cache lookup + within-batch dedup (before any dispatch) --
        cache_hits = 0
        precomputed_hits = 0
        shed_indices: list[int] = []
        keys: list | None = None
        #: leader position -> positions of identical queries this batch.
        duplicates: dict[int, list[int]] = {}
        if self._cache is not None:
            keys = [canonical_query_key(*triple) for triple in wire]
            if self._hot is not None:
                for key in keys:
                    self._hot.observe(key)
            full_answers: list[float] = [float("nan")] * total
            first_seen: dict = {}
            dispatch_positions: list[int] = []
            for position, key in enumerate(keys):
                hit = self._cache.get(key, self._snapshot_epoch)
                if hit is not None:
                    full_answers[position], was_precomputed = hit
                    cache_hits += 1
                    if was_precomputed:
                        precomputed_hits += 1
                    continue
                leader = first_seen.get(key)
                if leader is not None:
                    duplicates.setdefault(leader, []).append(position)
                else:
                    first_seen[key] = position
                    dispatch_positions.append(position)
        else:
            # Sized for the scatter path, which an admission-only
            # configuration (sheds without a cache) still takes.
            full_answers = [float("nan")] * total
            dispatch_positions = list(range(total))

        # ---- deadline admission: shed what cannot make the budget ----
        if self._admission is not None and dispatch_positions:
            admitted = self._admission.admit(len(dispatch_positions))
            if admitted < len(dispatch_positions):
                for position in dispatch_positions[admitted:]:
                    shed_indices.append(position)
                    # A duplicate of a shed leader is the same query:
                    # it is shed with it, never silently answered NaN.
                    shed_indices.extend(duplicates.pop(position, ()))
                dispatch_positions = dispatch_positions[:admitted]
                shed_indices.sort()

        # ``identity`` means the fast pre-dispatch stages passed every
        # query through untouched — the v2/v3 hot path, zero extra
        # copies or scatters.
        identity = self._cache is None and not shed_indices
        if identity:
            compact_wire = wire
        else:
            compact_wire = [wire[position] for position in dispatch_positions]
        n_dispatch = len(compact_wire)
        errors: list[str | None] = [None] * n_dispatch

        size = chunk_size or self.chunk_size
        if size is None:
            size = (
                max(1, math.ceil(n_dispatch / (self.workers * 4)))
                if n_dispatch
                else 1
            )
        ring: ResultRing | None = None
        if n_dispatch and self.result_plane == "shm":
            try:
                ring = ResultRing.create(math.ceil(n_dispatch / size), size)
            except (OSError, ValueError):
                ring = None  # no usable shared memory: pipe fallback
        if ring is not None:
            # Typed result buffers: per-batch harvesting memcpys ring
            # lanes straight into these (ring.read_into) and the floats
            # are boxed once, in bulk, after the collect loop — the
            # pipe plane has no such option (every payload must be
            # unpickled on arrival), which is exactly the per-batch
            # dispatch overhead the shm plane exists to shed.
            answer_buf = array("d", [float("nan")]) * n_dispatch
            latency_buf = array("d", [0.0]) * n_dispatch
            sink = (memoryview(answer_buf), memoryview(latency_buf))
            answers: list[float] = []
            latencies: list[float] = []
        else:
            answer_buf = latency_buf = sink = None
            answers = [float("nan")] * n_dispatch
            latencies = [0.0] * n_dispatch
        self._ring = ring
        try:
            if n_dispatch:
                self._dispatch_epoch(
                    epoch, compact_wire, n_dispatch, size, answers,
                    latencies, errors, stats, metrics, sink,
                )
            if ring is not None:
                answers[:] = answer_buf.tolist()
                latencies[:] = latency_buf.tolist()
        except BaseException:
            # Leave the pool consistent: forget every in-flight chunk.
            # The epoch fence makes any late results for them inert.
            for handle in self._pool:
                handle.outstanding.clear()
                handle.ping_sent_at = None
            raise
        finally:
            # The ring lives exactly one run: unlink it even on abort so
            # no segment can leak.  A straggling worker that still maps
            # the old segment only delays the kernel freeing the pages;
            # the name is gone and the next run gets a fresh ring.
            self._ring = None
            if ring is not None:
                ring.destroy()

        if not identity:
            # Scatter the compact results back to input positions, fan
            # the leaders' outcomes out to their duplicates, and fill
            # the cache with every successful fresh answer.
            full_latencies = [0.0] * total
            full_errors: list[str | None] = [None] * total
            for index, position in enumerate(dispatch_positions):
                full_answers[position] = answers[index]
                full_latencies[position] = latencies[index]
                full_errors[position] = errors[index]
            for leader, positions in duplicates.items():
                for position in positions:
                    full_answers[position] = full_answers[leader]
                    full_errors[position] = full_errors[leader]
                    cache_hits += 1
            if self._cache is not None:
                for index, position in enumerate(dispatch_positions):
                    if errors[index] is None:
                        self._cache.put(
                            keys[position],
                            answers[index],
                            self._snapshot_epoch,
                        )
            answers = full_answers
            latencies = full_latencies
            errors = full_errors
        if self._admission is not None and n_dispatch:
            self._admission.observe(
                n_dispatch, sum(s.busy_seconds for s in stats)
            )
        wall = time.perf_counter() - started
        report = ServeReport(
            answers=answers,
            latencies=latencies,
            wall_seconds=wall,
            workers=self.workers,
            per_worker=stats,
            restarts=sum(s.restarts for s in stats),
            errors=errors,
            result_plane="shm" if ring is not None else "pipe",
            dispatch_seconds=metrics["dispatch_seconds"],
            pipe_bytes=metrics["pipe_bytes"],
            result_batches=metrics["result_batches"],
            cache_hits=cache_hits,
            precomputed_hits=precomputed_hits,
            shed_indices=shed_indices,
        )
        # Idle-gap work: the batch is answered, the pool is quiet, the
        # tracker has fresh skew evidence — warm the hottest uncached
        # pairs now so the *next* run's hot traffic is a dict lookup.
        if self._hot is not None:
            self.refresh_hot_pairs()
        return report

    # ------------------------------------------------------------------
    # Caching plane (v4): snapshot epochs, hot-pair refresh, stats
    # ------------------------------------------------------------------
    @property
    def snapshot_epoch(self) -> int:
        """The epoch every current cache entry must be stamped with."""
        return self._snapshot_epoch

    def retire_snapshot_epoch(self) -> int:
        """Retire the current snapshot epoch; returns the new one.

        Every cached answer was computed under the old epoch and is now
        unservable: the epoch check in :meth:`ResultCache.get` refuses
        it lazily, and the eager sweep here returns the memory at once.
        """
        self._snapshot_epoch += 1
        if self._cache is not None:
            self._cache.retire_older_than(self._snapshot_epoch)
        return self._snapshot_epoch

    def swap_snapshot(self, snapshot_path: str | Path) -> int:
        """Serve ``snapshot_path`` from now on; retire the old epoch.

        Stops the pool, retargets it at the new file, bumps the
        snapshot epoch (killing every cache entry computed under the
        old snapshot), and restarts the workers if they were running.
        Returns the new snapshot epoch.
        """
        was_started = self._started
        if was_started:
            self.stop()
        self.snapshot_path = str(snapshot_path)
        epoch = self.retire_snapshot_epoch()
        if was_started:
            self.start()
        return epoch

    def refresh_hot_pairs(self, limit: int | None = None) -> int:
        """Precompute answers for the hottest uncached pairs.

        Dispatches up to ``limit`` (default ``hot_pairs``) of the
        tracker's hottest keys that have no live cache entry, and
        stores their answers flagged *precomputed* — hits on them are
        reported separately (``ServeReport.precomputed_hits``) so the
        benefit of the refresh is measurable.  Runs over the pipe
        result plane (the batches are tiny; a ring would cost more
        than it saves).  Called automatically after each ``run()``
        when ``hot_pairs > 0``; safe to call manually between runs.

        Returns the number of answers actually precomputed.
        """
        if self._hot is None or self._cache is None or not self._started:
            return 0
        budget = self.hot_pairs if limit is None else limit
        hot_keys = self._hot.top(budget, exclude=self._cache.contains)
        if not hot_keys:
            return 0
        wire = [
            (source, target, failed or None)
            for source, target, failed in hot_keys
        ]
        self._epoch += 1
        epoch = self._epoch
        count = len(wire)
        answers = [float("nan")] * count
        latencies = [0.0] * count
        errors: list[str | None] = [None] * count
        stats = [
            WorkerStats(index=handle.index, pid=handle.pid)
            for handle in self._pool
        ]
        metrics = {
            "dispatch_seconds": 0.0, "pipe_bytes": 0, "result_batches": 0,
        }
        size = max(1, math.ceil(count / self.workers))
        try:
            self._dispatch_epoch(
                epoch, wire, count, size, answers, latencies,
                errors, stats, metrics, None,
            )
        except BaseException:
            for handle in self._pool:
                handle.outstanding.clear()
                handle.ping_sent_at = None
            raise
        stored = 0
        for key, answer, message in zip(hot_keys, answers, errors):
            if message is None and self._cache.put(
                key, answer, self._snapshot_epoch, precomputed=True
            ):
                stored += 1
        self.precomputed_total += stored
        return stored

    def cache_stats(self) -> dict | None:
        """Snapshot of the result-cache counters; ``None`` if disabled."""
        if self._cache is None:
            return None
        return self._cache.stats()

    def admission_stats(self) -> dict | None:
        """Snapshot of the load-shedder counters; ``None`` if disabled."""
        if self._admission is None:
            return None
        return self._admission.stats()

    def _batch_message(self, batch_id, chunk) -> tuple:
        """The wire form of one chunk, carrying the run's ring spec."""
        if self._ring is None:
            return ("batch", batch_id, chunk)
        return ("batch", batch_id, chunk, self._ring.spec())

    def _dispatch_epoch(
        self, epoch, wire, total, size, answers, latencies, errors,
        stats, metrics, sink=None,
    ) -> None:
        """Deal chunks for one epoch and collect until none are pending."""
        pending: dict[tuple[int, int], int] = {}  # batch id -> worker slot
        restarts_this_run = 0
        seq = 0
        for start in range(0, total, size):
            chunk = wire[start : start + size]
            slot = seq % self.workers
            handle = self._pool[slot]
            batch_id = (epoch, seq)
            handle.outstanding[batch_id] = (start, chunk)
            pending[batch_id] = slot
            try:
                handle.conn.send(self._batch_message(batch_id, chunk))
            except (BrokenPipeError, OSError):
                restarts_this_run += self._check_restart_budget(
                    restarts_this_run
                )
                self._replace_and_requeue(handle, pending, stats)
            else:
                handle.last_progress = time.perf_counter()
            seq += 1

        while pending:
            conns = {
                handle.conn: handle
                for handle in self._pool
                if handle.outstanding
            }
            ready = connection_wait(list(conns), timeout=self._poll_seconds)
            now = time.perf_counter()
            for conn in ready:
                handle = conns[conn]
                if handle is not self._pool[handle.index]:
                    continue  # replaced earlier in this ready sweep
                try:
                    # Raw bytes first: the OS wait stays *outside* the
                    # dispatch-overhead window, which times only the
                    # result-plane work (unpickle + ring memcpy/splice).
                    payload_bytes = conn.recv_bytes()
                except (EOFError, OSError):
                    restarts_this_run += self._check_restart_budget(
                        restarts_this_run
                    )
                    self._replace_and_requeue(handle, pending, stats)
                    continue
                tick = time.perf_counter()
                message = pickle.loads(payload_bytes)
                kind = message[0]
                if kind == "error":
                    raise RuntimeError(
                        f"worker {handle.index}: {message[2]}"
                    )
                if kind == "pong":
                    if handle.ping_sent_at is not None and handle.outstanding:
                        # Alive but its results never arrived: re-send.
                        self._resend_outstanding(handle)
                    handle.ping_sent_at = None
                    handle.last_progress = now
                    continue
                if kind not in ("result", "result_shm"):
                    continue
                batch_id = message[1]
                # The epoch fence comes before any ring read: a stale
                # completion (deferred from an aborted run) never even
                # touches the current ring, and whatever the stale
                # worker wrote went to the *previous* run's ring, which
                # is already unlinked.
                if batch_id[0] != epoch:
                    continue  # stale epoch (aborted past run): drop
                if batch_id not in handle.outstanding:
                    continue  # duplicate after a re-send: drop
                start, chunk = handle.outstanding[batch_id]
                count = len(chunk)
                if kind == "result_shm":
                    busy = None
                    if self._ring is not None:
                        busy = self._ring.read_into(
                            batch_id[1], epoch, batch_id[1], count,
                            sink[0], sink[1], start,
                        )
                    if busy is None:
                        # Bad or missing stamp: the answers never landed
                        # (worker died mid-write, or a completion
                        # arrived without a usable ring).  Treat the
                        # result as lost — the deadline path re-sends.
                        continue
                    chunk_errors = message[4]
                else:
                    _, _, _, chunk_answers, chunk_latencies, busy, \
                        chunk_errors = message
                    count = len(chunk_answers)
                    if sink is not None:
                        # Worker-side pipe fallback inside an shm run:
                        # land the lists in the typed buffers so the
                        # end-of-run bulk boxing stays uniform.
                        sink[0][start : start + count] = array(
                            "d", chunk_answers
                        )
                        sink[1][start : start + count] = array(
                            "d", chunk_latencies
                        )
                    else:
                        answers[start : start + count] = chunk_answers
                        latencies[start : start + count] = chunk_latencies
                handle.outstanding.pop(batch_id)
                pending.pop(batch_id, None)
                handle.last_progress = now
                handle.ping_sent_at = None
                for position, message_text in chunk_errors:
                    errors[start + position] = message_text
                slot_stats = stats[handle.index]
                slot_stats.queries += count
                slot_stats.batches += 1
                slot_stats.busy_seconds += busy
                metrics["dispatch_seconds"] += time.perf_counter() - tick
                metrics["pipe_bytes"] += len(payload_bytes)
                metrics["result_batches"] += 1

            # Health sweep: silent deaths, deadlines, unanswered pings.
            for handle in list(self._pool):
                if not handle.outstanding:
                    continue
                if not handle.process.is_alive():
                    restarts_this_run += self._check_restart_budget(
                        restarts_this_run
                    )
                    self._replace_and_requeue(handle, pending, stats)
                    continue
                if handle.ping_sent_at is not None:
                    if now - handle.ping_sent_at > self.ping_timeout:
                        # Pinged and silent: hung inside a query.
                        restarts_this_run += self._check_restart_budget(
                            restarts_this_run
                        )
                        self._replace_and_requeue(handle, pending, stats)
                elif now - handle.last_progress > self.batch_timeout:
                    try:
                        handle.conn.send(("ping",))
                        handle.ping_sent_at = now
                    except (BrokenPipeError, OSError):
                        restarts_this_run += self._check_restart_budget(
                            restarts_this_run
                        )
                        self._replace_and_requeue(handle, pending, stats)

    def _resend_outstanding(self, handle: _WorkerHandle) -> None:
        """Re-send a responsive worker's outstanding chunks (lost results)."""
        for batch_id, (start, chunk) in handle.outstanding.items():
            handle.conn.send(self._batch_message(batch_id, chunk))
        handle.last_progress = time.perf_counter()

    def _replace_and_requeue(
        self,
        handle: _WorkerHandle,
        pending: dict,
        stats: list[WorkerStats],
    ) -> None:
        """Replace ``handle`` mid-run, updating pending + slot stats."""
        replacement = self._replace(handle)
        for batch_id in replacement.outstanding:
            pending[batch_id] = replacement.index
        slot_stats = stats[handle.index]
        slot_stats.restarts += 1
        slot_stats.pid = replacement.pid
        slot_stats.load_seconds += replacement.load_seconds

    def _check_restart_budget(self, restarts_this_run: int) -> int:
        """Increment-or-raise: returns 1 while under budget."""
        if restarts_this_run + 1 > self.max_restarts:
            self.stop()
            raise RuntimeError(
                f"exceeded {self.max_restarts} worker restarts in one run; "
                f"snapshot {self.snapshot_path!r} appears to crash workers"
            )
        return 1
