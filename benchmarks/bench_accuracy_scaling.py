"""Bench: approximate-method error versus graph scale.

The paper reports 2.9% mean error for ADISO-P on million-node graphs;
this reproduction sees ~15-25% at laptop scales.  This bench records
the error across three scales.  What it shows (and what EXPERIMENTS.md
reports): the error is dominated by the minority of queries whose
essential failures land adjacent to an endpoint's access region — the
one situation where committing to the pre-failure route forces a
disproportionate local detour.  The prevalence of such queries falls
only slowly with graph size (f_gen stays fixed while paths grow as
sqrt(n) on road grids), so the mean plateaus in the teens at these
scales instead of converging to the paper's figure.
"""

from __future__ import annotations

from repro.experiments.harness import exact_answers, run_batch
from repro.oracle.adiso_p import ADISOPartial
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

from bench_util import SEED, write_result


def test_adiso_p_error_vs_scale(benchmark):
    def measure():
        rows = []
        for scale in (0.3, 0.6, 1.2):
            graph = load_dataset("NY", scale=scale, seed=SEED)
            queries = generate_queries(
                graph, 12, f_gen=5, p=0.0005, seed=SEED
            )
            truth = exact_answers(graph, queries)
            oracle = ADISOPartial(
                graph, tau=3, theta=1.0, tau_h=2, num_landmarks=6,
                seed=SEED,
            )
            batch = run_batch(oracle, queries, truth)
            rows.append((graph.number_of_nodes(), batch.error_pct))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ADISO-P mean relative error vs graph size",
             "nodes | error %"]
    for nodes, error in rows:
        lines.append(f"{nodes:5d} | {error:6.2f}")
    write_result("accuracy_scaling", "\n".join(lines))
    # Error stays bounded at every scale (no pathological estimates)
    # and never underestimates (enforced by the unit/property tests).
    assert all(error < 40.0 for _, error in rows)
