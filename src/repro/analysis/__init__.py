"""``dsolint`` — AST-based invariant linter for the oracle stack.

The correctness story of this reproduction rests on invariants that
pytest only sees when they break at runtime: the parallel build plane
promises bitwise-identical snapshots at any jobs count (which depends
on every set that feeds serialized output being iterated under
``sorted``), the serving plane ships callables and fault plans across
process boundaries under both fork and spawn start methods, and the
message protocol encodes per-query errors as a NaN sentinel that must
never meet ``==``.  ``dsolint`` checks those invariants statically, on
every file, on every commit.

Rule families (full catalogue in :mod:`repro.analysis.rules` and
DESIGN.md §10):

* ``DSO1xx`` determinism — unordered iteration feeding ordered output,
  unseeded randomness, wall-clock time in library code.
* ``DSO2xx`` multiprocessing safety — unpicklable callables at process
  dispatch points, module-global mutable state written in
  worker-reachable code.
* ``DSO3xx`` float/sentinel hazards — ``==`` against NaN sentinels or
  non-integral float literals.
* ``DSO4xx`` protocol hygiene — bare ``except``, swallowed broad
  exceptions, silent pass-only handlers in worker loops.
* ``DSO5xx`` inter-procedural dataflow — unordered/unpicklable/NaN
  taints chased across call boundaries over the project call graph
  (:mod:`repro.analysis.dataflow`, DESIGN.md §15).
* ``DSO6xx`` protocol conformance — write-then-stamp ordering,
  epoch-fenced cache admission, lock/field coverage
  (:mod:`repro.analysis.protocol`).

Findings are suppressed inline with a justified comment::

    risky_line()  # dsolint: disable=DSO101 -- order provably irrelevant

Entry points: ``repro-dso lint [PATHS]`` on the command line,
:func:`lint_paths` / :func:`lint_source` from Python, and the
``tests/test_lint_clean.py`` gate that keeps ``src/`` finding-free.
"""

from __future__ import annotations

from repro.analysis.config import (
    DEFAULT_CONFIG,
    LintConfig,
    Profile,
    profile_for_path,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import Project, module_name_for
from repro.analysis.engine import (
    LintReport,
    changed_files,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporting import to_json, to_sarif, to_text
from repro.analysis.rules import RULES, RULE_CATALOGUE_VERSION, rule_catalogue
from repro.analysis.summaries import SummaryCache

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "Profile",
    "Project",
    "RULES",
    "RULE_CATALOGUE_VERSION",
    "SummaryCache",
    "apply_baseline",
    "changed_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "profile_for_path",
    "rule_catalogue",
    "to_json",
    "to_sarif",
    "to_text",
    "write_baseline",
    "Severity",
]
