"""DSO6xx — protocol-conformance rules.

Thin :class:`Rule` adapters over the state machines in
:mod:`repro.analysis.protocol`; the machines own the semantics, these
classes own the registry identity (id, severity, catalogue summary)
and the finding plumbing.  See DESIGN.md §15 for the protocols being
enforced and why each invariant exists.
"""

from __future__ import annotations

from repro.analysis.protocol import (
    check_epoch_fenced_puts,
    check_lock_coverage,
    check_write_then_stamp,
)
from repro.analysis.rules import Rule


class WriteThenStampRule(Rule):
    """DSO601: shm slot payload written after its stamp.

    The ring reader validates a slot by its ``(epoch, seq)`` stamp and
    then trusts the payload lanes; the writer's half of that contract
    is payload-first, stamp-last.  Any payload store downstream of the
    publishing stamp store re-opens the torn-read window.
    """

    rule_id = "DSO601"
    severity = "error"
    summary = "slot payload stored after its stamp was published"

    def run(self):
        for node, message in check_write_then_stamp(self.context.tree):
            self.report(node, message)
        return self.findings


class EpochFencedPutRule(Rule):
    """DSO602: cache insert without a snapshot-epoch argument.

    Snapshot-scoped caches invalidate by epoch; an insert that does
    not carry the epoch it was computed under can be admitted after a
    snapshot swap and serve a distance from the dead snapshot.
    """

    rule_id = "DSO602"
    severity = "error"
    summary = "cache .put() not fenced by a snapshot-epoch argument"

    def run(self):
        for node, message in check_epoch_fenced_puts(self.context.tree):
            self.report(node, message)
        return self.findings


class LockCoverageRule(Rule):
    """DSO603: lock does not cover every mutation of its fields.

    Mutating a field under ``self._lock`` in one method declares the
    field lock-protected; a second mutation path outside the lock is
    the half-guarded race that only fails under thread interleaving.
    """

    rule_id = "DSO603"
    severity = "error"
    summary = "field mutated both under a lock and outside it"

    def run(self):
        for node, message in check_lock_coverage(self.context.tree):
            self.report(node, message)
        return self.findings
