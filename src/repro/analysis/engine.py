"""Lint engine: parse files, run rules, apply suppressions.

Suppression grammar (checked per physical line, so it works without a
tokenizer pass)::

    expr()  # dsolint: disable=DSO101 -- why order cannot matter here
    # dsolint: disable-next=DSO102,DSO301 -- reason (applies to line+1)
    # dsolint: disable-file=DSO104 -- reason (whole file, any position)

The ``--`` justification is part of the contract: a suppression
*without* one still silences its target, but the engine then emits
``DSO001 suppression lacks a justification`` at the same line — the
gate stays red until the waiver says why.  This keeps "fixed" and
"consciously waived" the only two terminal states a finding can reach.

Findings attach to the first physical line of the offending node, so
for a multi-line comprehension the trailing comment goes on the line
where the expression starts.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import RULES, RuleContext

_SUPPRESS_RE = re.compile(
    r"#\s*dsolint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<ids>[A-Z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

META_RULE_ID = "DSO001"


@dataclass
class _Suppression:
    line: int  # line the suppression applies to (0 = whole file)
    rule_ids: frozenset[str]
    justification: str | None
    comment_line: int


@dataclass
class LintReport:
    """Everything one lint run learned."""

    findings: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files.extend(other.files)


def _parse_suppressions(source: str) -> list[_Suppression]:
    suppressions: list[_Suppression] = []
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = frozenset(
            part.strip()
            for part in match.group("ids").split(",")
            if part.strip()
        )
        if not ids:
            continue
        kind = match.group("kind")
        if kind == "disable-file":
            target = 0
        elif kind == "disable-next":
            target = number + 1
        else:
            target = number
        suppressions.append(
            _Suppression(
                line=target,
                rule_ids=ids,
                justification=match.group("reason"),
                comment_line=number,
            )
        )
    return suppressions


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[_Suppression],
    path: str,
) -> list[Finding]:
    """Mark suppressed findings; report unjustified suppressions."""
    used_without_reason: dict[int, _Suppression] = {}
    for finding in findings:
        for suppression in suppressions:
            if finding.rule_id not in suppression.rule_ids:
                continue
            if suppression.line not in (0, finding.line):
                continue
            finding.suppressed = True
            finding.justification = suppression.justification
            if suppression.justification is None:
                used_without_reason[suppression.comment_line] = suppression
            break
    for comment_line in sorted(used_without_reason):
        findings.append(
            Finding(
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                path=path,
                line=comment_line,
                col=0,
                message=(
                    "suppression lacks a justification; append "
                    "'-- <why this is safe>'"
                ),
            )
        )
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string as though it lived at ``path``.

    The path drives profile selection (see
    :mod:`repro.analysis.config`), which is what makes this directly
    testable: the same snippet linted under ``src/repro/oracle/x.py``
    and ``src/repro/experiments/x.py`` sees different rule sets.
    """
    config = config or DEFAULT_CONFIG
    profile = config.profile_for(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="DSO000",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = RuleContext.for_tree(path, tree)
    findings: list[Finding] = []
    for rule_cls in RULES:
        if not profile.rule_enabled(rule_cls.rule_id):
            continue
        findings.extend(rule_cls(context).run())
    findings = _apply_suppressions(
        findings, _parse_suppressions(source), path
    )
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def _python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # Deduplicate while keeping the sorted-walk order deterministic.
    unique: dict[str, Path] = {}
    for path in files:
        unique[str(path.resolve())] = path
    return [unique[key] for key in sorted(unique)]


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    report = LintReport()
    for path in _python_files(paths):
        text = path.read_text(encoding="utf-8")
        display = path.as_posix()
        report.files.append(display)
        report.findings.extend(lint_source(text, display, config))
    return report
