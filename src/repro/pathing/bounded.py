"""The bounded Dijkstra's algorithm (Section 4.1.1 of the paper).

The bounded Dijkstra's algorithm runs Dijkstra from a source node but is
"designed to avoid traversing beyond transit nodes except the source
node": when a settled node is a transit node (and not the source), its
out-edges are not relaxed.  Consequently it only explores paths that do
not pass *through* any transit node, and therefore:

* the set of transit nodes it settles is a superset ``A*_out(s)`` of the
  out-access nodes of ``s``, each with its exact access distance
  ``d_hat(s, u, F)``;
* when run from a transit node ``u`` it produces exactly the bounded
  shortest path tree ``G_u`` (Definition 4.2);
* when the destination ``t`` of a query is settled, the reported distance
  is ``d_hat(s, t, F)`` — the locality-filter answer of the TNR adaptation.

Running it over predecessor edges ("in" direction) yields ``A*_in(t)``
and the inbound access distances ``d_hat(u, t, F)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph, Edge
from repro.pathing.spt import INFINITY, ShortestPathTree


@dataclass
class BoundedSearchResult:
    """Outcome of one bounded Dijkstra run.

    Attributes
    ----------
    source:
        The start node of the search.
    direction:
        ``"out"`` for forward search, ``"in"`` for search over in-edges.
    dist:
        Distance from (or to, for ``"in"``) the source for every settled
        node, i.e. ``d_hat(source, v, F)``.
    parent:
        Predecessor map over the bounded search region.
    access:
        ``{transit_node: access_distance}`` — the superset ``A*`` of
        access nodes together with their exact distances.
    settled_count:
        Number of settled nodes, used as the ``c_B`` cost proxy in the
        experiment harness.
    """

    source: int
    direction: str
    dist: dict[int, float] = field(default_factory=dict)
    parent: dict[int, int | None] = field(default_factory=dict)
    access: dict[int, float] = field(default_factory=dict)
    settled_count: int = 0

    def distance(self, node: int) -> float:
        """Return ``d_hat(source, node)`` or ``inf`` if not reached."""
        return self.dist.get(node, INFINITY)

    def to_tree(self) -> ShortestPathTree:
        """Materialise the search as a (bounded) shortest path tree."""
        tree = ShortestPathTree(self.source)
        for node in sorted(self.dist, key=self.dist.__getitem__):
            if node == self.source:
                continue
            prev = self.parent[node]
            assert prev is not None
            tree.attach(node, prev, self.dist[node])
        return tree


def bounded_dijkstra(
    graph: DiGraph,
    source: int,
    transit: set[int],
    failed: set[Edge] | None = None,
    direction: str = "out",
) -> BoundedSearchResult:
    """Run the bounded Dijkstra's algorithm.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    source:
        Start node (for ``direction="in"``, the *destination* whose
        in-access nodes are wanted).
    transit:
        The transit node set ``T``.  Settled transit nodes other than
        ``source`` are not expanded.
    failed:
        Failed directed edges ``F`` (always expressed in the original
        graph orientation, also for ``direction="in"``).
    direction:
        ``"out"`` to search along out-edges, ``"in"`` along in-edges.

    Returns
    -------
    BoundedSearchResult
        Distances, parents, and the access-node superset with distances.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not in the graph.
    ValueError
        If ``direction`` is not ``"out"`` or ``"in"``.
    """
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)

    forward = direction == "out"
    result = BoundedSearchResult(source=source, direction=direction)
    dist = result.dist
    parent = result.parent
    access = result.access
    dist[source] = 0.0
    parent[source] = None
    if source in transit:
        access[source] = 0.0

    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    check_failed = bool(failed)

    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        is_boundary = node in transit and node != source
        if is_boundary:
            access[node] = d
            # Do not traverse beyond transit nodes.
            continue
        neighbors = (
            graph.successors(node) if forward else graph.predecessors(node)
        )
        for other, weight in neighbors.items():
            if other in settled:
                continue
            if check_failed:
                edge = (node, other) if forward else (other, node)
                if edge in failed:
                    continue
            candidate = d + weight
            if candidate < dist.get(other, INFINITY):
                dist[other] = candidate
                parent[other] = node
                heappush(heap, (candidate, other))
    result.settled_count = len(settled)
    return result


def out_access_nodes(
    graph: DiGraph,
    source: int,
    transit: set[int],
    failed: set[Edge] | None = None,
) -> dict[int, float]:
    """Return ``A*_out(source)`` with access distances ``d_hat(s, u, F)``.

    If ``source`` itself is a transit node the result is ``{source: 0.0}``
    — a transit source is its own (only needed) access node, because every
    path from it trivially starts at a transit node.
    """
    if source in transit:
        return {source: 0.0}
    return bounded_dijkstra(graph, source, transit, failed, "out").access


def in_access_nodes(
    graph: DiGraph,
    target: int,
    transit: set[int],
    failed: set[Edge] | None = None,
) -> dict[int, float]:
    """Return ``A*_in(target)`` with access distances ``d_hat(u, t, F)``."""
    if target in transit:
        return {target: 0.0}
    return bounded_dijkstra(graph, target, transit, failed, "in").access


def bounded_tree(
    graph: DiGraph,
    root: int,
    transit: set[int],
    failed: set[Edge] | None = None,
) -> ShortestPathTree:
    """Build the bounded shortest path tree ``G_root`` (Definition 4.2).

    ``root`` is expected to be a transit node; the tree contains every
    node reachable from it without passing through another transit node,
    with transit nodes themselves as leaves.
    """
    return bounded_dijkstra(graph, root, transit, failed, "out").to_tree()
