"""Accuracy of the approximate methods (Section 7.1, "Approximation").

The paper reports average relative errors of 0.6% (DISO-S), 2.9%
(ADISO-P), and 1.6% (FDDO) at its graph scales.  At this library's
reduced synthetic scales the *ordering pressure* differs — detours and
landmark estimates are proportionally larger on short paths — so the
recorded errors are larger in absolute terms; what must hold is that
all three stay bounded, that none ever underestimates, and that exact
methods report zero error (all verified by the test suite).
"""

from __future__ import annotations

from repro.baselines.fddo import FDDOOracle
from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import render_table
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso_s import DISOSparse
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries


def run_accuracy(
    road_dataset: str = "NY",
    social_dataset: str = "DBLP",
    scale: float = 0.5,
    query_count: int = 20,
    seed: int = 7,
    fddo_landmarks: int = 20,
) -> list[dict[str, object]]:
    """Measure the mean relative error of every approximate method.

    ADISO-P is measured on the road dataset and DISO-S on the social
    one, matching where the paper deploys each; FDDO on both.
    """
    rows: list[dict[str, object]] = []

    road_spec = DATASETS[road_dataset]
    road = load_dataset(road_dataset, scale=scale, seed=seed)
    road_queries = generate_queries(
        road, query_count, f_gen=5, p=0.0005, seed=seed
    )
    road_truth = exact_answers(road, road_queries)

    adiso_p = ADISOPartial(
        road,
        tau=road_spec.tau_adiso,
        theta=road_spec.theta,
        alpha=road_spec.alpha,
        seed=seed,
        tau_h=2,
    )
    batch = run_batch(adiso_p, road_queries, road_truth)
    rows.append(
        {
            "dataset": road_dataset,
            "method": "ADISO-P",
            "error_pct": batch.error_pct,
            "fallbacks": batch.fallback_count,
        }
    )
    fddo_road = FDDOOracle(road, num_landmarks=fddo_landmarks, seed=seed)
    batch = run_batch(fddo_road, road_queries, road_truth)
    rows.append(
        {
            "dataset": road_dataset,
            "method": "FDDO",
            "error_pct": batch.error_pct,
            "fallbacks": 0,
        }
    )

    social_spec = DATASETS[social_dataset]
    social = load_dataset(social_dataset, scale=scale, seed=seed)
    social_queries = generate_queries(
        social, query_count, f_gen=5, p=0.0005, seed=seed
    )
    social_truth = exact_answers(social, social_queries)

    diso_s = DISOSparse(
        social,
        beta=social_spec.beta,
        tau=social_spec.tau_diso,
        theta=social_spec.theta,
    )
    batch = run_batch(diso_s, social_queries, social_truth)
    rows.append(
        {
            "dataset": social_dataset,
            "method": "DISO-S",
            "error_pct": batch.error_pct,
            "fallbacks": batch.fallback_count,
        }
    )
    fddo_social = FDDOOracle(social, num_landmarks=fddo_landmarks, seed=seed)
    batch = run_batch(fddo_social, social_queries, social_truth)
    rows.append(
        {
            "dataset": social_dataset,
            "method": "FDDO",
            "error_pct": batch.error_pct,
            "fallbacks": 0,
        }
    )
    return rows


def format_accuracy(rows: list[dict[str, object]]) -> str:
    """Render the accuracy comparison."""
    display = [
        {
            "dataset": row["dataset"],
            "method": row["method"],
            "error": f"{row['error_pct']:.2f}%",
            "fallbacks": str(row["fallbacks"]),
        }
        for row in rows
    ]
    return render_table(
        display,
        columns=[
            ("dataset", "Data"),
            ("method", "Method"),
            ("error", "Avg rel err"),
            ("fallbacks", "Fallbacks"),
        ],
        title="Accuracy of approximate methods",
    )
