"""Bench: Table 5 — overall query time per method and dataset family.

One pytest-benchmark entry per (dataset family, method) pair, so the
benchmark summary table is directly comparable to the paper's Table 5,
plus a full-table run persisted to ``results/table5.txt``.

Expected shapes at synthetic scale: FDDO is orders of magnitude slower
than everything (update-then-rollback per query); the DISO family beats
DI on road networks.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.experiments.table5 import format_table5, run_table5
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_minus import DISOMinus
from repro.oracle.diso_s import DISOSparse
from repro.workload.datasets import DATASETS

from bench_util import (
    SCALE,
    SEED,
    dataset,
    latency_summary,
    merge_latency_json,
    queries,
    run_query_batch,
    write_result,
)


@lru_cache(maxsize=None)
def oracle(dataset_name: str, method: str):
    """Build (once) the oracle for a (dataset, method) pair."""
    graph = dataset(dataset_name)
    spec = DATASETS[dataset_name]
    if method == "DISO":
        return DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    if method == "DISO-":
        return DISOMinus(graph, tau=spec.tau_diso, theta=spec.theta)
    if method == "ADISO":
        return ADISO(
            graph, tau=spec.tau_adiso, theta=spec.theta,
            alpha=spec.alpha, seed=SEED,
        )
    if method == "ADISO-P":
        return ADISOPartial(
            graph, tau=spec.tau_adiso, theta=spec.theta,
            alpha=spec.alpha, seed=SEED, tau_h=2,
        )
    if method == "DISO-S":
        return DISOSparse(
            graph, beta=spec.beta, tau=spec.tau_diso, theta=spec.theta
        )
    if method == "FDDO":
        return FDDOOracle(graph, num_landmarks=20, seed=SEED)
    if method == "A*":
        return AStarOracle(graph, alpha=spec.alpha, seed=SEED)
    if method == "DI":
        return DijkstraOracle(graph)
    raise ValueError(method)


ROAD_METHODS = ("DISO-", "DISO", "ADISO", "ADISO-P", "FDDO", "A*", "DI")
SOCIAL_METHODS = ("DISO-", "DISO", "ADISO", "DISO-S", "FDDO", "A*", "DI")


@pytest.mark.parametrize("method", ROAD_METHODS)
def test_query_time_road(benchmark, method):
    batch = queries("NY")
    checksum = benchmark(run_query_batch, oracle("NY", method), batch)
    assert checksum >= 0.0


@pytest.mark.parametrize("method", SOCIAL_METHODS)
def test_query_time_social(benchmark, method):
    batch = queries("DBLP")
    checksum = benchmark(run_query_batch, oracle("DBLP", method), batch)
    assert checksum >= 0.0


def test_table5_full(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table5(
            datasets=("NY", "CAL", "DBLP", "POKE"),
            scale=SCALE,
            query_count=12,
            seed=SEED,
            fddo_landmarks=20,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("table5", format_table5(rows))
    merge_latency_json(
        {
            f"{row['method']}@{row['dataset']}": latency_summary(
                row["preprocess_seconds"], row["query_seconds"]
            )
            for row in rows
        }
    )
    by_key = {(row["dataset"], row["method"]): row for row in rows}
    # The paper's robust shape: FDDO is the slowest method everywhere.
    for name in ("NY", "CAL", "DBLP", "POKE"):
        fddo = by_key[(name, "FDDO")]["query_ms"]
        others = [
            row["query_ms"]
            for (data, method), row in by_key.items()
            if data == name and method != "FDDO"
        ]
        assert fddo > max(others)
