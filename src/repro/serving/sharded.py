"""Sharded serving: route queries to owning shards, stitch the rest.

:class:`ShardedQueryService` serves a sharded snapshot directory
(:func:`repro.sharding.snapshot.save_sharded_snapshot`).  The
dispatcher loads only the manifest — the
:class:`~repro.sharding.oracle.BorderOverlay` — and composes one inner
:class:`~repro.serving.service.QueryService` *per shard*, each mapping
exactly one ``shard-*.dsosnap`` file across its workers.  The full
index is never resident in any single process.

``run()`` turns each input query into shard-local *leg* queries
(DESIGN.md §13 routing table):

* same-shard ``(s, t)``: one **local** leg on the owning shard — plus
  the border legs below, because the true shortest path may leave the
  shard and return (the stitched answer is min-ed with the local one);
* every query whose source shard has borders: one **outbound** leg
  ``(s, b1, F_s)`` per source-shard border, and one **inbound** leg
  ``(b2, t, F_t)`` per target-shard border;
* every shard ``k`` with a non-empty owned failure set ``F_k``: a
  **repair** leg ``(a, b, F_k)`` per ordered border pair, rebuilding
  its type-2 overlay rows under the failures.

Legs are deduplicated per shard on the canonical ``(s, t, F)`` key —
two queries sharing a source and failure set share the outbound legs,
and every query in a batch under the same ``F_k`` shares one repair set
— then each shard's pool answers its batch through the ordinary
dispatcher (result planes, crash replacement, epoch fencing all
inherited).  Stitching runs in this process over the answered legs via
:func:`~repro.sharding.oracle.stitch_over_borders`.

Error semantics match the unsharded plane: a poison endpoint yields a
NaN answer and a ``"QueryError: ..."`` message (same text the worker
would produce), never an aborted run; a failed leg poisons exactly the
queries that needed it.
"""

from __future__ import annotations

import time
from pathlib import Path
from collections.abc import Sequence

from repro.serving.cache import canonical_query_key
from repro.serving.service import QueryService, ServeReport, _wire_query
from repro.serving.worker import QUERY_ERROR
from repro.sharding.oracle import INFINITY
from repro.sharding.snapshot import load_shard_plan_overlay


class _QueryPlan:
    """Routing decision for one input query (leg references by index)."""

    __slots__ = (
        "error", "shard_s", "shard_t", "local", "out_legs", "in_legs",
        "repairs", "cross_failed", "cross_shard",
    )

    def __init__(self) -> None:
        self.error: str | None = None
        self.shard_s = -1
        self.shard_t = -1
        #: ``(shard, leg index)`` of the local leg, or ``None``.
        self.local: tuple[int, int] | None = None
        #: ``[(border, (shard, leg index)), ...]`` source-side legs.
        self.out_legs: list = []
        #: ``[(border, (shard, leg index)), ...]`` target-side legs.
        self.in_legs: list = []
        #: ``{shard: [[leg ref or None per border pair]]}`` repair rows.
        self.repairs: dict[int, list[list]] = {}
        self.cross_failed = frozenset()
        self.cross_shard = False


class ShardedQueryService:
    """Serve a sharded snapshot directory with per-shard worker pools.

    Parameters
    ----------
    snapshot_dir:
        Directory written by
        :func:`repro.sharding.snapshot.save_sharded_snapshot`.
    workers_per_shard:
        Pool size of each shard's inner :class:`QueryService`.
    verify:
        Verify manifest and shard checksums while loading.
    start_method, result_plane, chunk_size, max_restarts,
    batch_timeout, ping_timeout:
        Forwarded to every inner :class:`QueryService`.

    Examples
    --------
    >>> from repro import DISO, grid_network
    >>> from repro.sharding import build_sharded, save_sharded_snapshot
    >>> from repro.serving.sharded import ShardedQueryService
    >>> g = grid_network(4, 4)
    >>> path = save_sharded_snapshot(
    ...     build_sharded(g, 2, seed=1), "/tmp/doc-sharded"
    ... )
    >>> with ShardedQueryService(path, workers_per_shard=1) as service:
    ...     report = service.run([(0, 15, None), (15, 0, ((0, 1),))])
    >>> report.shards
    2
    >>> report.error_count
    0
    """

    def __init__(
        self,
        snapshot_dir: str | Path,
        workers_per_shard: int = 1,
        verify: bool = True,
        start_method: str | None = None,
        result_plane: str | None = None,
        chunk_size: int | None = None,
        max_restarts: int | None = None,
        batch_timeout: float = 30.0,
        ping_timeout: float = 5.0,
    ) -> None:
        if workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        self.snapshot_dir = str(snapshot_dir)
        overlay, meta, shard_paths = load_shard_plan_overlay(
            snapshot_dir, verify=verify
        )
        self.overlay = overlay
        self.meta = meta
        self.shards = overlay.parts
        self.workers_per_shard = workers_per_shard
        self._services = [
            QueryService(
                path,
                workers=workers_per_shard,
                start_method=start_method,
                result_plane=result_plane,
                chunk_size=chunk_size,
                max_restarts=max_restarts,
                batch_timeout=batch_timeout,
                ping_timeout=ping_timeout,
            )
            for path in shard_paths
        ]
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedQueryService":
        """Start every shard pool (lazy on first ``run()`` otherwise)."""
        for service in self._services:
            service.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop every shard pool."""
        for service in self._services:
            service.stop()
        self._started = False

    def __enter__(self) -> "ShardedQueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def workers(self) -> int:
        """Total workers across every shard pool."""
        return self.shards * self.workers_per_shard

    @property
    def total_restarts(self) -> int:
        """Worker replacements across all shard pools since start."""
        return sum(service.total_restarts for service in self._services)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _plan_queries(
        self, wire: list[tuple]
    ) -> tuple[list[_QueryPlan], list[list[tuple]]]:
        """Turn wire queries into per-shard leg batches plus plans."""
        overlay = self.overlay
        assignment = overlay.assignment
        shard_legs: list[list[tuple]] = [[] for _ in range(self.shards)]
        leg_index: list[dict] = [{} for _ in range(self.shards)]
        #: ``(shard, canonical F_k) -> repair leg-ref rows`` — one
        #: repair set per distinct failure set per shard per batch.
        repair_rows: dict[tuple, list[list]] = {}

        def leg(shard: int, source: int, target: int, failed) -> tuple[int, int]:
            key = canonical_query_key(source, target, failed)
            index = leg_index[shard].get(key)
            if index is None:
                index = len(shard_legs[shard])
                leg_index[shard][key] = index
                shard_legs[shard].append(
                    (source, target, tuple(failed) if failed else None)
                )
            return (shard, index)

        plans: list[_QueryPlan] = []
        for source, target, failed in wire:
            plan = _QueryPlan()
            plans.append(plan)
            if source not in assignment:
                plan.error = (
                    f"QueryError: source node {source!r} is not in the graph"
                )
                continue
            if target not in assignment:
                plan.error = (
                    f"QueryError: target node {target!r} is not in the graph"
                )
                continue
            try:
                per_shard, cross_failed = overlay.split_failures(failed)
            except Exception as exc:
                plan.error = f"{type(exc).__name__}: {exc}"
                continue
            plan.shard_s = assignment[source]
            plan.shard_t = assignment[target]
            plan.cross_shard = plan.shard_s != plan.shard_t
            plan.cross_failed = cross_failed
            f_s = per_shard.get(plan.shard_s, frozenset())
            f_t = per_shard.get(plan.shard_t, frozenset())
            if not plan.cross_shard:
                plan.local = leg(plan.shard_s, source, target, f_s)
            borders_s = overlay.shard_borders[plan.shard_s]
            borders_t = overlay.shard_borders[plan.shard_t]
            if not borders_s or not borders_t:
                continue  # local answer (or inf) is already exact
            plan.out_legs = [
                (border, leg(plan.shard_s, source, border, f_s))
                for border in borders_s
            ]
            plan.in_legs = [
                (border, leg(plan.shard_t, border, target, f_t))
                for border in borders_t
            ]
            for shard in overlay.shards_touched(per_shard):
                failures = per_shard[shard]
                rows_key = (shard, canonical_query_key(0, 0, failures)[2])
                rows = repair_rows.get(rows_key)
                if rows is None:
                    borders = overlay.shard_borders[shard]
                    rows = [
                        [
                            None if a == b else leg(shard, a, b, failures)
                            for b in borders
                        ]
                        for a in borders
                    ]
                    repair_rows[rows_key] = rows
                plan.repairs[shard] = rows
        return plans, shard_legs

    # ------------------------------------------------------------------
    # Dispatch + stitch
    # ------------------------------------------------------------------
    def run(
        self, queries: Sequence, chunk_size: int | None = None
    ) -> ServeReport:
        """Answer ``queries``, stitching cross-shard ones over borders.

        Answers keep input order and are bitwise-identical (NaN
        sentinel included) to the unsharded frozen oracle whenever
        float addition over the graph's weights is exact — the
        property the sharded parity suite locks down.
        """
        started = time.perf_counter()
        for service in self._services:
            if not service._started:
                service.start()
        self._started = True
        wire = [_wire_query(query) for query in queries]
        plans, shard_legs = self._plan_queries(wire)

        reports: list[ServeReport | None] = [None] * self.shards
        for shard, legs in enumerate(shard_legs):
            if legs:
                reports[shard] = self._services[shard].run(
                    legs, chunk_size=chunk_size
                )

        def leg_value(ref: tuple[int, int]) -> tuple[float, str | None]:
            shard, index = ref
            report = reports[shard]
            return report.answers[index], report.errors[index]

        answers: list[float] = []
        latencies: list[float] = []
        errors: list[str | None] = []
        perf = time.perf_counter
        for plan in plans:
            tick = perf()
            answer, message = self._stitch(plan, leg_value)
            answers.append(answer)
            errors.append(message)
            latencies.append(perf() - tick)

        # Aggregate the shard pools' accounting into one report.
        per_worker = []
        restarts = 0
        dispatch_seconds = 0.0
        pipe_bytes = 0
        result_batches = 0
        planes = set()
        for report in reports:
            if report is None:
                continue
            restarts += report.restarts
            dispatch_seconds += report.dispatch_seconds
            pipe_bytes += report.pipe_bytes
            result_batches += report.result_batches
            planes.add(report.result_plane)
            per_worker.extend(report.per_worker)
        for slot, stats in enumerate(per_worker):
            stats.index = slot
        cross = sum(1 for plan in plans if plan.cross_shard)
        return ServeReport(
            answers=answers,
            latencies=latencies,
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
            per_worker=per_worker,
            restarts=restarts,
            errors=errors,
            result_plane="pipe" if not planes else (
                "shm" if planes == {"shm"} else "pipe"
            ),
            dispatch_seconds=dispatch_seconds,
            pipe_bytes=pipe_bytes,
            result_batches=result_batches,
            shards=self.shards,
            cross_shard_ratio=(cross / len(wire)) if wire else 0.0,
            shard_loads=[len(legs) for legs in shard_legs],
        )

    def _stitch(
        self, plan: _QueryPlan, leg_value
    ) -> tuple[float, str | None]:
        """Combine one query's answered legs into its final answer."""
        if plan.error is not None:
            return QUERY_ERROR, plan.error

        local = INFINITY
        if plan.local is not None:
            local, message = leg_value(plan.local)
            if message is not None:
                return QUERY_ERROR, message
        if not plan.out_legs:
            return local, None

        sources = []
        for border, ref in plan.out_legs:
            value, message = leg_value(ref)
            if message is not None:
                return QUERY_ERROR, message
            sources.append((border, value))
        targets = {}
        for border, ref in plan.in_legs:
            value, message = leg_value(ref)
            if message is not None:
                return QUERY_ERROR, message
            if value < INFINITY:
                targets[border] = value
        repaired = {}
        for shard, ref_rows in plan.repairs.items():
            rows = []
            for ref_row in ref_rows:
                row = []
                for ref in ref_row:
                    if ref is None:
                        row.append(0.0)
                        continue
                    value, message = leg_value(ref)
                    if message is not None:
                        return QUERY_ERROR, message
                    row.append(value)
                rows.append(row)
            repaired[shard] = rows

        from repro.sharding.oracle import stitch_over_borders

        adjacency = self.overlay.adjacency(repaired, plan.cross_failed)
        return (
            stitch_over_borders(
                sources, targets, adjacency, upper_bound=local
            ),
            None,
        )
