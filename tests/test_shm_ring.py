"""Lifecycle and integrity of the shared-memory result plane.

The ring (DESIGN.md §11) carries every answer of an shm-plane run, so
its stamp protocol must reject anything half-written or stale, both
planes must produce byte-identical reports, and — the non-negotiable —
no ``/dev/shm`` segment may outlive a run, whether it ended cleanly,
with an injected crash, or with a hang-and-replace.  The leak scans key
on :data:`repro.serving.ring.NAME_PREFIX`; every segment this module
ever creates is accounted for against a baseline snapshot, so the
tests stay correct even when run in parallel with themselves.

Set ``DSO_SERVING_START_METHOD=spawn`` (or ``fork``) to pin the
multiprocessing start method — CI runs this file under both, crossed
with both ``DSO_RESULT_PLANE`` values.
"""

from __future__ import annotations

import math
import os
import time
from array import array

import pytest

from repro.oracle.diso import DISO
from repro.oracle.snapshot import save_snapshot
from repro.serving import FaultPlan, QueryService
from repro.serving.ring import HEADER_FLOATS, NAME_PREFIX, ResultRing
from repro.workload.queries import generate_queries
from util import random_graph

START_METHOD = os.environ.get("DSO_SERVING_START_METHOD") or None

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="no /dev/shm: POSIX shared memory not observable",
)


def ring_segments() -> set[str]:
    """Names of every live ring segment on this box."""
    return {
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith(NAME_PREFIX)
    }


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave ``/dev/shm`` exactly as it found it."""
    before = ring_segments()
    yield
    # Replacement-worker teardown can lag a beat behind run();
    # segments are unlinked by the dispatcher so any residue is a bug,
    # but give the kernel a moment before declaring one.
    for _ in range(40):
        leaked = ring_segments() - before
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def make_service(path, **kwargs) -> QueryService:
    kwargs.setdefault("start_method", START_METHOD)
    return QueryService(path, **kwargs)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    graph = random_graph(23, n=36, extra=80)
    frozen = DISO(graph, tau=3).freeze()
    batch = generate_queries(graph, 20, f_gen=2, p=0.01, seed=6)
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    path = save_snapshot(
        frozen, tmp_path_factory.mktemp("ring") / "o.dsosnap"
    )
    return path, batch, expected


class TestRingProtocol:
    def test_roundtrip_preserves_floats_and_nan(self):
        ring = ResultRing.create(slots=3, capacity=4)
        try:
            answers = [1.5, float("nan"), float("inf")]
            latencies = [0.25, 0.5, 0.75]
            ring.write(1, epoch=2, seq=1, answers=answers,
                       latencies=latencies, busy_seconds=0.125)
            got = ring.read(1, epoch=2, seq=1, count=3)
            assert got is not None
            got_answers, got_latencies, busy = got
            assert got_answers[0] == 1.5 and math.isnan(got_answers[1])
            assert got_answers[2] == float("inf")
            assert got_latencies == latencies
            assert busy == 0.125
        finally:
            ring.destroy()

    def test_unwritten_and_mismatched_stamps_read_none(self):
        ring = ResultRing.create(slots=2, capacity=3)
        try:
            assert ring.read(0, epoch=1, seq=0, count=2) is None
            ring.write(0, epoch=1, seq=0, answers=[1.0, 2.0],
                       latencies=[0.0, 0.0], busy_seconds=0.0)
            assert ring.read(0, epoch=1, seq=0, count=2) is not None
            # Any stale coordinate rejects: epoch, seq, or count.
            assert ring.read(0, epoch=2, seq=0, count=2) is None
            assert ring.read(0, epoch=1, seq=1, count=2) is None
            assert ring.read(0, epoch=1, seq=0, count=3) is None
        finally:
            ring.destroy()

    def test_read_into_lands_payload_at_offset(self):
        ring = ResultRing.create(slots=2, capacity=3)
        try:
            ring.write(1, epoch=4, seq=1, answers=[7.0, float("nan")],
                       latencies=[0.1, 0.2], busy_seconds=1.5)
            answers = array("d", [0.0]) * 6
            latencies = array("d", [0.0]) * 6
            busy = ring.read_into(
                1, 4, 1, 2, memoryview(answers), memoryview(latencies), 3
            )
            assert busy == 1.5
            assert answers[3] == 7.0 and math.isnan(answers[4])
            assert list(latencies[3:5]) == [0.1, 0.2]
            assert list(answers[:3]) == [0.0] * 3  # untouched
            stale = ring.read_into(
                1, 5, 1, 2, memoryview(answers), memoryview(latencies), 0
            )
            assert stale is None
        finally:
            ring.destroy()

    def test_attach_sees_owner_writes(self):
        ring = ResultRing.create(slots=1, capacity=2)
        try:
            other = ResultRing.attach(ring.spec())
            ring.write(0, epoch=1, seq=0, answers=[3.0],
                       latencies=[0.5], busy_seconds=0.0)
            got = other.read(0, epoch=1, seq=0, count=1)
            assert got is not None and got[0] == [3.0]
            other.close()
            other.close()  # idempotent
            # The attached close must not have unlinked the segment.
            assert ring.name in ring_segments()
        finally:
            ring.destroy()
            ring.destroy()  # idempotent
        assert ring.name not in ring_segments()

    def test_write_overflow_and_bad_slot_raise(self):
        ring = ResultRing.create(slots=1, capacity=2)
        try:
            with pytest.raises(ValueError, match="exceeds slot capacity"):
                ring.write(0, 1, 0, [1.0, 2.0, 3.0], [0.0] * 3, 0.0)
            with pytest.raises(IndexError):
                ring.read(5, 1, 0, 1)
        finally:
            ring.destroy()

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ResultRing.create(slots=0, capacity=4)
        with pytest.raises(ValueError):
            ResultRing.create(slots=4, capacity=0)

    def test_fresh_ring_is_zero_filled(self):
        ring = ResultRing.create(slots=2, capacity=2)
        try:
            lanes = 2 * (HEADER_FLOATS + 2 * 2)
            assert ring._view[:lanes].tolist() == [0.0] * lanes
        finally:
            ring.destroy()


class TestServicePlanes:
    def test_both_planes_identical_reports(self, served):
        path, batch, expected = served
        # A poison query mid-batch: the NaN sentinel and the error
        # message must survive both result channels identically.
        poisoned = list(batch[:10]) + [(0, 10**9, None)] + list(batch[10:])
        reports = {}
        for plane in ("shm", "pipe"):
            with make_service(path, workers=2, result_plane=plane) as svc:
                reports[plane] = svc.run(poisoned)
        shm, pipe = reports["shm"], reports["pipe"]
        assert shm.result_plane == "shm" and pipe.result_plane == "pipe"
        assert len(shm.answers) == len(poisoned)
        for a, b in zip(shm.answers, pipe.answers):
            assert a == b or (math.isnan(a) and math.isnan(b))
        assert shm.answers[:10] == expected[:10]
        assert math.isnan(shm.answers[10])
        assert shm.errors == pipe.errors
        assert shm.error_indices == [10]
        # The whole point of the shm plane: answers never cross the pipe.
        assert shm.pipe_bytes < pipe.pipe_bytes

    def test_env_knob_selects_plane(self, served, monkeypatch):
        path, batch, expected = served
        monkeypatch.setenv("DSO_RESULT_PLANE", "pipe")
        with make_service(path, workers=1) as svc:
            assert svc.result_plane == "pipe"
            report = svc.run(batch)
        assert report.result_plane == "pipe"
        assert report.answers == expected
        monkeypatch.setenv("DSO_RESULT_PLANE", "shm")
        with make_service(path, workers=1) as svc:
            assert svc.result_plane == "shm"
            assert svc.run(batch).result_plane == "shm"

    def test_explicit_plane_overrides_env(self, served, monkeypatch):
        path, _, _ = served
        monkeypatch.setenv("DSO_RESULT_PLANE", "pipe")
        assert QueryService(path, result_plane="shm").result_plane == "shm"

    def test_rejects_unknown_plane(self, served):
        path, _, _ = served
        with pytest.raises(ValueError):
            QueryService(path, result_plane="carrier-pigeon")


class TestNoLeaks:
    """The autouse fixture asserts the scan; these drive the paths."""

    def test_normal_runs_leave_nothing(self, served):
        path, batch, expected = served
        with make_service(path, workers=2) as svc:
            for _ in range(3):
                assert svc.run(batch).answers == expected
                # The per-run ring is destroyed before run() returns.
                assert ring_segments() == set()

    def test_injected_crash_leaves_nothing(self, served):
        path, batch, expected = served
        plan = FaultPlan.single("crash", at=2, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan, chunk_size=4
        ) as svc:
            report = svc.run(batch)
        assert report.answers == expected
        assert report.restarts == 1

    def test_hang_and_replace_leaves_nothing(self, served):
        path, batch, expected = served
        plan = FaultPlan.single("hang", at=1, worker=0, seconds=60.0)
        with make_service(
            path, workers=2, fault_plan=plan, chunk_size=4,
            batch_timeout=0.4, ping_timeout=0.4,
        ) as svc:
            report = svc.run(batch)
        assert report.answers == expected
        assert report.restarts >= 1

    def test_aborted_run_unlinks_ring(self, served):
        path, batch, _ = served
        plan = FaultPlan.single("error_reply", at=1, worker=0)
        with make_service(
            path, workers=2, fault_plan=plan, chunk_size=4
        ) as svc:
            with pytest.raises(RuntimeError, match="injected error reply"):
                svc.run(batch)
            assert ring_segments() == set()
