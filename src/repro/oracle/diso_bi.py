"""DISO-B — DISO with a bidirectional overlay search.

Section 4.1.3 of the paper notes: "If we construct this query algorithm
based on a more efficient online shortest path algorithm like the
bidirectional Dijkstra's algorithm, the query algorithm will run
faster."  This variant implements exactly that suggestion: the
Dijkstra-like procedure on the distance graph runs simultaneously from
the out-access nodes of ``s`` (forward, over out-edges) and the
in-access nodes of ``t`` (backward, over in-edges), stopping when the
frontier radii cross the best meeting distance.

Lazy recomputation carries over with one twist: the *backward* search
relaxes an overlay edge ``(x, v)`` while popping ``v``, so the
recomputed out-weights of an affected ``x`` are needed edge-by-edge.
They are computed once per affected node encountered and memoized for
the rest of the query (never written to the shared index — the stall
avoidance argument of Section 4.2 is unchanged).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.graph.digraph import Edge
from repro.oracle.base import INFINITY, QueryStats
from repro.oracle.diso import DISO


class DISOBidirectional(DISO):
    """DISO with the bidirectional Dijkstra-like overlay procedure."""

    name = "DISO-B"
    exact = True

    def _overlay_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed: frozenset[Edge],
        affected: set[int],
        stats: QueryStats,
        upper_bound: float,
        target: int | None = None,
    ) -> float:
        """Bidirectional Dijkstra over ``D`` with memoized recomputation."""
        overlay = self.distance_graph.graph
        import time

        recompute_cache: dict[int, dict[int, float]] = {}
        recompute_seconds = 0.0
        recomputed_nodes = 0

        def out_weights(node: int) -> dict[int, float]:
            nonlocal recompute_seconds, recomputed_nodes
            if node not in affected:
                return overlay.successors(node)
            cached = recompute_cache.get(node)
            if cached is None:
                tick = time.perf_counter()
                cached = self._recomputed_weights(node, failed)
                recompute_seconds += time.perf_counter() - tick
                recomputed_nodes += 1
                recompute_cache[node] = cached
            return cached

        best = upper_bound
        dist_f: dict[int, float] = {}
        dist_b: dict[int, float] = {}
        heap_f: list[tuple[float, int]] = []
        heap_b: list[tuple[float, int]] = []
        for node, d in seeds.items():
            dist_f[node] = d
            heappush(heap_f, (d, node))
            other = into_target.get(node)
            if other is not None and d + other < best:
                best = d + other
        for node, d in into_target.items():
            dist_b[node] = d
            heappush(heap_b, (d, node))
        settled_f: set[int] = set()
        settled_b: set[int] = set()

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else INFINITY
            top_b = heap_b[0][0] if heap_b else INFINITY
            if top_f + top_b >= best:
                break
            if top_f <= top_b:
                d, node = heappop(heap_f)
                if node in settled_f:
                    continue
                settled_f.add(node)
                for head, weight in out_weights(node).items():
                    if head in settled_f or head == node:
                        continue
                    candidate = d + weight
                    if candidate < dist_f.get(head, INFINITY):
                        dist_f[head] = candidate
                        heappush(heap_f, (candidate, head))
                    meeting = candidate + dist_b.get(head, INFINITY)
                    if meeting < best:
                        best = meeting
            else:
                d, node = heappop(heap_b)
                if node in settled_b:
                    continue
                settled_b.add(node)
                for tail in overlay.predecessors(node):
                    if tail in settled_b or tail == node:
                        continue
                    weight = out_weights(tail).get(node)
                    if weight is None:
                        # The edge vanished under the failures.
                        continue
                    candidate = d + weight
                    if candidate < dist_b.get(tail, INFINITY):
                        dist_b[tail] = candidate
                        heappush(heap_b, (candidate, tail))
                    meeting = candidate + dist_f.get(tail, INFINITY)
                    if meeting < best:
                        best = meeting

        stats.overlay_settled += len(settled_f) + len(settled_b)
        stats.recompute_seconds += recompute_seconds
        stats.recomputed_nodes += recomputed_nodes
        return best
