"""Whole-program engine tests: DSO5xx dataflow, DSO6xx conformance,
summary caching, --changed mode, baselines, and SARIF.

The centerpiece regression is the cross-file DSO501 case the tentpole
exists for: a helper in one file captures a set's iteration order, a
caller two files away serializes the captured value — the per-file
pass on the caller provably finds nothing, the project pass flags the
sink line.
"""

from __future__ import annotations

import json
import subprocess
import textwrap

import pytest

from repro.analysis import (
    RULE_CATALOGUE_VERSION,
    SummaryCache,
    apply_baseline,
    changed_files,
    lint_paths,
    lint_source,
    load_baseline,
    module_name_for,
    rule_catalogue,
    to_sarif,
    write_baseline,
)
from repro.analysis.baseline import fingerprint

WORKER = "src/repro/serving/fixture.py"


def ids(snippet: str, path: str = WORKER) -> list[str]:
    findings = lint_source(textwrap.dedent(snippet), path)
    return [f.rule_id for f in findings if not f.suppressed]


def make_project(tmp_path, files: dict[str, str]):
    """Write ``{relative path: source}`` under a tmp repo root."""
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    package = tmp_path / "src" / "repro"
    for directory in sorted(
        {package, *[(tmp_path / rel).parent for rel in files]}
    ):
        if directory.is_relative_to(tmp_path / "src"):
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")


HELPER_A = """
    def collect(items: set) -> list:
        order = [item for item in items]
        return order
"""

CALLER_B = """
    import json

    from repro.oracle.helper import collect


    def snapshot(failed: set, handle):
        payload = collect(failed)
        json.dump(payload, handle)
"""


def cross_file_fixture(tmp_path, caller: str = CALLER_B):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/helper.py": HELPER_A,
            "src/repro/oracle/writer.py": caller,
        },
    )


# ----------------------------------------------------------------------
# DSO501 — unordered iteration order reaching a serialization sink
# ----------------------------------------------------------------------

def test_dso501_cross_file_sink(tmp_path, monkeypatch):
    """The seeded regression: taint in helper A, sink in caller B."""
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    # The per-file pass on the caller alone sees nothing: the set
    # never appears in writer.py, only an opaque call result does.
    caller_source = (
        tmp_path / "src/repro/oracle/writer.py"
    ).read_text(encoding="utf-8")
    assert lint_source(caller_source, "src/repro/oracle/writer.py") == []
    report = lint_paths(["src"])
    flagged = [f for f in report.unsuppressed if f.rule_id == "DSO501"]
    assert len(flagged) == 1
    (finding,) = flagged
    assert finding.path == "src/repro/oracle/writer.py"
    assert "json.dump" in finding.message
    # The helper's own DSO101 still fires locally too.
    assert any(f.rule_id == "DSO101" for f in report.unsuppressed)


def test_dso501_sorted_at_source_is_clean(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/helper.py": """
                def collect(items: set) -> list:
                    return sorted(items)
            """,
            "src/repro/oracle/writer.py": CALLER_B,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert [f.rule_id for f in report.unsuppressed] == []


def test_dso501_taint_through_middleman(tmp_path, monkeypatch):
    """Three files: source -> pass-through -> sink."""
    make_project(
        tmp_path,
        {
            "src/repro/oracle/helper.py": HELPER_A,
            "src/repro/oracle/middle.py": """
                from repro.oracle.helper import collect


                def relay(items: set) -> list:
                    return collect(items)
            """,
            "src/repro/oracle/writer.py": """
                import json

                from repro.oracle.middle import relay


                def snapshot(failed: set, handle):
                    json.dump(relay(failed), handle)
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    flagged = [f for f in report.unsuppressed if f.rule_id == "DSO501"]
    assert [f.path for f in flagged] == ["src/repro/oracle/writer.py"]


def test_dso501_sink_param_call_site(tmp_path, monkeypatch):
    """Passing a raw set into a function that serializes it."""
    make_project(
        tmp_path,
        {
            "src/repro/oracle/sink.py": """
                import json


                def dump_rows(rows, handle):
                    json.dump([row for row in rows], handle)
            """,
            "src/repro/oracle/caller.py": """
                from repro.oracle.sink import dump_rows


                def snapshot(handle):
                    failed = {(1, 2), (3, 4)}
                    dump_rows(failed, handle)
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    flagged = [f for f in report.unsuppressed if f.rule_id == "DSO501"]
    assert "src/repro/oracle/caller.py" in [f.path for f in flagged]


# ----------------------------------------------------------------------
# Suppression interaction at the sink
# ----------------------------------------------------------------------

SUPPRESSED_CALLER = """
    import json

    from repro.oracle.helper import collect


    def snapshot(failed: set, handle):
        payload = collect(failed)
        json.dump(payload, handle)  # dsolint: disable=DSO501 -- parity test covers this path
"""

UNJUSTIFIED_CALLER = """
    import json

    from repro.oracle.helper import collect


    def snapshot(failed: set, handle):
        payload = collect(failed)
        json.dump(payload, handle)  # dsolint: disable=DSO501
"""


def test_dso501_suppressed_at_sink(tmp_path, monkeypatch):
    """A justified waiver where the bytes are written silences the
    finding even though the taint originates in another file."""
    cross_file_fixture(tmp_path, SUPPRESSED_CALLER)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert not any(
        f.rule_id == "DSO501" for f in report.unsuppressed
    )
    waived = [f for f in report.suppressed if f.rule_id == "DSO501"]
    assert len(waived) == 1
    assert "parity test" in waived[0].justification


def test_dso501_unjustified_waiver_fires_meta_rule(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path, UNJUSTIFIED_CALLER)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert not any(
        f.rule_id == "DSO501" for f in report.unsuppressed
    )
    meta = [
        f
        for f in report.unsuppressed
        if f.rule_id == "DSO001"
        and f.path == "src/repro/oracle/writer.py"
    ]
    # Exactly one DSO001 — the project pass must not double-report a
    # waiver line the per-file pass already flagged.
    assert len(meta) == 1


# ----------------------------------------------------------------------
# DSO502 — transitively unpicklable value crossing a process boundary
# ----------------------------------------------------------------------

def test_dso502_lock_holder_crosses_pipe(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/holder.py": """
                import threading


                class Holder:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.value = 0
            """,
            "src/repro/serving/ship.py": """
                from repro.oracle.holder import Holder


                def ship(conn):
                    handle = Holder()
                    conn.send(handle)
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    flagged = [f for f in report.unsuppressed if f.rule_id == "DSO502"]
    assert [f.path for f in flagged] == ["src/repro/serving/ship.py"]
    assert "Holder" in flagged[0].message


def test_dso502_custom_pickle_hook_is_exempt(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/holder.py": """
                import threading


                class Holder:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def __getstate__(self):
                        return {}
            """,
            "src/repro/serving/ship.py": """
                from repro.oracle.holder import Holder


                def ship(conn):
                    handle = Holder()
                    conn.send(handle)
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert not any(f.rule_id == "DSO502" for f in report.unsuppressed)


def test_dso502_nested_attribute_chain(tmp_path, monkeypatch):
    """Unpicklability two attribute hops down."""
    make_project(
        tmp_path,
        {
            "src/repro/oracle/inner.py": """
                import threading


                class Inner:
                    def __init__(self):
                        self._lock = threading.Lock()
            """,
            "src/repro/oracle/outer.py": """
                from repro.oracle.inner import Inner


                class Outer:
                    def __init__(self):
                        self.inner = Inner()
            """,
            "src/repro/serving/ship.py": """
                from repro.oracle.outer import Outer


                def ship(conn):
                    conn.send(Outer())
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert any(f.rule_id == "DSO502" for f in report.unsuppressed)


# ----------------------------------------------------------------------
# DSO503 — NaN sentinel flowing into arithmetic in another function
# ----------------------------------------------------------------------

SENTINEL_SOURCE = """
    QUERY_ERROR = float("nan")


    def distance(u, v):
        if u == v:
            return 0.0
        return QUERY_ERROR
"""


def test_dso503_sentinel_reaches_arithmetic(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/query.py": SENTINEL_SOURCE,
            "src/repro/oracle/agg.py": """
                from repro.oracle.query import distance


                def total(pairs):
                    acc = 0.0
                    for u, v in pairs:
                        d = distance(u, v)
                        acc = acc + d
                    return acc
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    flagged = [f for f in report.unsuppressed if f.rule_id == "DSO503"]
    assert [f.path for f in flagged] == ["src/repro/oracle/agg.py"]
    assert "isnan" in flagged[0].message


def test_dso503_isnan_guard_is_clean(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/query.py": SENTINEL_SOURCE,
            "src/repro/oracle/agg.py": """
                import math

                from repro.oracle.query import distance


                def total(pairs):
                    acc = 0.0
                    for u, v in pairs:
                        d = distance(u, v)
                        if math.isnan(d):
                            continue
                        acc = acc + d
                    return acc
            """,
        },
    )
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert not any(f.rule_id == "DSO503" for f in report.unsuppressed)


# ----------------------------------------------------------------------
# DSO601 — write-then-stamp ordering
# ----------------------------------------------------------------------

def test_dso601_payload_after_stamp_fires():
    """The deliberately reordered ring-protocol fixture."""
    snippet = """
        def publish(view, base, epoch, seq, lanes):
            view[base] = float(epoch)
            view[base + 1] = float(seq)
            view[base + 4] = lanes
    """
    assert "DSO601" in ids(snippet)


def test_dso601_payload_first_is_clean():
    snippet = """
        def publish(view, base, epoch, seq, lanes):
            view[base + 4] = lanes
            view[base + 1] = float(seq)
            view[base] = float(epoch)
    """
    assert ids(snippet) == []


def test_dso601_tracks_buffers_independently():
    snippet = """
        def publish(view, shadow, base, epoch, lanes):
            view[base] = float(epoch)
            shadow[base + 4] = lanes
    """
    assert ids(snippet) == []


def test_dso601_branch_isolation():
    """A stamp on one branch must not poison its sibling."""
    snippet = """
        def publish(view, base, epoch, lanes, fast):
            if fast:
                view[base] = float(epoch)
            else:
                view[base + 4] = lanes
    """
    assert ids(snippet) == []


def test_dso601_real_ring_module_is_clean():
    source = open("src/repro/serving/ring.py", encoding="utf-8").read()
    findings = lint_source(source, "src/repro/serving/ring.py")
    assert not any(
        f.rule_id == "DSO601" for f in findings if not f.suppressed
    )


# ----------------------------------------------------------------------
# DSO602 — epoch-fenced cache admission
# ----------------------------------------------------------------------

def test_dso602_unfenced_put_fires():
    snippet = """
        def admit(result_cache, key, answer):
            result_cache.put(key, answer)
    """
    assert "DSO602" in ids(snippet)


def test_dso602_epoch_argument_is_clean():
    snippet = """
        def admit(result_cache, key, answer, snapshot_epoch):
            result_cache.put(key, answer, snapshot_epoch)
    """
    assert ids(snippet) == []


def test_dso602_epoch_keyword_is_clean():
    snippet = """
        def admit(self, key, answer):
            self._cache.put(key, answer, epoch=self._snapshot_epoch)
    """
    assert ids(snippet) == []


def test_dso602_non_cache_receiver_is_ignored():
    snippet = """
        def remember(store, key, entry):
            store.put(key, entry)
    """
    assert ids(snippet) == []


# ----------------------------------------------------------------------
# DSO603 — lock covers its fields
# ----------------------------------------------------------------------

LOCKED_CLASS = """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def bump(self):
            with self._lock:
                self.hits += 1
"""


def test_dso603_unguarded_mutation_fires():
    snippet = textwrap.dedent(LOCKED_CLASS) + textwrap.indent(
        textwrap.dedent(
            """
            def racy_bump(self):
                self.hits += 1
            """
        ),
        "    ",
    )
    findings = lint_source(snippet, WORKER)
    assert "DSO603" in [f.rule_id for f in findings if not f.suppressed]


def test_dso603_all_mutations_guarded_is_clean():
    assert ids(LOCKED_CLASS) == []


def test_dso603_init_is_exempt():
    """__init__ assigns without the lock by design."""
    assert ids(LOCKED_CLASS) == []


def test_dso603_lockless_class_is_ignored():
    snippet = """
        class Counter:
            def __init__(self):
                self.hits = 0

            def bump(self):
                self.hits += 1
    """
    assert ids(snippet) == []


def test_dso603_real_cache_module_is_clean():
    source = open("src/repro/serving/cache.py", encoding="utf-8").read()
    findings = lint_source(source, "src/repro/serving/cache.py")
    assert not any(
        f.rule_id == "DSO603" for f in findings if not f.suppressed
    )


# ----------------------------------------------------------------------
# DSO000 — parse failures carry their position
# ----------------------------------------------------------------------

def test_dso000_carries_line_and_column():
    findings = lint_source(
        "def broken(:\n    pass\n", "src/repro/oracle/broken.py"
    )
    assert [f.rule_id for f in findings] == ["DSO000"]
    (finding,) = findings
    assert finding.line == 1
    assert finding.col > 0
    assert "src/repro/oracle/broken.py:1:" in finding.message


def test_dso000_position_on_later_line():
    findings = lint_source(
        "x = 1\ny = 2\ndef broken(:\n", "src/repro/oracle/broken.py"
    )
    assert findings[0].rule_id == "DSO000"
    assert findings[0].line == 3


# ----------------------------------------------------------------------
# Summary cache — incremental linting
# ----------------------------------------------------------------------

def test_summary_cache_round_trip(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    store = SummaryCache(tmp_path / "lint-cache.json")
    cold = lint_paths(["src"], cache=store)
    assert cold.stats["cache_misses"] > 0
    assert cold.stats["cache_hits"] == 0

    warm_store = SummaryCache(tmp_path / "lint-cache.json")
    warm = lint_paths(["src"], cache=warm_store)
    assert warm.stats["cache_misses"] == 0
    assert warm.stats["cache_hits"] == len(warm.files)
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_summary_cache_invalidated_by_edit(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    store = SummaryCache(tmp_path / "lint-cache.json")
    lint_paths(["src"], cache=store)

    helper = tmp_path / "src/repro/oracle/helper.py"
    helper.write_text(
        "def collect(items: set) -> list:\n    return sorted(items)\n",
        encoding="utf-8",
    )
    edited_store = SummaryCache(tmp_path / "lint-cache.json")
    report = lint_paths(["src"], cache=edited_store)
    assert report.stats["cache_misses"] == 1
    # The fix in the helper clears the cross-file finding even though
    # the sink file itself was served from cache.
    assert not any(f.rule_id == "DSO501" for f in report.unsuppressed)


# ----------------------------------------------------------------------
# --changed mode
# ----------------------------------------------------------------------

def _git(tmp_path, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=tmp_path,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_changed_mode_limits_to_dependents(tmp_path, monkeypatch):
    make_project(
        tmp_path,
        {
            "src/repro/oracle/helper.py": HELPER_A,
            "src/repro/oracle/writer.py": CALLER_B,
            "src/repro/oracle/island.py": """
                def unrelated():
                    return 1
            """,
        },
    )
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    helper = tmp_path / "src/repro/oracle/helper.py"
    helper.write_text(
        helper.read_text(encoding="utf-8") + "\n\nEXTRA = 1\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    changed = changed_files("HEAD", tmp_path)
    assert changed == {"src/repro/oracle/helper.py"}
    report = lint_paths(["src"], changed=changed)
    # helper itself + its importer, but not the island or __init__s.
    assert "src/repro/oracle/helper.py" in report.files
    assert "src/repro/oracle/writer.py" in report.files
    assert "src/repro/oracle/island.py" not in report.files
    # Cross-file finding at the (unchanged) dependent is still there.
    assert any(f.rule_id == "DSO501" for f in report.unsuppressed)


def test_changed_mode_bad_ref_raises(tmp_path):
    make_project(tmp_path, {"src/repro/oracle/helper.py": HELPER_A})
    _git(tmp_path, "init", "-q")
    with pytest.raises(RuntimeError):
        changed_files("no-such-ref", tmp_path)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------

def test_baseline_round_trip(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    assert not report.ok
    baseline_path = tmp_path / "lint-baseline.json"
    count = write_baseline(baseline_path, report)
    assert count == len(report.unsuppressed)

    fresh = lint_paths(["src"])
    matched = apply_baseline(fresh, load_baseline(baseline_path))
    assert matched == count
    assert fresh.ok
    assert all(
        f.justification == "accepted in baseline"
        for f in fresh.suppressed
    )


def test_baseline_counts_are_consumed(tmp_path, monkeypatch):
    """A new instance of a baselined problem still fails the gate."""
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(baseline_path, report)

    # Seed a second, identical violation in a new file.
    make_project(
        tmp_path,
        {
            "src/repro/oracle/writer2.py": CALLER_B,
        },
    )
    grown = lint_paths(["src"])
    apply_baseline(grown, load_baseline(baseline_path))
    fresh = [f for f in grown.unsuppressed if f.rule_id == "DSO501"]
    assert len(fresh) == 1
    assert fresh[0].path == "src/repro/oracle/writer2.py"


def test_baseline_fingerprints_are_line_free(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    finding = report.unsuppressed[0]
    assert str(finding.line) + "::" not in fingerprint(finding)
    assert fingerprint(finding).startswith(finding.path + "::")


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

def test_sarif_structure(tmp_path, monkeypatch):
    cross_file_fixture(tmp_path, SUPPRESSED_CALLER)
    monkeypatch.chdir(tmp_path)
    report = lint_paths(["src"])
    document = json.loads(to_sarif(report))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    assert run["tool"]["driver"]["name"] == "dsolint"
    assert run["tool"]["driver"]["version"] == RULE_CATALOGUE_VERSION
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert declared.issuperset(
        {"DSO501", "DSO502", "DSO503", "DSO601", "DSO602", "DSO603"}
    )
    waived = [r for r in run["results"] if "suppressions" in r]
    assert waived, "suppressed findings must appear with suppressions"
    assert waived[0]["suppressions"][0]["kind"] == "inSource"
    for result in run["results"]:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------

def test_catalogue_includes_new_families():
    catalogue = rule_catalogue()
    for rule_id in (
        "DSO501",
        "DSO502",
        "DSO503",
        "DSO601",
        "DSO602",
        "DSO603",
    ):
        assert rule_id in catalogue
        assert catalogue[rule_id]["summary"]
    assert RULE_CATALOGUE_VERSION == "2.0"


def test_module_name_resolution():
    assert module_name_for("src/repro/oracle/frozen.py") == (
        "repro.oracle.frozen"
    )
    assert module_name_for("src/repro/graph/__init__.py") == "repro.graph"
    assert module_name_for("tests/test_dataflow.py") == "test_dataflow"
    assert module_name_for("benchmarks/bench_util.py") == "bench_util"
