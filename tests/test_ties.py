"""Tie-handling stress tests.

The paper assumes unique shortest paths "for simplicity" but notes all
techniques apply with ties.  Integer-weighted random graphs maximise
the number of equal-length alternatives; these properties pin down that
every oracle stays exact when shortest paths are massively non-unique.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.pathing.dijkstra import shortest_distance


def integer_grid_graph(seed: int, n: int = 25) -> DiGraph:
    """Random strongly connected graph with weights in {1, 2, 3}."""
    rng = random.Random(seed)
    graph = DiGraph()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        graph.add_edge(order[i], order[(i + 1) % n], float(rng.randint(1, 3)))
    for _ in range(n * 3):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, float(rng.randint(1, 3)))
    return graph


def unit_weight_graph(seed: int, n: int = 25) -> DiGraph:
    """All weights 1.0 — every hop count tie is a distance tie."""
    rng = random.Random(seed)
    graph = DiGraph()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        graph.add_edge(order[i], order[(i + 1) % n], 1.0)
    for _ in range(n * 3):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, 1.0)
    return graph


def pick_failures(graph: DiGraph, seed: int, count: int):
    rng = random.Random(seed)
    edges = sorted(graph.edge_set())
    return set(rng.sample(edges, min(count, len(edges) - 1)))


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=24),
    t=st.integers(min_value=0, max_value=24),
)
def test_diso_exact_with_integer_ties(seed, fail_seed, s, t):
    graph = integer_grid_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = pick_failures(graph, fail_seed, 8)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=24),
    t=st.integers(min_value=0, max_value=24),
)
def test_adiso_exact_with_unit_weights(seed, fail_seed, s, t):
    graph = unit_weight_graph(seed)
    oracle = ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=seed)
    failed = pick_failures(graph, fail_seed, 6)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=24),
    t=st.integers(min_value=0, max_value=24),
)
def test_bidirectional_exact_with_unit_weights(seed, fail_seed, s, t):
    graph = unit_weight_graph(seed)
    oracle = DISOBidirectional(graph, tau=2, theta=4.0)
    failed = pick_failures(graph, fail_seed, 6)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_path_retrieval_with_ties(seed):
    """Witness paths stay valid when many equal-length paths exist."""
    from repro.oracle.paths import query_path, validate_path

    graph = unit_weight_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = pick_failures(graph, seed + 1, 5)
    expected = shortest_distance(graph, 0, 12, failed)
    distance, path = query_path(oracle, 0, 12, failed)
    if expected == float("inf"):
        assert path is None
        return
    assert distance == pytest.approx(expected)
    assert validate_path(oracle, path, 0, 12, failed) == (
        pytest.approx(expected)
    )
