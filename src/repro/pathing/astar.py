"""A* best-first search with a pluggable heuristic.

The classical A* search algorithm of Hart, Nilsson & Raphael computes a
point-to-point shortest path by expanding nodes in order of
``f(u) = d(s, u) + h(u, t)`` where ``h`` is a lower bound on the remaining
distance (Section 5.1 of the paper).  With an *admissible* heuristic
(``h(u, t) <= d(u, t)`` for all u) the first time the target is popped its
distance is exact; with ``h = 0`` the algorithm degenerates to Dijkstra.

This module provides the generic search used by:

* the ``A*`` competitor (with landmark lower bounds, Section 5.2),
* internal machinery shared with ADISO's merged two-queue procedure.
"""

from __future__ import annotations

from collections.abc import Callable
from heapq import heappop, heappush

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph, Edge
from repro.pathing.spt import INFINITY

Heuristic = Callable[[int], float]


def astar_distance(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Heuristic,
    failed: set[Edge] | None = None,
) -> float:
    """Return ``d(source, target, failed)`` via A*.

    Parameters
    ----------
    graph:
        The directed graph.
    source, target:
        Query endpoints.
    heuristic:
        ``h(u)`` — an admissible lower bound on ``d(u, target, failed)``.
        Note that a lower bound computed on the failure-free graph is
        automatically admissible on the failed graph, since deleting
        edges can only lengthen shortest paths (Section 5.2).
    failed:
        Failed directed edges to avoid.

    Returns
    -------
    float
        The exact shortest distance, or ``inf`` when unreachable.

    Raises
    ------
    NodeNotFoundError
        If either endpoint is missing.
    """
    dist, _ = _astar(graph, source, target, heuristic, failed, want_parent=False)
    return dist.get(target, INFINITY)


def astar_path(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Heuristic,
    failed: set[Edge] | None = None,
) -> list[Edge] | None:
    """Return the shortest path found by A*, or None when unreachable."""
    dist, parent = _astar(graph, source, target, heuristic, failed, want_parent=True)
    if target not in dist:
        return None
    edges: list[Edge] = []
    node = target
    while True:
        prev = parent[node]
        if prev is None:
            break
        edges.append((prev, node))
        node = prev
    edges.reverse()
    return edges


def _astar(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Heuristic,
    failed: set[Edge] | None,
    want_parent: bool,
) -> tuple[dict[int, float], dict[int, int | None]]:
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int | None] = {source: None}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    check_failed = bool(failed)
    while heap:
        _, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        d = dist[node]
        for head, weight in graph.successors(node).items():
            if head in settled:
                continue
            if check_failed and (node, head) in failed:
                continue
            candidate = d + weight
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                if want_parent:
                    parent[head] = node
                heappush(heap, (candidate + heuristic(head), head))
    return dist, parent


def zero_heuristic(_node: int) -> float:
    """The trivial heuristic: A* with it equals Dijkstra."""
    return 0.0


def astar_search_stats(
    graph: DiGraph,
    source: int,
    target: int,
    heuristic: Heuristic,
    failed: set[Edge] | None = None,
) -> tuple[float, int]:
    """Return ``(distance, settled_node_count)``.

    The settled-node count is the canonical "search space" measure used to
    show how much a heuristic prunes; the experiment harness reports it
    alongside wall-clock time.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    check_failed = bool(failed)
    while heap:
        _, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return dist[node], len(settled)
        d = dist[node]
        for head, weight in graph.successors(node).items():
            if head in settled:
                continue
            if check_failed and (node, head) in failed:
                continue
            candidate = d + weight
            if candidate < dist.get(head, INFINITY):
                dist[head] = candidate
                heappush(heap, (candidate + heuristic(head), head))
    return INFINITY, len(settled)
