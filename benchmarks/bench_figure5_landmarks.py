"""Bench: Figure 5 — landmark selection methods across N_L.

Sweeps the landmark count for SLS / RAND / max-cover / best-cover on a
road graph, recording ADISO query time and selection preprocessing
time; persisted to ``results/figure5.txt``.
"""

from __future__ import annotations

from repro.experiments.figure5 import format_figure5, run_figure5
from repro.landmarks.selection import (
    best_cover_landmarks,
    max_cover_landmarks,
    random_landmarks,
    sls_landmarks,
)

from bench_util import SEED, dataset, write_result


def test_sls_selection(benchmark):
    graph = dataset("NY")
    landmarks = benchmark.pedantic(
        lambda: sls_landmarks(graph, 10, seed=SEED, alpha=0.1),
        rounds=1,
        iterations=1,
    )
    assert len(landmarks) == 10


def test_max_cover_selection(benchmark):
    graph = dataset("NY")
    landmarks = benchmark.pedantic(
        lambda: max_cover_landmarks(graph, 10, seed=SEED, alpha=0.1),
        rounds=1,
        iterations=1,
    )
    assert len(landmarks) == 10


def test_best_cover_selection(benchmark):
    graph = dataset("NY")
    landmarks = benchmark.pedantic(
        lambda: best_cover_landmarks(graph, 10, seed=SEED),
        rounds=1,
        iterations=1,
    )
    assert len(landmarks) == 10


def test_random_selection(benchmark):
    graph = dataset("NY")
    landmarks = benchmark(random_landmarks, graph, 10, SEED)
    assert len(landmarks) == 10


def test_figure5_sweep(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure5(
            dataset="USA",
            scale=0.25,
            landmark_counts=(5, 10, 15),
            query_count=8,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("figure5", format_figure5(data))
    # Paper's shape: SLS selection is much cheaper than max-cover's
    # local search at every landmark count.
    for sls, mc in zip(
        data["selection_seconds"]["SLS"],
        data["selection_seconds"]["max-cover"],
    ):
        assert sls <= mc * 2.0
