"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    complete_network,
    gnm_random_graph,
    grid_network,
    path_network,
    ring_network,
    road_network,
    scale_free_network,
)
from repro.graph.transforms import is_strongly_connected


class TestRoadNetwork:
    def test_deterministic(self):
        a = road_network(8, 8, seed=3)
        b = road_network(8, 8, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        assert road_network(8, 8, seed=1) != road_network(8, 8, seed=2)

    def test_strongly_connected(self):
        assert is_strongly_connected(road_network(10, 10, seed=5))

    def test_bounded_degree(self):
        g = road_network(15, 15, seed=1)
        # Max total degree stays small (paper's road regime: <= 9 per
        # direction; ours: 4 axis + 4 diagonal both ways = 16 cap).
        assert g.max_degree() <= 16

    def test_average_degree_in_road_band(self):
        g = road_network(20, 20, seed=2)
        assert 2.0 <= g.average_degree() <= 3.2

    def test_positive_weights(self):
        g = road_network(8, 8, seed=1)
        assert all(w > 0 for _, _, w in g.edges())

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            road_network(1, 5)


class TestScaleFreeNetwork:
    def test_deterministic(self):
        a = scale_free_network(100, attach=3, seed=1)
        b = scale_free_network(100, attach=3, seed=1)
        assert a == b

    def test_strongly_connected(self):
        assert is_strongly_connected(scale_free_network(150, seed=4))

    def test_has_hubs(self):
        g = scale_free_network(300, attach=3, seed=1)
        assert g.max_degree() > 10 * g.average_degree() / 2

    def test_average_degree_tracks_attach(self):
        g = scale_free_network(400, attach=3, seed=1)
        # Each attachment contributes 2 directed edges: avg ~ 2 * attach.
        assert 4.0 <= g.average_degree() <= 8.0

    def test_dense_variant(self):
        g = scale_free_network(300, attach=9, seed=1)
        assert g.average_degree() >= 14.0

    def test_weights_in_unit_interval(self):
        g = scale_free_network(100, seed=1)
        assert all(0 < w <= 1.0 for _, _, w in g.edges())

    def test_no_spread_gives_min_degree(self):
        g = scale_free_network(100, attach=3, seed=1, attach_spread=False)
        degrees = [g.degree(node) for node in g.nodes()]
        assert min(degrees) >= 2 * 3

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            scale_free_network(2, attach=3)
        with pytest.raises(ValueError):
            scale_free_network(10, attach=0)


class TestSimpleGenerators:
    def test_grid_counts(self):
        g = grid_network(4, 3)
        assert g.number_of_nodes() == 12
        # 2 * (horizontal 3*3 + vertical 4*2) = 34 directed edges
        assert g.number_of_edges() == 34

    def test_ring(self):
        g = ring_network(6)
        assert g.number_of_edges() == 12
        assert is_strongly_connected(g)

    def test_ring_directed_only(self):
        g = ring_network(6, bidirectional=False)
        assert g.number_of_edges() == 6
        assert is_strongly_connected(g)

    def test_path(self):
        g = path_network(5)
        assert g.number_of_edges() == 8

    def test_path_one_way(self):
        g = path_network(5, bidirectional=False)
        assert not is_strongly_connected(g)

    def test_complete(self):
        g = complete_network(5)
        assert g.number_of_edges() == 20

    def test_gnm(self):
        g = gnm_random_graph(20, 60, seed=3)
        assert g.number_of_nodes() == 20
        assert g.number_of_edges() == 60
        assert is_strongly_connected(g)

    def test_gnm_too_few_edges_raises(self):
        with pytest.raises(ValueError):
            gnm_random_graph(10, 5)

    def test_small_generators_raise(self):
        with pytest.raises(ValueError):
            ring_network(1)
        with pytest.raises(ValueError):
            path_network(1)
