"""Bench: substrate micro-benchmarks.

Times the building blocks every oracle is made of — Dijkstra variants,
bounded searches, tree repair — so regressions in the substrate layer
are visible independently of end-to-end query times.
"""

from __future__ import annotations

from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    shortest_path_tree,
)
from repro.pathing.dynamic_spt import recompute_distances
from repro.pathing.astar import astar_distance
from repro.landmarks.base import LandmarkTable
from repro.cover.isc import isc_path_cover

from bench_util import dataset


def test_full_dijkstra(benchmark):
    graph = dataset("NY")
    dist, _ = benchmark(dijkstra, graph, 0)
    assert dist


def test_point_to_point_dijkstra(benchmark):
    graph = dataset("NY")
    n = graph.number_of_nodes()
    dist, _ = benchmark(dijkstra, graph, 0, None, n - 1)
    assert dist


def test_bidirectional_dijkstra(benchmark):
    graph = dataset("NY")
    n = graph.number_of_nodes()
    distance = benchmark(bidirectional_dijkstra, graph, 0, n - 1)
    assert distance < float("inf")


def test_alt_astar(benchmark):
    graph = dataset("NY")
    n = graph.number_of_nodes()
    table = LandmarkTable(graph, [0, n // 2, n - 1])
    heuristic = table.heuristic_to(n - 1)
    distance = benchmark(astar_distance, graph, 0, n - 1, heuristic)
    assert distance < float("inf")


def test_bounded_dijkstra(benchmark):
    graph = dataset("NY")
    cover = isc_path_cover(graph, tau=4, theta=1.0).cover
    result = benchmark(bounded_dijkstra, graph, 0, cover)
    assert result.settled_count > 0


def test_spt_repair(benchmark):
    graph = dataset("NY")
    tree = shortest_path_tree(graph, 0)
    failed = set(list(graph.edge_set())[:10])

    def repair():
        return recompute_distances(graph, tree, failed)

    result = benchmark(repair)
    assert result


def test_csr_dijkstra(benchmark):
    from repro.graph.csr import FrozenGraph, csr_distance

    graph = dataset("NY")
    frozen = FrozenGraph.from_digraph(graph)
    n = graph.number_of_nodes()
    distance = benchmark(csr_distance, frozen, 0, n - 1)
    assert distance < float("inf")


def test_landmark_table_build(benchmark):
    graph = dataset("NY")
    n = graph.number_of_nodes()
    table = benchmark.pedantic(
        lambda: LandmarkTable(graph, [0, n // 3, 2 * n // 3]),
        rounds=1,
        iterations=1,
    )
    assert len(table) == 3
