"""DISO- — the ablation of DISO without bounded shortest path trees.

Used in the paper's Figure 6 robustness study: "DISO- is a variation of
DISO which does not utilize the bounded shortest path trees at all.
Instead, it uses the breadth-first search to find affected nodes and the
bounded Dijkstra's algorithm to recompute the edge weights associated
with them."

Consequences (visible in Figure 6): affected-node detection costs a
backward BFS per failed edge instead of an O(1) index lookup, the
detected set is a superset of the truly affected nodes (every transit
node that can *reach* a failed edge transit-free, whether or not the
edge lies on one of its shortest paths), and each recomputation is a
full bounded Dijkstra from scratch instead of a localized tree repair.
As the random failure rate ``p`` grows, DISO- degrades sharply while
DISO stays flat — the paper's evidence that the second-level index is
what makes failure handling cheap.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph, Edge
from repro.oracle.base import QueryStats
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra


class DISOMinus(DISO):
    """DISO without the second-level index (trees kept unused)."""

    name = "DISO-"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
    ) -> None:
        super().__init__(graph, tau=tau, theta=theta, transit=transit)

    def _find_affected_nodes(
        self,
        failed: frozenset[Edge],
        stats: QueryStats,
    ) -> set[int]:
        """Backward BFS from each failed edge tail over non-transit nodes.

        A transit node ``u`` is (potentially) affected when the tail of a
        failed edge is reachable from ``u`` without crossing another
        transit node — i.e. the failed edge could lie inside ``u``'s
        bounded region.  This over-approximates the tree-based detection.
        """
        affected: set[int] = set()
        transit = self.transit
        graph = self.graph
        for tail, head in sorted(failed):
            if not graph.has_node(tail) or not graph.has_edge(tail, head):
                continue
            if tail in transit:
                affected.add(tail)
                continue
            seen = {tail}
            queue = deque([tail])
            while queue:
                node = queue.popleft()
                for pred in graph.predecessors(node):
                    if pred in seen:
                        continue
                    seen.add(pred)
                    if pred in transit:
                        affected.add(pred)
                        # Transit nodes absorb the walk: regions of other
                        # transit nodes are reached through them only by
                        # paths that cross a transit node, which bounded
                        # searches never take.
                        continue
                    queue.append(pred)
        return affected

    def _recomputed_weights(
        self,
        node: int,
        failed: frozenset[Edge],
    ) -> dict[int, float]:
        """From-scratch bounded Dijkstra (no tree to repair)."""
        result = bounded_dijkstra(
            self.graph, node, self.transit, set(failed), "out"
        )
        return {v: d for v, d in result.access.items() if v != node}
