"""Bench: Figure 4 — cover methods across tau on the USA-like road graph.

Sweeps the path-cover parameter and records query/preprocessing series
per method, persisted to ``results/figure4.txt``.
"""

from __future__ import annotations

from repro.experiments.figure4 import format_figure4, run_figure4

from bench_util import SEED, write_result


def test_figure4_sweep(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure4(
            dataset="USA",
            scale=0.3,
            taus=(2, 3, 4, 5),
            query_count=10,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("figure4", format_figure4(data))
    # ISC overlays never denser than HPC's anywhere on the sweep would
    # be too strong; the paper's stable claim is on the best tau.
    best_isc = min(data["query_ms"]["ISC"])
    best_hpc = min(data["query_ms"]["HPC"])
    assert best_isc <= best_hpc * 1.5
    # Preprocessing grows with tau for both methods (more rounds).
    prep = data["preprocess_seconds"]["ISC"]
    assert prep[-1] >= prep[0] * 0.5
