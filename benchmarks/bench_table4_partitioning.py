"""Bench: Table 4 — ISC versus partitioning border-node transit sets.

The paper's shape: ISC gives the sparsest distance graph and the best
query time; UNIFORM the worst; METIS/SPA in between.
"""

from __future__ import annotations

from repro.cover.partitioning import (
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.experiments.table4 import format_table4, run_table4

from bench_util import SCALE, SEED, dataset, write_result


def test_metis_like_partition(benchmark):
    graph = dataset("NY")
    assignment = benchmark(metis_like_partition, graph, 24, SEED)
    assert len(assignment) == graph.number_of_nodes()


def test_spectral_partition(benchmark):
    graph = dataset("NY")
    assignment = benchmark.pedantic(
        lambda: spectral_partition(graph, 24, SEED), rounds=1, iterations=1
    )
    assert len(assignment) == graph.number_of_nodes()


def test_uniform_partition(benchmark):
    graph = dataset("NY")
    assignment = benchmark(uniform_partition, graph, 24, SEED)
    assert len(assignment) == graph.number_of_nodes()


def test_table4_full(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table4(
            datasets=("NY", "POKE"),
            scale=SCALE,
            parts=24,
            query_count=15,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("table4", format_table4(rows))
    by_method = {
        (row["dataset"], row["method"]): row
        for row in rows
        if not row.get("failed")
    }
    # ISC's overlay is sparsest on the road dataset (paper's NY row).
    isc = by_method[("NY", "ISC")]["overlay_edges"]
    uniform = by_method[("NY", "UNIFORM")]["overlay_edges"]
    assert isc < uniform
