"""End-to-end pipeline: DIMACS file -> index -> disk -> queries.

A deployment-shaped walkthrough: ingest a road network in the DIMACS
``.gr`` format (the format of the paper's NY/CAL/USA datasets),
preprocess an ADISO index, persist it as versioned JSON, reload it in a
"serving process", and answer failure queries — including a witness
path for the rerouted trip.

Run with::

    python examples/dimacs_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ADISO,
    DijkstraOracle,
    load_index,
    query_path,
    road_network,
    save_index,
    validate_path,
)
from repro.graph.io import read_dimacs, write_dimacs


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_pipeline_"))

    # --- Ingest ---------------------------------------------------------
    # Stand-in for downloading NY.gr: generate and write a DIMACS file.
    graph_file = workdir / "city.gr"
    write_dimacs(road_network(16, 16, seed=21), graph_file)
    graph = read_dimacs(graph_file)
    print(f"ingested {graph_file.name}: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} arcs")

    # --- Preprocess and persist -----------------------------------------
    oracle = ADISO(graph, tau=4, theta=1.0, num_landmarks=6, seed=3)
    index_file = workdir / "city.index.json"
    save_index(oracle, index_file)
    print(f"index persisted to {index_file.name} "
          f"({index_file.stat().st_size / 1024:.0f} KiB, "
          f"preprocessing took {oracle.preprocess_seconds:.2f}s)")

    # --- Serve -----------------------------------------------------------
    serving = load_index(index_file)
    reference = DijkstraOracle(graph)
    source, target = 1, graph.number_of_nodes() - 1

    closures = {(1, 2), (18, 17), (100, 116)}
    live = {edge for edge in closures if graph.has_edge(*edge)}  # dsolint: disable=DSO101 -- set-to-set filter; only membership is read
    distance = serving.query(source, target, live)
    assert abs(distance - reference.query(source, target, live)) < 1e-6
    print(f"\nd({source}, {target} | {len(live)} closures) = {distance:.3f}")

    # Witness path for the rerouted trip (via the shared DISO machinery).
    path_distance, path = query_path(serving, source, target, live)
    assert path is not None
    validate_path(serving, path, source, target, live)
    print(f"witness route: {len(path)} road segments, "
          f"distance {path_distance:.3f}")
    hops = [path[0][0]] + [head for _, head in path]
    preview = " -> ".join(str(n) for n in hops[:8])
    print(f"route preview: {preview} {'-> ...' if len(hops) > 8 else ''}")


if __name__ == "__main__":
    main()
