"""Run the executable examples embedded in docstrings."""

from __future__ import annotations

import doctest

import repro
import repro.graph.digraph
import repro.pathing.heap


def _run(module) -> None:
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )
    assert results.attempted > 0, f"no doctests found in {module.__name__}"


def test_package_quickstart_doctest():
    _run(repro)


def test_digraph_doctests():
    _run(repro.graph.digraph)


def test_heap_doctests():
    _run(repro.pathing.heap)
