"""Maintenance: permanent graph updates versus temporary failures.

Temporary failures (a blocked road that will reopen) go in the query's
``F`` set and cost nothing to the index.  Permanent changes (a new road,
a demolished bridge, a re-surveyed travel time) are applied with
:class:`repro.OracleMaintainer`, which repairs exactly the bounded trees
and overlay edges that can see the change (the paper's supplemental
maintenance strategies).

Run with::

    python examples/maintenance_demo.py
"""

from __future__ import annotations

from repro import DISO, DijkstraOracle, OracleMaintainer, road_network


def main() -> None:
    graph = road_network(18, 18, seed=13)
    oracle = DISO(graph, tau=4, theta=1.0)
    maintainer = OracleMaintainer(oracle)
    reference = DijkstraOracle(graph)  # shares the mutable graph

    source, target = 0, graph.number_of_nodes() - 1
    print(f"initial d({source}, {target}) = "
          f"{oracle.query(source, target):.3f}")

    # 1. Permanently delete a road that is currently on the route.
    from repro.pathing.dijkstra import shortest_path

    route = shortest_path(graph, source, target)
    victim = route[len(route) // 2]
    maintainer.delete_edge(*victim)
    after_delete = oracle.query(source, target)
    assert abs(after_delete - reference.query(source, target)) < 1e-9
    print(f"after deleting road {victim}: {after_delete:.3f} "
          f"({maintainer.rebuilt_trees} trees rebuilt)")

    # 2. Build a new expressway between two far corners.
    maintainer.insert_edge(source, target // 2, 0.5)
    after_insert = oracle.query(source, target)
    assert abs(after_insert - reference.query(source, target)) < 1e-9
    print(f"after the new expressway: {after_insert:.3f} "
          f"({maintainer.rebuilt_trees} trees rebuilt so far)")

    # 3. Re-survey a travel time upward.
    edge = next(iter(sorted(graph.edge_set())))
    maintainer.change_weight(*edge, graph.weight(*edge) * 4)
    after_change = oracle.query(source, target)
    assert abs(after_change - reference.query(source, target)) < 1e-9
    print(f"after the re-survey: {after_change:.3f}")

    # Temporary failures still work on the maintained index.
    closures = {victim2 for victim2 in list(graph.edge_set())[:3]}
    with_failures = oracle.query(source, target, closures)
    assert abs(
        with_failures - reference.query(source, target, closures)
    ) < 1e-9
    print(f"with 3 temporary closures on top: {with_failures:.3f}")
    print("\nall answers verified against Dijkstra ground truth")


if __name__ == "__main__":
    main()
