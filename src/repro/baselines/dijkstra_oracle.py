"""DI — the classic Dijkstra baseline (Section 7.1).

The trivial exact solution to the distance sensitivity problem: run
Dijkstra's algorithm on ``(V, E \\ F)`` per query.  No preprocessing, no
index, query time ``O(m + n log n)`` with a binary heap — the yardstick
every oracle must beat ("a non-trivial distance sensitivity oracle
should be faster than the Dijkstra's algorithm", Section 3.1).
"""

from __future__ import annotations

import time

from repro.graph.digraph import DiGraph, Edge
from repro.oracle.base import (
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.pathing.dijkstra import dijkstra
from repro.pathing.spt import INFINITY


class DijkstraOracle(DistanceSensitivityOracle):
    """Classic Dijkstra with a binary heap; zero preprocessing."""

    name = "DI"
    exact = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self.preprocess_seconds = 0.0

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        dist, _ = dijkstra(
            self.graph, source, set(fail_set) or None, target=target
        )
        stats.graph_settled = len(dist)
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(
            distance=dist.get(target, INFINITY), stats=stats
        )


class StaticDijkstraOracle(DistanceSensitivityOracle):
    """DI over an immutable CSR snapshot (:mod:`repro.graph.csr`).

    Same answers as :class:`DijkstraOracle`; the preprocessing step
    (building the snapshot) buys a faster inner loop — flat arrays,
    dense indices, and integer failure ids.  Each thread keeps one
    generation-stamped :class:`~repro.graph.csr.SearchArena`, so batch
    workloads stop paying O(n) allocation per query while concurrent
    queries stay lock-free.  Use when the graph is frozen for the
    serving lifetime, which is exactly the regime the distance
    sensitivity problem assumes.
    """

    name = "DI-CSR"
    exact = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        import threading

        from repro.graph.csr import FrozenGraph

        started = time.perf_counter()
        self.frozen = FrozenGraph.from_digraph(graph)
        self._local = threading.local()
        self.preprocess_seconds = time.perf_counter() - started

    def _arena(self):
        """This thread's reusable search arena."""
        from repro.graph.csr import SearchArena

        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = SearchArena(self.frozen.number_of_nodes())
            self._local.arena = arena
        return arena

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        from repro.graph.csr import csr_distance

        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        edge_ids = self.frozen.edge_ids(fail_set) if fail_set else None
        distance = csr_distance(
            self.frozen, source, target, edge_ids, self._arena()
        )
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=distance, stats=stats)
