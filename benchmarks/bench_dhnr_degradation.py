"""Bench: DHNR's degradation under failures (paper §2's prediction).

The paper argues that avoidance-style dynamic highway-node routing
"would mostly use edges in G ... act like the Dijkstra's algorithm"
once many highway edges are affected, which is why DISO repairs weights
instead.  This bench sweeps the random failure rate and compares DHNR's
graph-level search effort against DISO's on the same transit set.
"""

from __future__ import annotations

from functools import lru_cache

from repro.baselines.dhnr import DHNROracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.oracle.diso import DISO
from repro.workload.queries import generate_queries

from bench_util import SEED, dataset, run_query_batch, write_result


@lru_cache(maxsize=None)
def setup():
    graph = dataset("NY")
    diso = DISO(graph, tau=4, theta=1.0)
    dhnr = DHNROracle(graph, transit=diso.transit)
    dijkstra = DijkstraOracle(graph)
    batches = {
        p: tuple(generate_queries(graph, 10, f_gen=5, p=p, seed=SEED))
        for p in (0.0005, 0.01, 0.04)
    }
    return graph, diso, dhnr, dijkstra, batches


def test_dhnr_light_failures(benchmark):
    _, _, dhnr, _, batches = setup()
    checksum = benchmark(run_query_batch, dhnr, batches[0.0005])
    assert checksum > 0


def test_dhnr_heavy_failures(benchmark):
    _, _, dhnr, _, batches = setup()
    checksum = benchmark(run_query_batch, dhnr, batches[0.04])
    assert checksum > 0


def test_diso_heavy_failures(benchmark):
    _, diso, _, _, batches = setup()
    checksum = benchmark(run_query_batch, diso, batches[0.04])
    assert checksum > 0


def test_degradation_shape(benchmark):
    """DHNR's graph expansion approaches Dijkstra's as p grows."""
    graph, diso, dhnr, dijkstra, batches = setup()

    def measure():
        rows = []
        for p, batch in sorted(batches.items()):
            dhnr_settled = 0
            diso_settled = 0
            dij_settled = 0
            for q in batch:
                dhnr_settled += dhnr.query_detailed(
                    q.source, q.target, q.failed
                ).stats.graph_settled
                diso_settled += diso.query_detailed(
                    q.source, q.target, q.failed
                ).stats.graph_settled
                dij_settled += dijkstra.query_detailed(
                    q.source, q.target, q.failed
                ).stats.graph_settled
            count = len(batch)
            rows.append(
                (p, dhnr_settled / count, diso_settled / count,
                 dij_settled / count)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["DHNR degradation: avg graph-settled nodes per query",
             "p        | DHNR    | DISO    | DI"]
    for p, dhnr_avg, diso_avg, dij_avg in rows:
        lines.append(
            f"{p:<8g} | {dhnr_avg:7.1f} | {diso_avg:7.1f} | {dij_avg:7.1f}"
        )
    write_result("dhnr_degradation", "\n".join(lines))
    # The prediction: DHNR's graph search effort grows with p and
    # overtakes DISO's, which stays bounded by the access searches.
    first_p_dhnr = rows[0][1]
    last_p_dhnr = rows[-1][1]
    last_p_diso = rows[-1][2]
    assert last_p_dhnr > first_p_dhnr
    assert last_p_dhnr > last_p_diso
