"""An addressable binary min-heap with decrease-key.

``heapq`` with lazy deletion is used inside the hot Dijkstra loops (it is
faster in CPython), but several algorithms in the paper need a genuinely
addressable queue:

* Algorithm 1 (``GetIS``) repeatedly extracts the node minimising the
  live score ``sigma(v)`` while neighbouring removals change scores of
  queued nodes in both directions (decrease *and* increase);
* the landmark max-cover local search reorders candidates as coverage
  counts change.

:class:`AddressableHeap` supports push / pop-min / update-priority /
remove in O(log n) with O(1) membership tests.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from typing import Generic, TypeVar

KT = TypeVar("KT", bound=Hashable)


class AddressableHeap(Generic[KT]):
    """Binary min-heap keyed by item with mutable priorities.

    Ties are broken by insertion order, which keeps behaviour deterministic
    across runs (important for reproducible benchmark numbers).

    Examples
    --------
    >>> heap = AddressableHeap()
    >>> heap.push("a", 3.0)
    >>> heap.push("b", 1.0)
    >>> heap.update("a", 0.5)
    >>> heap.pop()
    ('a', 0.5)
    >>> heap.pop()
    ('b', 1.0)
    """

    __slots__ = ("_entries", "_position", "_counter")

    def __init__(self) -> None:
        # Each entry is [priority, tiebreak, item].
        self._entries: list[list] = []
        self._position: dict[KT, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def push(self, item: KT, priority: float) -> None:
        """Insert ``item`` with ``priority``.

        Raises
        ------
        KeyError
            If ``item`` is already in the heap (use :meth:`update`).
        """
        if item in self._position:
            raise KeyError(f"{item!r} is already in the heap")
        entry = [priority, self._counter, item]
        self._counter += 1
        self._entries.append(entry)
        index = len(self._entries) - 1
        self._position[item] = index
        self._sift_up(index)

    def update(self, item: KT, priority: float) -> None:
        """Change the priority of ``item``; insert it if absent."""
        index = self._position.get(item)
        if index is None:
            self.push(item, priority)
            return
        old_priority = self._entries[index][0]
        self._entries[index][0] = priority
        if priority < old_priority:
            self._sift_up(index)
        elif priority > old_priority:
            self._sift_down(index)

    def update_if_lower(self, item: KT, priority: float) -> bool:
        """Insert or decrease-key; return True if the heap changed.

        This is the Dijkstra relaxation primitive: never increase an
        existing priority.
        """
        index = self._position.get(item)
        if index is None:
            self.push(item, priority)
            return True
        if priority < self._entries[index][0]:
            self._entries[index][0] = priority
            self._sift_up(index)
            return True
        return False

    def pop(self) -> tuple[KT, float]:
        """Remove and return ``(item, priority)`` with the lowest priority.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        self._remove_at(0)
        return top[2], top[0]

    def peek(self) -> tuple[KT, float]:
        """Return ``(item, priority)`` with the lowest priority, keeping it.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        if not self._entries:
            raise IndexError("peek at an empty heap")
        top = self._entries[0]
        return top[2], top[0]

    def peek_priority(self) -> float:
        """Return the minimum priority, or ``inf`` when empty.

        Matches the paper's ``top(Q)`` convention in Algorithm 2: "If Q is
        empty, top(Q) returns infinity".
        """
        if not self._entries:
            return float("inf")
        return self._entries[0][0]

    def remove(self, item: KT) -> float:
        """Remove ``item``; return its priority.

        Raises
        ------
        KeyError
            If ``item`` is not in the heap.
        """
        index = self._position[item]
        priority = self._entries[index][0]
        self._remove_at(index)
        return priority

    def priority(self, item: KT) -> float:
        """Return the current priority of ``item``.

        Raises
        ------
        KeyError
            If ``item`` is not in the heap.
        """
        return self._entries[self._position[item]][0]

    def __contains__(self, item: KT) -> bool:
        return item in self._position

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[KT]:
        """Iterate over items in arbitrary (heap) order."""
        return (entry[2] for entry in self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _less(self, i: int, j: int) -> bool:
        a = self._entries[i]
        b = self._entries[j]
        return (a[0], a[1]) < (b[0], b[1])

    def _swap(self, i: int, j: int) -> None:
        entries = self._entries
        entries[i], entries[j] = entries[j], entries[i]
        self._position[entries[i][2]] = i
        self._position[entries[j][2]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) >> 1
            if self._less(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._less(left, smallest):
                smallest = left
            if right < size and self._less(right, smallest):
                smallest = right
            if smallest == index:
                break
            self._swap(index, smallest)
            index = smallest

    def _remove_at(self, index: int) -> None:
        entries = self._entries
        last = len(entries) - 1
        item = entries[index][2]
        if index != last:
            self._swap(index, last)
        entries.pop()
        del self._position[item]
        if index < len(entries):
            self._sift_up(index)
            self._sift_down(index)
