"""Bench: the multi-level hierarchy on a larger road graph.

The hierarchy pays off when the base distance graph itself is big
enough that skipping across it matters; this bench uses the largest
road stand-in (USA-like at full registry scale) and compares DISO vs
DISO-H query times and overlay search effort.
"""

from __future__ import annotations

from functools import lru_cache

from repro.landmarks.base import LandmarkTable
from repro.landmarks.selection import sls_landmarks
from repro.oracle.diso import DISO
from repro.oracle.hierarchy import HierarchicalDISO
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

from bench_util import SEED, run_query_batch, write_result


@lru_cache(maxsize=None)
def setup():
    graph = load_dataset("USA", scale=1.0, seed=SEED)
    base = DISO(graph, tau=4, theta=1.0)
    landmarks = LandmarkTable(
        graph, sls_landmarks(graph, 8, seed=SEED, alpha=0.1)
    )
    hierarchy = HierarchicalDISO(
        graph,
        transit=base.transit,
        extra_level_taus=(3, 2),
        landmark_table=landmarks,
    )
    batch = tuple(
        generate_queries(graph, 12, f_gen=5, p=0.0005, seed=SEED)
    )
    return graph, base, hierarchy, batch


def test_flat_diso(benchmark):
    _, base, _, batch = setup()
    checksum = benchmark(run_query_batch, base, batch)
    assert checksum > 0


def test_hierarchical_diso(benchmark):
    _, _, hierarchy, batch = setup()
    checksum = benchmark(run_query_batch, hierarchy, batch)
    assert checksum > 0


def test_hierarchy_report(benchmark):
    graph, base, hierarchy, batch = setup()

    def measure():
        flat_settled = 0
        hier_settled = 0
        mismatches = 0
        for q in batch:
            flat = base.query_detailed(q.source, q.target, q.failed)
            hier = hierarchy.query_detailed(q.source, q.target, q.failed)
            flat_settled += flat.stats.overlay_settled
            hier_settled += hier.stats.overlay_settled
            if abs(flat.distance - hier.distance) > 1e-9:
                mismatches += 1
        return flat_settled, hier_settled, mismatches

    flat_settled, hier_settled, mismatches = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    sizes = " -> ".join(
        str(n)
        for n in (
            [hierarchy.distance_graph.num_nodes]
            + [lvl.overlay.num_nodes for lvl in hierarchy.levels]
        )
    )
    write_result(
        "hierarchy",
        (
            f"Multi-level hierarchy on USA-like "
            f"({graph.number_of_nodes()} nodes)\n"
            f"level sizes: {sizes}\n"
            f"overlay nodes settled per batch: flat {flat_settled}, "
            f"hierarchical {hier_settled}\n"
            f"answer mismatches: {mismatches}"
        ),
    )
    assert mismatches == 0
    # The shortcuts reduce overlay search effort.
    assert hier_settled <= flat_settled
