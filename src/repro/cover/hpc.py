"""HPC: hierarchical k-path cover of Akiba et al. [27].

Akiba et al. build a ``2^tau``-path cover hierarchically: each round
computes a *vertex cover* of the current graph (the complement of an
independent set), keeps the vertex cover as the next node set, and
contracts the complement away.  The vertex cover is found with their
``LR-deg`` heuristic, which the paper reports as the best performer in
[27]: process nodes by degree and greedily grow an independent set, then
return its complement.

The key contrast with ISC (Section 4.3.2) is that HPC never looks at the
density of the contracted graph — there is no ``sigma``/``theta`` control
— so its distance graphs come out denser, which is what Table 3 shows.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.transforms import remove_self_loops
from repro.cover.isc import PathCoverResult


def lr_deg_independent_set(graph: DiGraph) -> set[int]:
    """Greedy independent set by increasing degree (the LR-deg heuristic).

    Nodes are scanned in increasing total-degree order (ties by id for
    determinism) and added when no neighbour was added before them.  The
    complement of the result is the LR-deg vertex cover.
    """
    independent: set[int] = set()
    blocked: set[int] = set()
    for node in sorted(graph.nodes(), key=lambda n: (graph.degree(n), n)):
        if node in blocked:
            continue
        independent.add(node)
        for other in graph.successors(node):
            blocked.add(other)
        for other in graph.predecessors(node):
            blocked.add(other)
    return independent


def _contract_independent_set(graph: DiGraph, independent: set[int]) -> DiGraph:
    """Eliminate ``independent`` from ``graph``, adding shortcut edges.

    Identical contraction step as ISC's Algorithm 1, applied wholesale:
    because ``independent`` is an independent set, eliminations do not
    interact and can be applied in any order.
    """
    working = graph.copy()
    for node in independent:
        in_neighbors = [
            x for x in working.predecessors(node) if x not in independent
        ]
        out_neighbors = [
            y for y in working.successors(node) if y not in independent
        ]
        working.remove_node(node)
        for x in in_neighbors:
            for y in out_neighbors:
                if x != y and not working.has_edge(x, y):
                    working.add_edge(x, y, 1.0)
    return working


def hpc_path_cover(graph: DiGraph, tau: int) -> PathCoverResult:
    """Compute a ``2^tau``-path cover hierarchically (Akiba et al. [27]).

    Each round keeps the LR-deg vertex cover of the current graph and
    contracts its complement (an independent set); by the same argument
    as the paper's Lemma 3 the surviving nodes after ``tau`` rounds form
    a ``2^tau``-path cover.

    Raises
    ------
    ValueError
        If ``tau < 1``.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    current = remove_self_loops(graph)
    rounds: list[int] = []
    for _ in range(tau):
        independent = lr_deg_independent_set(current)
        rounds.append(len(independent))
        if not independent:
            break
        current = _contract_independent_set(current, independent)
    return PathCoverResult(
        cover=set(current.nodes()),
        k=2 ** tau,
        topology=current,
        rounds=rounds,
    )
