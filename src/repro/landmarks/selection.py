"""Landmark selection strategies (Section 5.4 and competitors).

Four selectors are provided, matching the paper's Figure 5 comparison:

* :func:`random_landmarks` — ``RAND``, uniform sampling [33];
* :func:`sls_landmarks` — ``SLS``, the paper's sampling-based greedy
  maximum-coverage method (Section 5.4);
* :func:`max_cover_landmarks` — ``max-cover`` of Goldberg & Werneck
  [33]: greedy coverage over sampled pairs followed by local-search
  swaps;
* :func:`best_cover_landmarks` — ``best-cover`` of Tretyakov et al.
  [11]: greedily pick the nodes lying on the most sampled shortest
  paths.

All selectors are deterministic given a seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import dijkstra, reverse_dijkstra, shortest_path
from repro.pathing.spt import INFINITY


def build_landmarks(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    alpha: float = 0.1,
    landmarks: Sequence[int] | None = None,
) -> list[int]:
    """Resolve the landmark node list an ADISO-family build will use.

    One entry point shared by the sequential constructors and the
    parallel build plane, so both resolve the exact same list from the
    exact same parameters — the precondition for the build plane's
    bitwise-parity guarantee.  An explicit ``landmarks`` sequence wins;
    otherwise SLS selection (the paper's default) runs with ``seed`` and
    ``alpha``.
    """
    if landmarks is not None:
        return list(landmarks)
    return sls_landmarks(graph, count, seed=seed, alpha=alpha)


def random_landmarks(graph: DiGraph, count: int, seed: int = 0) -> list[int]:
    """Sample ``count`` distinct landmarks uniformly at random (RAND)."""
    nodes = sorted(graph.nodes())
    if count >= len(nodes):
        return nodes
    rng = random.Random(seed)
    return rng.sample(nodes, count)


def _coverage_sets(
    graph: DiGraph,
    candidates: Sequence[int],
    pairs: Sequence[tuple[int, int]],
    alpha: float,
) -> tuple[list[set[int]], dict[int, float]]:
    """Compute, per candidate, the set of pair indices it alpha-covers.

    A candidate ``w`` covers pair ``(u, v)`` when
    ``d(u, v) - l_w(u, v) <= alpha * d(u, v)`` (Section 5.4), where
    ``l_w`` is the per-landmark triangle bound.  Also returns the true
    pair distances for reuse.
    """
    out_dist: dict[int, dict[int, float]] = {}
    in_dist: dict[int, dict[int, float]] = {}
    for w in candidates:
        out_dist[w], _ = dijkstra(graph, w)
        in_dist[w] = reverse_dijkstra(graph, w)

    pair_distance: dict[int, float] = {}
    for idx, (u, v) in enumerate(pairs):
        # u is always a candidate in SLS, but compute robustly.
        if u in out_dist:
            pair_distance[idx] = out_dist[u].get(v, INFINITY)
        else:
            d, _ = dijkstra(graph, u, target=v)
            pair_distance[idx] = d.get(v, INFINITY)

    covers: list[set[int]] = []
    for w in candidates:
        covered: set[int] = set()
        w_out = out_dist[w]
        w_in = in_dist[w]
        for idx, (u, v) in enumerate(pairs):
            true = pair_distance[idx]
            if true == INFINITY or true == 0.0:
                continue
            bound = 0.0
            du = w_out.get(u)
            dv = w_out.get(v)
            if du is not None and dv is not None and dv - du > bound:
                bound = dv - du
            iu = w_in.get(u)
            iv = w_in.get(v)
            if iu is not None and iv is not None and iu - iv > bound:
                bound = iu - iv
            if true - bound <= alpha * true:
                covered.add(idx)
        covers.append(covered)
    return covers, pair_distance


def _greedy_max_coverage(
    covers: Sequence[set[int]],
    count: int,
) -> list[int]:
    """Greedy maximum coverage: indices of the chosen candidates."""
    chosen: list[int] = []
    covered: set[int] = set()
    remaining = set(range(len(covers)))
    while len(chosen) < count and remaining:
        best_idx = -1
        best_gain = -1
        for idx in sorted(remaining):
            gain = len(covers[idx] - covered)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        chosen.append(best_idx)
        covered |= covers[best_idx]
        remaining.discard(best_idx)
    return chosen


def sls_landmarks(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    alpha: float = 0.1,
    sample_nodes: int | None = None,
    sample_pairs: int = 500,
) -> list[int]:
    """SLS: the paper's sampling-based landmark selection (Section 5.4).

    1. Sample ``N1`` nodes uniformly at random (default ``10 * count``,
       the paper's setting).
    2. Compute their outbound/inbound distances.
    3. Sample ``N2`` node pairs among them (default 500, the paper's
       setting).
    4. Greedily pick ``count`` landmarks maximising the number of
       alpha-covered pairs.

    Parameters
    ----------
    alpha:
        Coverage slack: the paper uses 0.1 for road networks and 0.25
        for social networks.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    n1 = sample_nodes if sample_nodes is not None else 10 * count
    n1 = min(n1, len(nodes))
    candidates = rng.sample(nodes, n1)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < sample_pairs and attempts < sample_pairs * 20:
        attempts += 1
        u = candidates[rng.randrange(len(candidates))]
        v = candidates[rng.randrange(len(candidates))]
        if u != v:
            pairs.append((u, v))
    covers, _ = _coverage_sets(graph, candidates, pairs, alpha)
    chosen = _greedy_max_coverage(covers, count)
    return [candidates[idx] for idx in chosen]


def max_cover_landmarks(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    alpha: float = 0.1,
    candidate_factor: int = 4,
    sample_pairs: int = 500,
    swap_rounds: int = 2,
) -> list[int]:
    """max-cover of Goldberg & Werneck [33]: greedy plus local search.

    A candidate pool of ``candidate_factor * count`` random nodes is
    scored by alpha-coverage of sampled pairs; the greedy solution is
    then improved by swap local search (replace a chosen landmark with an
    unchosen candidate whenever total coverage increases), for at most
    ``swap_rounds`` passes.  This reproduces the structure of max-cover:
    the same coverage objective as SLS but a costlier search — which is
    why Figure 5 shows it with much larger preprocessing time.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    pool_size = min(candidate_factor * count, len(nodes))
    candidates = rng.sample(nodes, pool_size)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < sample_pairs and attempts < sample_pairs * 20:
        attempts += 1
        u = nodes[rng.randrange(len(nodes))]
        v = nodes[rng.randrange(len(nodes))]
        if u != v:
            pairs.append((u, v))
    covers, _ = _coverage_sets(graph, candidates, pairs, alpha)
    chosen = _greedy_max_coverage(covers, count)
    chosen_set = set(chosen)

    def total_coverage(selection: set[int]) -> int:
        covered: set[int] = set()
        for idx in selection:
            covered |= covers[idx]
        return len(covered)

    current_score = total_coverage(chosen_set)
    for _ in range(swap_rounds):
        improved = False
        for inside in sorted(chosen_set):
            for outside in range(len(candidates)):
                if outside in chosen_set:
                    continue
                trial = (chosen_set - {inside}) | {outside}
                score = total_coverage(trial)
                if score > current_score:
                    chosen_set = trial
                    current_score = score
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return [candidates[idx] for idx in sorted(chosen_set)]


def best_cover_landmarks(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    sample_pairs: int = 500,
) -> list[int]:
    """best-cover of Tretyakov et al. [11].

    Samples node pairs, computes their shortest paths, and greedily picks
    the node lying on the largest number of not-yet-covered paths.  This
    optimises for landmarks *on* shortest paths (where the LCA estimate
    of FDDO is exact) rather than for tight triangle bounds.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    paths: list[set[int]] = []
    attempts = 0
    while len(paths) < sample_pairs and attempts < sample_pairs * 20:
        attempts += 1
        u = nodes[rng.randrange(len(nodes))]
        v = nodes[rng.randrange(len(nodes))]
        if u == v:
            continue
        path = shortest_path(graph, u, v)
        if path is None:
            continue
        members = {u}
        for _, head in path:
            members.add(head)
        paths.append(members)

    landmarks: list[int] = []
    uncovered = set(range(len(paths)))
    # Count per node how many uncovered paths it lies on.
    while len(landmarks) < count and uncovered:
        counts: dict[int, int] = {}
        for idx in uncovered:
            for node in paths[idx]:
                counts[node] = counts.get(node, 0) + 1
        if not counts:
            break
        best_node = max(sorted(counts), key=counts.__getitem__)
        landmarks.append(best_node)
        uncovered = {  # dsolint: disable=DSO101 -- set-to-set filter; only membership is read
            idx for idx in uncovered if best_node not in paths[idx]
        }
    # Pad with random nodes when paths ran out before ``count``.
    if len(landmarks) < count:
        pool = [n for n in nodes if n not in set(landmarks)]
        extra = rng.sample(pool, min(count - len(landmarks), len(pool)))
        landmarks.extend(extra)
    return landmarks
