"""The frozen index — DISO's two-level index compiled to flat arrays.

After preprocessing finishes, the oracle index never changes again (the
paper's stall-avoidance design: queries only read).  That makes it a
perfect candidate for ahead-of-time compilation into the representation
query serving wants:

* **Dense transit ranks.**  Transit nodes get contiguous ranks
  ``0..|T|-1``; the overlay search runs over ranks so its arena is
  ``|T|``-sized, not ``|V|``-sized.
* **Distance graph as CSR.**  Per rank, a materialised tuple of
  ``(head_rank, head_index, weight)`` rows — one sequential scan per
  relaxation, no dict-of-dict hops.
* **Inverted tree index keyed by edge ids.**  ``{edge_id: (ranks...)}``
  — affected-set lookup is ``|F|`` dict probes on integers.
* **Bounded trees in preorder.**  Each stored tree is flattened into
  parallel arrays in *preorder*, with subtree sizes, so the DynDijkstra
  invalidation step ("the subtree below a failed tree edge") is a
  contiguous slice ``[pos, pos + size[pos])`` instead of a pointer
  chase.  ``{edge_id: child_position}`` finds failed tree edges in O(1).

:meth:`FrozenIndex.recomputed_out_weights` mirrors
:func:`repro.pathing.dynamic_spt.recompute_boundary_distances` exactly
(same seeding, same bounded expansion rule, same arithmetic), returning
the repaired distance-graph out-edge weights keyed by transit rank —
only for heads inside an invalidated subtree, since no other weight can
change.  Results are always restricted to the compiled overlay's
out-edges — a no-op for plain DISO (a transit leaf of ``G_u`` is by
definition an overlay neighbour of ``u``) and exactly DISO-S's
surviving-edge filter when the compiled overlay is the sparsified
``D-hat``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping
from heapq import heappop, heappush

from repro.graph.csr import INFINITY, FrozenGraph
from repro.overlay.distance_graph import DistanceGraph
from repro.pathing.spt import ShortestPathTree


class FrozenTree:
    """One bounded shortest path tree flattened to preorder arrays.

    Attributes
    ----------
    root:
        Dense graph index of the tree's root (position 0).
    order:
        Dense graph index per preorder position.
    dist:
        Stored root distance per preorder position.
    size:
        Subtree size per preorder position; the subtree of the node at
        ``pos`` occupies positions ``[pos, pos + size[pos])``.
    edge_pos:
        ``{edge_id: child_position}`` for every tree edge, keyed by the
        input graph's dense edge id.
    pos_of:
        ``{node_index: position}`` — the inverse of ``order``.
    transit_pos / transit_ranks:
        Parallel tuples: the preorder positions of the tree's transit
        leaves (ascending) and their transit ranks (filled by
        :meth:`FrozenIndex.compile`, which knows the rank mapping).
        Sorted positions make "which overlay heads sit inside this
        invalidated subtree slice" a bisect instead of a full scan.
    """

    __slots__ = (
        "root", "order", "dist", "size", "edge_pos", "pos_of",
        "transit_pos", "transit_ranks",
    )

    def __init__(
        self,
        root: int,
        order: list[int],
        dist: list[float],
        size: list[int],
        edge_pos: dict[int, int],
    ) -> None:
        self.root = root
        self.order = order
        self.dist = dist
        self.size = size
        self.edge_pos = edge_pos
        self.pos_of = {node: pos for pos, node in enumerate(order)}
        self.transit_pos: tuple[int, ...] = ()
        self.transit_ranks: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.order)

    @classmethod
    def from_tree(
        cls, tree: ShortestPathTree, frozen: FrozenGraph
    ) -> "FrozenTree":
        """Flatten ``tree`` (children visited in sorted label order)."""
        index_of = frozen.index_of
        edge_index = frozen._edge_index
        order: list[int] = []
        dist: list[float] = []
        size: list[int] = []
        edge_pos: dict[int, int] = {}
        # Iterative preorder; a sentinel entry closes each subtree so
        # sizes can be filled on the way out.
        stack: list[tuple[int, int]] = [(tree.root, -1)]
        open_positions: list[int] = []
        while stack:
            node, marker = stack.pop()
            if marker >= 0:
                size[marker] = len(order) - marker
                continue
            pos = len(order)
            node_index = index_of[node]
            order.append(node_index)
            dist.append(tree.dist[node])
            size.append(1)
            parent = tree.parent[node]
            if parent is not None:
                edge_pos[edge_index[(index_of[parent], node_index)]] = pos
            stack.append((node, pos))
            for child in sorted(tree.children(node), reverse=True):
                stack.append((child, -1))
        return cls(order[0], order, dist, size, edge_pos)


class FrozenIndex:
    """DISO's finished index compiled for integer-only query serving.

    Attributes
    ----------
    frozen:
        The CSR snapshot of the input graph the index was built on.
    transit_nodes:
        Dense graph index per transit rank (sorted, deterministic).
    rank_of:
        Transit rank per dense graph index (-1 for non-transit nodes).
    transit_flags:
        ``bytearray(|V|)`` with 1 at transit indices — the bounded
        searches' stop test.
    overlay:
        Per rank, a tuple of ``(head_rank, head_index, weight)`` rows of
        the compiled distance graph.
    overlay_rank_rows / overlay_node_rows:
        The same rows pre-projected to ``(head_rank, weight)`` and
        ``(head_index, weight)`` pairs — the shapes the DISO overlay
        search and the ADISO merged search actually consume.
    overlay_min_weight:
        Per rank, the lightest stored out-edge weight (``inf`` for an
        empty row).  Because a repaired weight is a shortest path in a
        subgraph of the stored tree's graph, it can never undercut the
        stored weight — so this is a valid lower bound on *fresh* rows
        too, letting the overlay search skip whole repairs.
    overlay_head_ranks:
        Per rank, the frozenset of out-neighbour ranks (the surviving-
        edge filter for lazy recomputation).
    inverted:
        ``{edge_id: (affected_ranks...)}`` — the inverted tree index.
    trees:
        :class:`FrozenTree` per rank.
    """

    __slots__ = (
        "frozen",
        "transit_nodes",
        "rank_of",
        "transit_flags",
        "overlay",
        "overlay_rank_rows",
        "overlay_node_rows",
        "overlay_min_weight",
        "overlay_head_ranks",
        "inverted",
        "trees",
    )

    def __init__(
        self,
        frozen: FrozenGraph,
        transit_nodes: list[int],
        rank_of: list[int],
        transit_flags: bytearray,
        overlay: list[tuple[tuple[int, int, float], ...]],
        inverted: dict[int, tuple[int, ...]],
        trees: list[FrozenTree],
    ) -> None:
        self.frozen = frozen
        self.transit_nodes = transit_nodes
        self.rank_of = rank_of
        self.transit_flags = transit_flags
        self.overlay = overlay
        # Rank rows are sorted by ascending weight so the overlay search
        # can stop scanning a row the moment one relaxation reaches the
        # incumbent bound (every later edge is at least as heavy).
        self.overlay_rank_rows: list[tuple[tuple[int, float], ...]] = [
            tuple(
                sorted(
                    ((head_rank, weight) for head_rank, _, weight in rows),
                    key=lambda row: row[1],
                )
            )
            for rows in overlay
        ]
        self.overlay_node_rows: list[tuple[tuple[int, float], ...]] = [
            tuple((head_index, weight) for _, head_index, weight in rows)
            for rows in overlay
        ]
        self.overlay_min_weight: list[float] = [
            rows[0][1] if rows else INFINITY
            for rows in self.overlay_rank_rows
        ]
        self.overlay_head_ranks: list[frozenset[int]] = [
            frozenset(row[0] for row in rows) for rows in overlay
        ]
        self.inverted = inverted
        self.trees = trees
        for tree in trees:
            pairs = [
                (pos, rank_of[node_index])
                for pos, node_index in enumerate(tree.order)
                if transit_flags[node_index] and node_index != tree.root
            ]
            tree.transit_pos = tuple(pos for pos, _ in pairs)
            tree.transit_ranks = tuple(rank for _, rank in pairs)

    @classmethod
    def compile(
        cls,
        frozen: FrozenGraph,
        distance_graph: DistanceGraph,
        trees: Mapping[int, ShortestPathTree],
        transit: frozenset[int] | set[int],
    ) -> "FrozenIndex":
        """Compile a finished dict-based index into flat-array form.

        ``distance_graph`` may be the plain ``D`` or a sparsified
        ``D-hat``; ``trees`` are the stored bounded trees (always the
        unsparsified ones).
        """
        index_of = frozen.index_of
        transit_nodes = sorted(index_of[label] for label in transit)
        n = len(frozen.node_ids)
        rank_of = [-1] * n
        transit_flags = bytearray(n)
        for rank, node_index in enumerate(transit_nodes):
            rank_of[node_index] = rank
            transit_flags[node_index] = 1

        node_ids = frozen.node_ids
        overlay: list[tuple[tuple[int, int, float], ...]] = []
        for node_index in transit_nodes:
            rows = []
            for head_label, weight in sorted(
                distance_graph.graph.successors(node_ids[node_index]).items()
            ):
                head_index = index_of[head_label]
                rows.append((rank_of[head_index], head_index, weight))
            overlay.append(tuple(rows))

        frozen_trees: list[FrozenTree] = []
        inverted: dict[int, tuple[int, ...]] = {}
        members: dict[int, list[int]] = {}
        for rank, node_index in enumerate(transit_nodes):
            tree = FrozenTree.from_tree(trees[node_ids[node_index]], frozen)
            frozen_trees.append(tree)
            for edge_id in tree.edge_pos:
                members.setdefault(edge_id, []).append(rank)
        for edge_id, ranks in members.items():
            inverted[edge_id] = tuple(ranks)

        return cls(
            frozen=frozen,
            transit_nodes=transit_nodes,
            rank_of=rank_of,
            transit_flags=transit_flags,
            overlay=overlay,
            inverted=inverted,
            trees=frozen_trees,
        )

    # ------------------------------------------------------------------
    # Query-time lookups
    # ------------------------------------------------------------------
    def num_transit(self) -> int:
        """``|T|`` — the overlay search space (arena size)."""
        return len(self.transit_nodes)

    def affected_ranks(
        self, failed_edge_ids: frozenset[int] | set[int]
    ) -> set[int]:
        """Transit ranks whose stored tree contains a failed edge."""
        affected: set[int] = set()
        inverted = self.inverted
        for edge_id in failed_edge_ids:
            ranks = inverted.get(edge_id)
            if ranks:
                affected.update(ranks)
        return affected

    def recomputed_out_weights(
        self,
        rank: int,
        failed_edge_ids: frozenset[int] | set[int],
        base: float = 0.0,
        limit: float = INFINITY,
        hits: list[int] | None = None,
    ) -> dict[int, float] | None:
        """Repaired overlay out-edge weights of ``rank`` under failures.

        Returns ``{head_rank: d_hat(root, head, F)}`` for the overlay
        out-edges whose head sits inside an invalidated subtree — only
        those weights can differ from the stored row (``INFINITY`` marks
        a head the repair could not reach).  Heads absent from the dict
        keep their stored weight, which is simultaneously a valid lower
        bound on every returned value (a repair is a shortest path in a
        subgraph), so a weight-sorted scan of the stored row stays a
        correct traversal order with per-head patching.  Returns ``None``
        when no failed edge is a tree edge of this rank's tree.

        Mirrors the dict path's DynDijkstra repair: invalidate the
        subtrees below failed tree edges, seed the affected nodes from
        surviving entry edges, repair with a Dijkstra confined to the
        affected set, never expanding non-root transit nodes.

        ``base``/``limit`` let the overlay search thread its incumbent
        bound into the repair: any label ``d`` with ``base + d >= limit``
        is dropped.  This is answer-preserving — along a shortest path
        labels only grow (non-negative weights) and float addition is
        monotone, so every head whose fresh weight the caller could still
        use keeps exactly the value an unbounded repair would compute;
        dropped heads read ``INFINITY``, which the caller would have
        discarded against the incumbent anyway.

        ``hits`` lets a caller that already mapped the failures to tree
        positions (the batch kernel does, for its no-op precheck) skip
        the second lookup; it must equal the positions this method
        would derive itself.
        """
        tree = self.trees[rank]
        edge_pos = tree.edge_pos
        if hits is None:
            hits = [  # dsolint: disable=DSO101 -- consumed solely through sorted(hits) below
                edge_pos[edge_id]
                for edge_id in failed_edge_ids
                if edge_id in edge_pos
            ]
        if not hits:
            return None
        order = tree.order
        stored = tree.dist
        size = tree.size
        pos_of = tree.pos_of
        # Ancestors precede descendants in preorder and subtree slices
        # are nested-or-disjoint, so walking sorted hits with a running
        # end position yields the disjoint cover intervals; the affected
        # node set then comes from C-speed slice updates.
        affected_idx: set[int] = set()
        intervals: list[tuple[int, int]] = []
        last_end = -1
        for pos in sorted(hits):
            if pos < last_end:
                continue
            last_end = pos + size[pos]
            intervals.append((pos, last_end))
            affected_idx.update(order[pos:last_end])
        root = tree.root
        # Repair state is kept ONLY for affected nodes; unaffected tree
        # nodes answer from the stored preorder arrays, so the whole
        # repair is O(|affected subtree| + incident edges) rather than
        # O(|tree|) per settled affected rank.
        new_dist: dict[int, float] = {}

        frozen = self.frozen
        radjacency = frozen._radjacency
        adjacency = frozen._adjacency
        transit_flags = self.transit_flags
        heap: list[tuple[float, int]] = []
        # Seed: best surviving edge from an unaffected tree node into
        # each affected node.
        for node in affected_idx:
            best = INFINITY
            for pred, weight, edge_id in radjacency[node]:
                if pred in affected_idx:
                    continue
                if edge_id in failed_edge_ids:
                    continue
                pred_pos = pos_of.get(pred)
                if pred_pos is None:
                    continue
                if transit_flags[pred] and pred != root:
                    continue
                candidate = stored[pred_pos] + weight
                if candidate < best:
                    best = candidate
            if best < INFINITY and base + best < limit:
                heappush(heap, (best, node))
                new_dist[node] = best

        settled: set[int] = set()
        while heap:
            d, node = heappop(heap)
            if node in settled:
                continue
            if d > new_dist.get(node, INFINITY):
                continue
            settled.add(node)
            if transit_flags[node] and node != root:
                continue
            for head, weight, edge_id in adjacency[node]:
                if head not in affected_idx or head in settled:
                    continue
                if edge_id in failed_edge_ids:
                    continue
                candidate = d + weight
                if base + candidate >= limit:
                    continue
                if candidate < new_dist.get(head, INFINITY):
                    new_dist[head] = candidate
                    heappush(heap, (candidate, head))

        surviving = self.overlay_head_ranks[rank]
        tpos = tree.transit_pos
        tranks = tree.transit_ranks
        count = len(tpos)
        new_dist_get = new_dist.get
        changed: dict[int, float] = {}
        for start, end in intervals:
            i = bisect_left(tpos, start)
            while i < count and tpos[i] < end:
                head_rank = tranks[i]
                if head_rank in surviving:
                    changed[head_rank] = new_dist_get(order[tpos[i]], INFINITY)
                i += 1
        return changed

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        """Entry counts of the compiled structures (Table 6 style)."""
        return {
            "distance_graph_nodes": len(self.transit_nodes),
            "distance_graph_edges": sum(len(rows) for rows in self.overlay),
            "tree_nodes": sum(len(tree) for tree in self.trees),
            "inverted_index_entries": sum(
                len(ranks) for ranks in self.inverted.values()
            ),
        }
