"""Index size accounting (Table 6 of the paper).

Sizes are *model* estimates, not ``sys.getsizeof`` measurements: each
index entry is costed at what a C++ implementation would pay (the paper
measures its C++ structures), so relative sizes across oracles match the
paper's table shape.  The cost model:

* one adjacency entry (node id + weight)     : 12 bytes
* one tree entry (parent id + distance)      : 12 bytes
* one inverted-index entry (edge -> tree id) : 12 bytes
* one landmark distance entry                : 8 bytes
* one graph edge (endpoint ids + weight)     : 16 bytes
"""

from __future__ import annotations

from repro.oracle.base import DistanceSensitivityOracle

BYTES_PER_ADJACENCY_ENTRY = 12
BYTES_PER_TREE_ENTRY = 12
BYTES_PER_INVERTED_ENTRY = 12
BYTES_PER_LANDMARK_ENTRY = 8
BYTES_PER_GRAPH_EDGE = 16

_ENTRY_COSTS = {
    "distance_graph_nodes": 8,
    "distance_graph_edges": BYTES_PER_ADJACENCY_ENTRY,
    "tree_nodes": BYTES_PER_TREE_ENTRY,
    "inverted_index_entries": BYTES_PER_INVERTED_ENTRY,
    "landmark_entries": BYTES_PER_LANDMARK_ENTRY,
    "h_overlay_nodes": 8,
    "h_overlay_edges": BYTES_PER_ADJACENCY_ENTRY,
    "h_tree_nodes": BYTES_PER_TREE_ENTRY,
    "landmark_tree_entries": BYTES_PER_TREE_ENTRY,
}


def index_size_bytes(oracle: DistanceSensitivityOracle) -> int:
    """Estimate the preprocessed index size of ``oracle`` in bytes.

    Only preprocessed structures count; the input graph itself is shared
    by every method and excluded, exactly like the paper's Table 6
    (which omits DI, the method with no preprocessed data).
    """
    total = 0
    for kind, count in oracle.index_entries().items():
        total += _ENTRY_COSTS.get(kind, BYTES_PER_ADJACENCY_ENTRY) * count
    return total


def index_size_megabytes(oracle: DistanceSensitivityOracle) -> float:
    """Estimate the preprocessed index size in MB (Table 6 units)."""
    return index_size_bytes(oracle) / (1024.0 * 1024.0)
