"""Per-landmark build shards: CRC-32 framed flat arrays.

A *shard* is the serialized result of exactly one build work unit —
either a transit node's :func:`repro.overlay.distance_graph.
landmark_tree_unit` output (bounded tree + overlay out-edges) or one
ADISO landmark's Dijkstra pair — encoded as flat little-endian arrays
with a CRC-32 trailer.  Workers ship shards back to the coordinator
over a pipe, and the coordinator spools the same bytes to disk, so one
codec covers both the wire format and the checkpoint format.

Frame layout::

    magic     4 bytes   b"DSH1"
    version   1 byte
    kind      1 byte    1 = tree unit, 2 = landmark unit
    reserved  2 bytes   zero
    label     8 bytes   int64 — the transit node / landmark this is for
    length    4 bytes   uint32 — payload byte count
    payload   length    kind-specific flat arrays (below)
    crc32     4 bytes   uint32 over everything before it

Tree payload (all counts uint32, arrays 8-byte items)::

    m  k  nodes int64[m]  parents int64[m]  dists float64[m]
          heads int64[k]  weights float64[k]

``nodes`` is the tree's attach order (root first, ``parents[0] = -1``),
which is exactly the order :meth:`BoundedSearchResult.to_tree` used —
replaying ``attach`` in that order reconstructs the identical tree.
``heads``/``weights`` are the overlay out-edges in settle order.

Landmark payload::

    n  outbound float64[n]  inbound float64[n]

Dense rows over the *sorted node-id order* of the build container;
unreachable nodes hold ``inf``.

Determinism contract: shard bytes are a pure function of the unit's
result — no timestamps, pids, or worker ids ever enter the frame — so
a resumed build reads bytes a dead build wrote and still merges to a
bitwise-identical index.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from dataclasses import dataclass

from repro.exceptions import FormatError
from repro.pathing.spt import INFINITY, ShortestPathTree

SHARD_MAGIC = b"DSH1"
SHARD_VERSION = 1

TREE_KIND = 1
LANDMARK_KIND = 2

_KIND_NAMES = {TREE_KIND: "tree", LANDMARK_KIND: "landmark"}
_PREFIX = struct.Struct("<4sBBHqI")


def kind_name(kind: int) -> str:
    return _KIND_NAMES.get(kind, f"kind{kind}")


def _pack_array(typecode: str, values) -> bytes:
    data = array(typecode, values)
    if sys.byteorder != "little":  # pragma: no cover - x86/arm LE
        data.byteswap()
    return data.tobytes()


def _unpack_array(typecode: str, raw: bytes, count: int, offset: int):
    end = offset + count * 8
    data = array(typecode)
    data.frombytes(raw[offset:end])
    if sys.byteorder != "little":  # pragma: no cover - x86/arm LE
        data.byteswap()
    return data, end


def _frame(kind: int, label: int, payload: bytes) -> bytes:
    head = _PREFIX.pack(
        SHARD_MAGIC, SHARD_VERSION, kind, 0, label, len(payload)
    )
    body = head + payload
    return body + struct.pack("<I", zlib.crc32(body))


@dataclass
class TreeShard:
    """Decoded tree unit: one transit node's tree + overlay out-edges."""

    root: int
    nodes: list[int]
    parents: list[int]
    dists: list[float]
    out_edges: list[tuple[int, float]]

    def to_tree(self) -> ShortestPathTree:
        """Replay the attach sequence; identical to the worker's tree."""
        tree = ShortestPathTree(self.root)
        for node, parent, dist in zip(
            self.nodes[1:], self.parents[1:], self.dists[1:]
        ):
            tree.attach(node, parent, dist)
        return tree


@dataclass
class LandmarkShard:
    """Decoded landmark unit: dense Dijkstra rows for one landmark."""

    landmark: int
    outbound: list[float]
    inbound: list[float]

    def to_rows(
        self, node_ids: list[int]
    ) -> tuple[dict[int, float], dict[int, float]]:
        """Sparse ``{node: distance}`` maps, dropping unreachable rows."""
        if len(node_ids) != len(self.outbound):
            raise FormatError(
                f"landmark shard for {self.landmark} has "
                f"{len(self.outbound)} rows, graph has {len(node_ids)} "
                f"nodes"
            )
        out = {
            node: d
            for node, d in zip(node_ids, self.outbound)
            if d < INFINITY
        }
        into = {
            node: d
            for node, d in zip(node_ids, self.inbound)
            if d < INFINITY
        }
        return out, into


def encode_tree_shard(
    root: int,
    tree: ShortestPathTree,
    out_edges: list[tuple[int, float]],
) -> bytes:
    """Serialize one :func:`landmark_tree_unit` result."""
    nodes = list(tree.dist)  # attach order: root first
    if not nodes or nodes[0] != root:
        raise FormatError(
            f"tree for {root} does not start at its root (got "
            f"{nodes[:1]})"
        )
    parents = [-1] + [tree.parent[node] for node in nodes[1:]]
    dists = [tree.dist[node] for node in nodes]
    payload = b"".join(
        (
            struct.pack("<II", len(nodes), len(out_edges)),
            _pack_array("q", nodes),
            _pack_array("q", parents),
            _pack_array("d", dists),
            _pack_array("q", [head for head, _ in out_edges]),
            _pack_array("d", [weight for _, weight in out_edges]),
        )
    )
    return _frame(TREE_KIND, root, payload)


def encode_landmark_shard(
    landmark: int,
    node_ids: list[int],
    outbound: dict[int, float],
    inbound: dict[int, float],
) -> bytes:
    """Serialize one landmark's Dijkstra pair as dense rows.

    ``node_ids`` fixes the row order (the container's sorted node ids);
    nodes absent from a distance map get ``inf``.
    """
    payload = b"".join(
        (
            struct.pack("<I", len(node_ids)),
            _pack_array(
                "d", [outbound.get(node, INFINITY) for node in node_ids]
            ),
            _pack_array(
                "d", [inbound.get(node, INFINITY) for node in node_ids]
            ),
        )
    )
    return _frame(LANDMARK_KIND, landmark, payload)


def decode_shard(raw: bytes) -> TreeShard | LandmarkShard:
    """Decode and CRC-verify one shard frame.

    Raises
    ------
    FormatError
        On truncation, bad magic/version/kind, length mismatch, or a
        CRC-32 failure — every way a half-written or corrupted spool
        file can present.
    """
    if len(raw) < _PREFIX.size + 4:
        raise FormatError("shard truncated (no frame)")
    magic, version, kind, _, label, length = _PREFIX.unpack_from(raw)
    if magic != SHARD_MAGIC:
        raise FormatError(f"bad shard magic {magic!r}")
    if version != SHARD_VERSION:
        raise FormatError(f"unsupported shard version {version}")
    expected_len = _PREFIX.size + length + 4
    if len(raw) != expected_len:
        raise FormatError(
            f"shard length mismatch: frame says {expected_len} bytes, "
            f"got {len(raw)}"
        )
    body, (crc,) = raw[:-4], struct.unpack_from("<I", raw, len(raw) - 4)
    if zlib.crc32(body) != crc:
        raise FormatError(f"shard CRC mismatch for label {label}")
    payload = raw[_PREFIX.size : -4]

    if kind == TREE_KIND:
        m, k = struct.unpack_from("<II", payload)
        offset = 8
        nodes, offset = _unpack_array("q", payload, m, offset)
        parents, offset = _unpack_array("q", payload, m, offset)
        dists, offset = _unpack_array("d", payload, m, offset)
        heads, offset = _unpack_array("q", payload, k, offset)
        weights, offset = _unpack_array("d", payload, k, offset)
        if offset != len(payload):
            raise FormatError(f"tree shard for {label} has trailing bytes")
        return TreeShard(
            root=label,
            nodes=list(nodes),
            parents=list(parents),
            dists=list(dists),
            out_edges=list(zip(heads, weights)),
        )
    if kind == LANDMARK_KIND:
        (n,) = struct.unpack_from("<I", payload)
        offset = 4
        outbound, offset = _unpack_array("d", payload, n, offset)
        inbound, offset = _unpack_array("d", payload, n, offset)
        if offset != len(payload):
            raise FormatError(
                f"landmark shard for {label} has trailing bytes"
            )
        return LandmarkShard(
            landmark=label, outbound=list(outbound), inbound=list(inbound)
        )
    raise FormatError(f"unknown shard kind {kind}")
