"""PRU: the pruning-based minimal k-path cover of Funke et al. [10].

The heuristic starts with ``C = V`` and visits nodes in increasing order
of total degree (the visiting order the paper reports as effective for
PRU).  A node ``v`` is pruned from the cover iff every simple path of
``k`` nodes through ``v`` already contains another cover node — i.e. the
longest simple cover-free path through ``v`` has fewer than ``k`` nodes.

The through-``v`` check decomposes into the longest simple cover-free
path *ending at* ``v`` (over in-edges) plus the longest one *starting at*
``v`` (over out-edges).  Both are computed by depth-capped DFS.  Because
the two segments could in principle share nodes, a positive decomposition
check is confirmed by a joint DFS before pruning; this keeps the cover
valid (never prunes a node whose removal would uncover a k-node path).

Longest-simple-path enumeration is exponential on dense graphs; a node
expansion ``budget`` bails out conservatively (keeps the node in the
cover).  This mirrors the behaviour seen in the paper's Table 3, where
PRU explodes on dense inputs and is not even runnable on some datasets.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.cover.isc import PathCoverResult


def _longest_cover_free_chain(
    graph: DiGraph,
    start: int,
    cover: set[int],
    k: int,
    outward: bool,
    budget: list[int],
) -> int:
    """Return the max node count of a simple cover-free chain from ``start``.

    ``start`` itself is counted.  ``outward=True`` follows out-edges
    (paths starting at ``start``); ``False`` follows in-edges (paths
    ending at ``start``).  The search stops early at depth ``k`` and
    decrements ``budget[0]`` per expansion, returning ``k`` (a
    conservative overestimate) when the budget is exhausted.
    """
    best = 1
    stack: list[tuple[int, frozenset[int], int]] = [
        (start, frozenset((start,)), 1)
    ]
    while stack:
        if budget[0] <= 0:
            return k
        budget[0] -= 1
        node, on_path, length = stack.pop()
        if length > best:
            best = length
            if best >= k:
                return best
        neighbors = (
            graph.successors(node) if outward else graph.predecessors(node)
        )
        for other in neighbors:
            if other in cover or other in on_path:
                continue
            stack.append((other, on_path | {other}, length + 1))
    return best


def _has_k_path_through(
    graph: DiGraph,
    v: int,
    cover: set[int],
    k: int,
    budget: list[int],
) -> bool:
    """Exact check: does a simple cover-free path of ``k`` nodes pass ``v``?

    Enumerates in-segments ending at ``v`` and, for each, extends with a
    DFS over out-edges avoiding the in-segment's nodes.  Conservatively
    returns True when the budget is exhausted.
    """
    # Each stack item: (frontier tail of in-segment, nodes of in-segment).
    in_stack: list[tuple[int, frozenset[int]]] = [(v, frozenset((v,)))]
    while in_stack:
        if budget[0] <= 0:
            return True
        budget[0] -= 1
        node, segment = in_stack.pop()
        needed = k - len(segment)
        if needed <= 0:
            return True
        # Try to extend outward from v by ``needed`` more nodes, avoiding
        # the current in-segment.
        out_stack: list[tuple[int, frozenset[int], int]] = [(v, segment, 0)]
        while out_stack:
            if budget[0] <= 0:
                return True
            budget[0] -= 1
            out_node, on_path, extra = out_stack.pop()
            if extra >= needed:
                return True
            for succ in graph.successors(out_node):
                if succ in cover or succ in on_path:
                    continue
                out_stack.append((succ, on_path | {succ}, extra + 1))
        # Grow the in-segment by one more predecessor.
        if len(segment) < k:
            for pred in graph.predecessors(node):
                if pred in cover or pred in segment:
                    continue
                in_stack.append((pred, segment | {pred}))
    return False


def pru_path_cover(
    graph: DiGraph,
    k: int,
    budget_per_node: int = 20000,
) -> PathCoverResult:
    """Compute a minimal k-path cover by pruning (Funke et al. [10]).

    Parameters
    ----------
    graph:
        The input graph ``G``.
    k:
        The path-cover parameter (number of nodes per covered path).
    budget_per_node:
        DFS expansion budget per pruning check.  Exhausting it keeps the
        node in the cover (conservative), modelling PRU's blow-up on
        dense graphs.

    Returns
    -------
    PathCoverResult
        ``topology`` is left as the subgraph induced shortcut topology is
        not produced by PRU; it is set to the induced subgraph on the
        cover for interface uniformity.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    cover = set(graph.nodes())
    order = sorted(graph.nodes(), key=lambda n: (graph.degree(n), n))
    pruned = 0
    for v in order:
        cover.discard(v)
        budget = [budget_per_node]
        # Fast necessary condition via the chain decomposition: if even
        # the optimistic in-chain + out-chain bound stays below k, no
        # joint path can reach k nodes and v is prunable outright.
        in_len = _longest_cover_free_chain(graph, v, cover, k, False, budget)
        out_len = _longest_cover_free_chain(graph, v, cover, k, True, budget)
        if in_len + out_len - 1 < k:
            pruned += 1
            continue
        # The optimistic bound reached k; confirm with the joint check.
        if _has_k_path_through(graph, v, cover, k, budget):
            cover.add(v)
        else:
            pruned += 1
    return PathCoverResult(
        cover=cover,
        k=k,
        topology=graph.subgraph(cover),
        rounds=[pruned],
    )
