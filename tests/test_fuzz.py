"""Cross-oracle fuzz: every exact oracle against Dijkstra, one sweep.

A trimmed in-suite version of the offline fuzz used during development
(250 seeds x 4 queries x 6 oracles, zero disagreements).  Keeps a
representative slice running on every CI pass.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.dhnr import DHNROracle
from repro.oracle.adiso import ADISO
from repro.oracle.caching import CachingDISO
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.oracle.hierarchy import HierarchicalDISO
from repro.oracle.diso_minus import DISOMinus
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


@pytest.mark.parametrize("seed", range(0, 40, 4))
def test_all_exact_oracles_agree(seed):
    graph = random_graph(seed, n=24 + seed % 14, extra=40 + seed % 50)
    oracles = [
        DISO(graph, tau=2, theta=float(seed % 7)),
        DISOBidirectional(graph, tau=2, theta=4.0),
        DISOMinus(graph, tau=2, theta=4.0),
        ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=seed),
        CachingDISO(graph, tau=2, theta=4.0),
        DHNROracle(graph, tau=2, theta=4.0),
        HierarchicalDISO(graph, tau=2, theta=4.0, extra_level_taus=(1, 1)),
    ]
    rng = random.Random(seed * 31)
    n = graph.number_of_nodes()
    for _ in range(3):
        failed = random_failures_from(
            graph, rng.randrange(10_000), rng.randrange(0, 14)
        )
        s, t = rng.randrange(n), rng.randrange(n)
        expected = shortest_distance(graph, s, t, failed)
        for oracle in oracles:
            got = oracle.query(s, t, failed)
            if expected == float("inf"):
                assert got == expected, (oracle.name, s, t, failed)
            else:
                assert got == pytest.approx(expected), (
                    oracle.name, s, t, failed,
                )
