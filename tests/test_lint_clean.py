"""The lint gate: the tree must carry zero unsuppressed findings.

This is the test that turns ``dsolint`` from advice into an invariant:
any commit that introduces unsorted set iteration on a serialization
path, an unpicklable dispatch target, a NaN ``==``, or a swallowed
exception fails here with the exact file:line, before the fork/spawn
CI matrix gets a chance to flake on it.  Waivers are visible in the
diff as ``# dsolint: disable=... -- reason`` comments and must carry a
justification (enforced by DSO001).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, to_text

REPO_ROOT = Path(__file__).resolve().parent.parent

GATED = ["src", "benchmarks", "examples", "tests"]


@pytest.mark.parametrize("tree", GATED)
def test_tree_is_lint_clean(tree):
    root = REPO_ROOT / tree
    assert root.is_dir(), f"gated tree {tree!r} missing"
    report = lint_paths([root])
    assert report.files, f"no python files found under {tree!r}"
    assert report.ok, "unsuppressed dsolint findings:\n" + to_text(report)


def test_src_suppressions_all_justified():
    report = lint_paths([REPO_ROOT / "src"])
    unjustified = [
        finding
        for finding in report.suppressed
        if not finding.justification
    ]
    locations = [finding.location() for finding in unjustified]
    assert not unjustified, f"suppressions without -- reason: {locations}"
