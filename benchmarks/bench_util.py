"""Shared helpers for the benchmark suite.

Benchmarks reproduce the paper's tables and figures at reduced synthetic
scale.  Heavy artefacts (graphs, query batches, oracle indices) are
built once per session and cached; each bench then measures the
interesting operation with pytest-benchmark and writes the formatted
paper-style table to ``benchmarks/results/`` so EXPERIMENTS.md can quote
it.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
from functools import lru_cache
from pathlib import Path

from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
LATENCY_JSON = REPO_ROOT / "BENCH_query_latency.json"
THROUGHPUT_JSON = REPO_ROOT / "BENCH_throughput.json"
BUILD_JSON = REPO_ROOT / "BENCH_build.json"

#: Benchmark scale: large enough to show the paper's separations,
#: small enough for a pure-Python suite to finish in minutes.
SCALE = 0.5
SEED = 7
QUERY_COUNT = 20


@lru_cache(maxsize=None)
def dataset(name: str, scale: float = SCALE):
    """Session-cached synthetic dataset."""
    return load_dataset(name, scale=scale, seed=SEED)


@lru_cache(maxsize=None)
def queries(name: str, f_gen: int = 5, p: float = 0.0005, count: int = QUERY_COUNT):
    """Session-cached query batch for a dataset (paper defaults)."""
    graph = dataset(name)
    return tuple(
        generate_queries(graph, count, f_gen=f_gen, p=p, seed=SEED)
    )


def write_result(name: str, text: str) -> Path:
    """Persist a formatted experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def latency_summary(build_s: float, query_seconds: list[float]) -> dict:
    """Collapse per-query wall-clock samples into the checked-in schema.

    ``p99`` is the nearest-rank 99th percentile, which degrades to the
    maximum for small sample counts instead of extrapolating.
    """
    ordered = sorted(query_seconds)
    rank = min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)
    return {
        "build_s": round(build_s, 6),
        "median_query_us": round(1e6 * statistics.median(ordered), 3),
        "p99_query_us": round(1e6 * ordered[rank], 3),
    }


@lru_cache(maxsize=None)
def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``.

    Recorded in every emitted BENCH payload so a number in a
    checked-in results file is attributable to the code that produced
    it — without it the perf trajectory across PRs is guesswork.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


@lru_cache(maxsize=None)
def lint_rules_version() -> str:
    """The dsolint rule-catalogue version, or ``"unknown"``.

    Perf numbers are only comparable between runs that were produced
    under the same machine-checked invariant set — a catalogue bump can
    mean a hot path gained a ``sorted()`` — so every bench entry
    records which catalogue it ran under.
    """
    try:
        from repro.analysis import RULE_CATALOGUE_VERSION
    except ImportError:
        return "unknown"
    return RULE_CATALOGUE_VERSION


def bench_metadata() -> dict:
    """The attribution fields stamped into every emitted bench entry."""
    return {
        "git_rev": git_rev(),
        "cpu_count": os.cpu_count(),
        "lint_rules": lint_rules_version(),
    }


def _load_merge_base(path: Path) -> dict:
    """Read an existing merge target, quarantining it if unusable.

    A truncated or hand-mangled results file must not brick every
    future bench run: anything that fails to parse as a JSON object is
    moved aside to ``<name>.corrupt`` (preserved for inspection) and
    the merge starts from an empty dict.
    """
    if not path.exists():
        return {}
    try:
        merged = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        merged = None
    if isinstance(merged, dict):
        return merged
    backup = path.with_name(path.name + ".corrupt")
    try:
        path.replace(backup)
    except OSError:
        pass
    return {}


def merge_json(entries: dict[str, dict], path: Path) -> Path:
    """Merge ``entries`` into the JSON object stored at ``path``.

    Merging (rather than overwriting) lets independent benches each
    contribute their own keys to one checked-in file.  Corrupt existing
    files are backed up and replaced instead of aborting the run.

    Every dict-valued entry is stamped with :func:`bench_metadata`
    (``git_rev`` + ``cpu_count``) on the way through, so all BENCH_*
    emitters get attribution centrally rather than each remembering to.
    """
    merged = _load_merge_base(path)
    for key, value in entries.items():
        if isinstance(value, dict):
            value = {**value, **bench_metadata()}
        merged[key] = value
    path.write_text(
        json.dumps(dict(sorted(merged.items())), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def merge_latency_json(
    entries: dict[str, dict], path: Path | None = None
) -> Path:
    """Merge ``{oracle: {build_s, median_query_us, p99_query_us}}`` into
    the repo-root ``BENCH_query_latency.json`` (or ``path``)."""
    return merge_json(entries, path or LATENCY_JSON)


def run_query_batch(oracle, batch) -> float:
    """Answer every query in ``batch``; return the distance checksum.

    Returning a value derived from every answer keeps the work honest
    under aggressive interpreters.
    """
    total = 0.0
    for query in batch:
        distance = oracle.query(query.source, query.target, query.failed)
        if distance != float("inf"):
            total += distance
    return total
