"""The bench result emitter must survive corrupt checked-in files.

``merge_json`` (and ``merge_latency_json`` on top of it) read-merge-
write a repo-root JSON file.  A truncated or hand-mangled file must not
brick every future bench run: the bad file is quarantined to
``<name>.corrupt`` and the merge starts fresh.  Every dict-valued entry
is stamped with attribution metadata (``git_rev`` + ``cpu_count`` +
``lint_rules``, the dsolint catalogue version) on the way through.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from bench_util import (  # noqa: E402
    bench_metadata,
    git_rev,
    lint_rules_version,
    merge_json,
    merge_latency_json,
)


def _strip_stamp(merged: dict) -> dict:
    """Drop the attribution fields so tests can compare the payloads."""
    return {
        key: {
            inner_key: inner_value
            for inner_key, inner_value in value.items()
            if inner_key not in ("git_rev", "cpu_count", "lint_rules")
        }
        if isinstance(value, dict)
        else value
        for key, value in merged.items()
    }


def test_merge_into_fresh_file(tmp_path):
    target = tmp_path / "out.json"
    merge_json({"a": {"x": 1}}, target)
    merged = json.loads(target.read_text())
    assert _strip_stamp(merged) == {"a": {"x": 1}}


def test_merge_stamps_attribution_metadata(tmp_path):
    target = tmp_path / "out.json"
    merge_json({"a": {"x": 1}}, target)
    entry = json.loads(target.read_text())["a"]
    assert entry["git_rev"] == git_rev()
    assert entry["cpu_count"] == os.cpu_count()
    assert entry["lint_rules"] == lint_rules_version()


def test_bench_metadata_fields():
    meta = bench_metadata()
    assert set(meta) == {"git_rev", "cpu_count", "lint_rules"}
    assert isinstance(meta["git_rev"], str) and meta["git_rev"]
    assert meta["cpu_count"] == os.cpu_count()


def test_lint_rules_version_matches_catalogue():
    from repro.analysis import RULE_CATALOGUE_VERSION

    assert lint_rules_version() == RULE_CATALOGUE_VERSION


def test_merge_preserves_existing_keys(tmp_path):
    target = tmp_path / "out.json"
    merge_json({"a": {"x": 1}}, target)
    merge_json({"b": {"y": 2}}, target)
    merged = json.loads(target.read_text())
    assert _strip_stamp(merged) == {"a": {"x": 1}, "b": {"y": 2}}


def test_merge_overwrites_same_key(tmp_path):
    target = tmp_path / "out.json"
    merge_json({"a": {"x": 1}}, target)
    merge_json({"a": {"x": 9}}, target)
    merged = json.loads(target.read_text())
    assert _strip_stamp(merged) == {"a": {"x": 9}}


@pytest.mark.parametrize(
    "bad_content",
    [
        '{"a": {"x": 1}',          # truncated mid-object
        "not json at all",
        '["a", "list", "not", "a", "dict"]',
        "",                        # empty file
        b"\xff\xfe garbage bytes".decode("latin-1"),
    ],
)
def test_corrupt_file_is_quarantined_not_fatal(tmp_path, bad_content):
    target = tmp_path / "out.json"
    target.write_text(bad_content, encoding="utf-8")
    merge_json({"fresh": {"x": 1}}, target)
    merged = json.loads(target.read_text())
    assert _strip_stamp(merged) == {"fresh": {"x": 1}}
    backup = tmp_path / "out.json.corrupt"
    assert backup.exists()
    assert backup.read_text(encoding="utf-8") == bad_content


def test_merge_latency_json_takes_explicit_path(tmp_path):
    target = tmp_path / "latency.json"
    merge_latency_json({"DISO@road": {"median_query_us": 5.0}}, target)
    merge_latency_json({"ADISO@road": {"median_query_us": 7.0}}, target)
    merged = json.loads(target.read_text())
    assert set(merged) == {"DISO@road", "ADISO@road"}


def test_output_is_sorted_and_newline_terminated(tmp_path):
    target = tmp_path / "out.json"
    merge_json({"zeta": {}, "alpha": {}}, target)
    text = target.read_text()
    assert text.endswith("\n")
    assert text.index('"alpha"') < text.index('"zeta"')
