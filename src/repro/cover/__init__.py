"""Transit-node selection: k-path covers and partition border sets."""

from repro.cover.hpc import hpc_path_cover, lr_deg_independent_set
from repro.cover.independent_set import (
    IndependentSetResult,
    get_independent_set,
    is_independent_set,
    sigma,
)
from repro.cover.isc import PathCoverResult, isc_path_cover, verify_k_path_cover
from repro.cover.partitioning import (
    border_nodes,
    edge_cut,
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.cover.pruning import pru_path_cover

__all__ = [
    "get_independent_set",
    "is_independent_set",
    "sigma",
    "IndependentSetResult",
    "isc_path_cover",
    "verify_k_path_cover",
    "PathCoverResult",
    "pru_path_cover",
    "hpc_path_cover",
    "lr_deg_independent_set",
    "border_nodes",
    "edge_cut",
    "uniform_partition",
    "metis_like_partition",
    "spectral_partition",
]
