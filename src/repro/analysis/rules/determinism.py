"""DSO1xx — determinism rules.

The parallel build plane's headline guarantee (bitwise-identical
snapshots at any ``--jobs`` count, fork or spawn) holds only while
everything that feeds serialized bytes iterates in a reproducible
order.  Python sets iterate in hash order, which varies with
``PYTHONHASHSEED`` and insertion history, so any set iteration whose
order can *escape* into a sequence, a report, or a file is a latent
nondeterminism bug.  Unseeded module-level RNG calls and wall-clock
reads in library code break replayability the same way.
"""

from __future__ import annotations

import ast

from repro.analysis.inference import is_set_expr
from repro.analysis.rules import Rule

#: Builtins whose result forgets iteration order, so feeding them an
#: unordered iterable is safe. ``sorted`` is the canonical fix itself.
_ORDER_FREE_SINKS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "sorted"}
)

#: Calls that materialize their argument's iteration order.
_ORDER_CAPTURING_CALLS = frozenset({"list", "tuple"})


def _is_sorted_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


class SetIterationOrderRule(Rule):
    """DSO101: a comprehension (or ``list()``/``tuple()``/``join()``
    call) iterates a set without an enclosing ``sorted()``.

    Any comprehension is flagged, including set-to-set rebuilds where
    order is provably irrelevant — proving that is exactly what the
    justified ``# dsolint: disable=DSO101 -- ...`` comment records, so
    the next reader does not have to re-derive it.  Generator
    expressions feeding an order-free aggregate (``sum``, ``min``,
    ``max``, ``any``, ``all``, ``len``) are exempt.
    """

    rule_id = "DSO101"
    severity = "error"
    summary = (
        "set iterated into an order-sensitive expression without sorted()"
    )

    def _flag(self, node: ast.AST, iterable: ast.expr) -> None:
        self.report(
            node,
            "iteration order of a set escapes into a value; wrap the "
            "iterable in sorted(...) or suppress with a justification",
        )

    def _check_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> None:
        if isinstance(node, ast.GeneratorExp):
            parent = self.context.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_SINKS
            ):
                return
        env = self.context.env_at(node)
        for generator in node.generators:
            if _is_sorted_call(generator.iter):
                continue
            if is_set_expr(generator.iter, env):
                self._flag(node, generator.iter)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        env = self.context.env_at(node)
        capturing = (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_CAPTURING_CALLS
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if capturing and node.args:
            argument = node.args[0]
            if not isinstance(argument, ast.GeneratorExp) and is_set_expr(
                argument, env
            ):
                self._flag(node, argument)
        self.generic_visit(node)


class SetLoopEmissionRule(Rule):
    """DSO102: a ``for`` statement iterates a set and its body emits
    ordered output (``.append``/``.extend``/``.insert``/``yield``).

    Plain accumulation loops over sets (dict updates, relaxations,
    counters) are order-insensitive and stay legal; the moment the loop
    body pushes onto a sequence or yields, hash order leaks into data
    that may reach a report, a snapshot, or a shard file.
    """

    rule_id = "DSO102"
    severity = "error"
    summary = "for-loop over a set appends/yields ordered output unsorted"

    _EMITTING_METHODS = frozenset({"append", "extend", "insert", "appendleft"})

    def _body_emits_order(self, statements: list[ast.stmt]) -> ast.AST | None:
        for statement in statements:
            for node in ast.walk(statement):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return node
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._EMITTING_METHODS
                ):
                    return node
        return None

    def visit_For(self, node: ast.For) -> None:
        env = self.context.env_at(node)
        if not _is_sorted_call(node.iter) and is_set_expr(node.iter, env):
            emitter = self._body_emits_order(node.body)
            if emitter is not None:
                self.report(
                    node.iter,
                    "loop over a set feeds ordered output (line "
                    f"{getattr(emitter, 'lineno', '?')}); iterate "
                    "sorted(...) instead",
                )
        self.generic_visit(node)


class UnseededRandomRule(Rule):
    """DSO103: module-level ``random.*`` draws from the shared,
    unseeded global RNG.

    Library code must thread an explicit ``random.Random(seed)``
    instance so builds and experiments replay exactly; a stray
    ``random.shuffle`` silently breaks snapshot parity between two runs
    of the same command.  ``random.Random(seed)`` construction is the
    sanctioned pattern and is not flagged; ``random.Random()`` without
    a seed is.
    """

    rule_id = "DSO103"
    severity = "error"
    summary = "unseeded global random.* call in library code"

    _GLOBAL_DRAWS = frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "betavariate", "expovariate",
        "normalvariate", "getrandbits", "triangular", "seed",
    })

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id == "random":
                if func.attr in self._GLOBAL_DRAWS:
                    self.report(
                        node,
                        f"random.{func.attr}() uses the process-global "
                        "RNG; draw from an explicit random.Random(seed)",
                    )
                elif func.attr == "Random" and not (
                    node.args or node.keywords
                ):
                    self.report(
                        node,
                        "random.Random() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
            elif func.value.id in {"np", "numpy"} and func.attr == "random":
                # numpy.random.<draw> handled via the attribute chain
                # below (value is the np.random attribute itself).
                pass
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in {"np", "numpy"}
            and func.value.attr == "random"
            and func.attr not in {"default_rng", "RandomState", "Generator"}
        ):
            self.report(
                node,
                f"numpy.random.{func.attr}() uses the global generator; "
                "use numpy.random.default_rng(seed)",
            )
        self.generic_visit(node)


class WallClockRule(Rule):
    """DSO104: ``time.time()`` in library code.

    Durations must come from ``time.perf_counter()`` (monotonic,
    highest resolution); wall-clock timestamps make replayed builds and
    byte-compared profiles differ for no semantic reason.  Report
    scripts (experiments/benchmarks profile) may read the wall clock —
    the rule is off there by config, not by suppression.
    """

    rule_id = "DSO104"
    severity = "error"
    summary = "time.time() in library code (use perf_counter)"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self.report(
                node,
                "time.time() is wall-clock; use time.perf_counter() for "
                "durations (or justify a timestamp field)",
            )
        self.generic_visit(node)
