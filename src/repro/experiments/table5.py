"""Table 5 — overall query time and preprocessing time, all methods.

The paper's headline table: per dataset, the query time and
preprocessing time of DISO-, DISO, ADISO, DISO-S (social only),
ADISO-P (road only), FDDO, A*, and DI.  Expected shape on road
networks: ADISO-P < ADISO < DISO < A* < DI << FDDO; on social networks
DISO-S leads and FDDO remains slowest.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.experiments.harness import compare_methods
from repro.experiments.report import human_ms, human_seconds, render_table
from repro.graph.digraph import DiGraph
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_minus import DISOMinus
from repro.oracle.diso_s import DISOSparse
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries


def standard_factories(
    spec,
    seed: int = 7,
    fddo_landmarks: int = 20,
) -> dict[str, Callable[[DiGraph], object]]:
    """Oracle factories with the paper's per-family parameters.

    Road datasets get ADISO-P; social datasets get DISO-S, matching the
    paper's table layout.
    """
    factories: dict[str, Callable[[DiGraph], object]] = {
        "DISO-": lambda g: DISOMinus(
            g, tau=spec.tau_diso, theta=spec.theta
        ),
        "DISO": lambda g: DISO(g, tau=spec.tau_diso, theta=spec.theta),
        "ADISO": lambda g: ADISO(
            g,
            tau=spec.tau_adiso,
            theta=spec.theta,
            alpha=spec.alpha,
            seed=seed,
        ),
    }
    if spec.kind == "road":
        factories["ADISO-P"] = lambda g: ADISOPartial(
            g,
            tau=spec.tau_adiso,
            theta=spec.theta,
            alpha=spec.alpha,
            seed=seed,
            tau_h=2,
        )
    else:
        factories["DISO-S"] = lambda g: DISOSparse(
            g, beta=spec.beta, tau=spec.tau_diso, theta=spec.theta
        )
    factories["FDDO"] = lambda g: FDDOOracle(
        g, num_landmarks=fddo_landmarks, seed=seed
    )
    factories["A*"] = lambda g: AStarOracle(g, alpha=spec.alpha, seed=seed)
    factories["DI"] = lambda g: DijkstraOracle(g)
    return factories


def run_table5(
    datasets: tuple[str, ...] = ("NY", "DBLP"),
    scale: float = 0.5,
    query_count: int = 20,
    seed: int = 7,
    fddo_landmarks: int = 20,
) -> list[dict[str, object]]:
    """Reproduce Table 5 rows (one per dataset x method)."""
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        queries = generate_queries(
            graph, query_count, f_gen=5, p=0.0005, seed=seed
        )
        factories = standard_factories(
            spec, seed=seed, fddo_landmarks=fddo_landmarks
        )
        results = compare_methods(graph, factories, queries)
        for method, batch in results.items():
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "query_ms": batch.query_ms,
                    "preprocess_seconds": batch.preprocess_seconds,
                    "error_pct": batch.error_pct,
                    "query_seconds": batch.query_seconds,
                }
            )
    return rows


def format_table5(rows: list[dict[str, object]]) -> str:
    """Render :func:`run_table5` rows like the paper's Table 5."""
    display = [
        {
            "dataset": row["dataset"],
            "method": row["method"],
            "query": human_ms(row["query_ms"]),
            "preprocess": human_seconds(row["preprocess_seconds"]),
            "error": f"{row['error_pct']:.2f}%",
        }
        for row in rows
    ]
    return render_table(
        display,
        columns=[
            ("dataset", "Data"),
            ("method", "Method"),
            ("query", "Query(ms)"),
            ("preprocess", "Prep(s)"),
            ("error", "Avg err"),
        ],
        title="Table 5: overall query and preprocessing time",
    )
