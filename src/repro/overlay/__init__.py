"""The fault-tolerant two-level index: distance graph, BSP trees, inverted
tree index, and the sparsification boosting technique."""

from repro.overlay.bsp_tree import BoundedTreeStore
from repro.overlay.distance_graph import (
    DistanceGraph,
    build_distance_graph,
    verify_distance_graph,
)
from repro.overlay.frozen_index import FrozenIndex, FrozenTree
from repro.overlay.inverted_index import InvertedTreeIndex
from repro.overlay.sparsify import (
    SparsificationResult,
    default_degree_floor,
    sparsify_graph,
    verify_sparsification,
)

__all__ = [
    "DistanceGraph",
    "build_distance_graph",
    "verify_distance_graph",
    "BoundedTreeStore",
    "InvertedTreeIndex",
    "FrozenIndex",
    "FrozenTree",
    "SparsificationResult",
    "sparsify_graph",
    "verify_sparsification",
    "default_degree_floor",
]
