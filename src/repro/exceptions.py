"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can install a single ``except ReproError`` guard around oracle
construction and querying.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding an edge whose endpoint does not exist, negative edge
    weights, or referring to an unknown node id.
    """


class NodeNotFoundError(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, tail: int, head: int) -> None:
        super().__init__(f"edge ({tail!r}, {head!r}) is not in the graph")
        self.tail = tail
        self.head = head


class NegativeWeightError(GraphError):
    """Raised when a negative edge weight is supplied.

    All algorithms in this library (Dijkstra variants, A* with landmark
    lower bounds, TNR overlays) require non-negative real weights, exactly
    as the paper assumes.
    """

    def __init__(self, tail: int, head: int, weight: float) -> None:
        super().__init__(
            f"edge ({tail!r}, {head!r}) has negative weight {weight!r}; "
            "only non-negative weights are supported"
        )
        self.tail = tail
        self.head = head
        self.weight = weight


class QueryError(ReproError):
    """Raised for invalid distance sensitivity queries.

    Examples: a source/destination that is not in the graph, or a failed
    edge set referencing unknown edges when strict validation is enabled.
    """


class PreprocessingError(ReproError):
    """Raised when oracle preprocessing cannot complete.

    Examples: an empty transit node set, or a sparsification parameter
    ``beta < 1``.
    """


class PartitionError(ReproError):
    """Raised when a graph cannot be partitioned as requested.

    Examples: asking for more parts than the graph has nodes, or
    partitioning an empty graph.  Partitioners guarantee every emitted
    part is non-empty (an empty part would make a per-shard oracle
    build crash on an empty node set), so impossible requests fail
    here, eagerly and with a clear message, instead of downstream.
    """


class FormatError(ReproError):
    """Raised when parsing a graph file fails."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
