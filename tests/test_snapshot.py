"""Binary snapshots must restore engines with bitwise answer parity.

The snapshot contract is stronger than "approximately the same oracle":
a restored engine performs identical arithmetic to the in-memory frozen
engine it was saved from, so every answer — including infinities from
disconnecting failure sets and the s == t shortcut — is ``==``-equal.
These tests sweep random graphs and failure sets via hypothesis, check
the container rejects every corruption mode with ``FormatError``, and
pin down the zero-copy property (sections are views over the mapping,
not copies) plus byte-identical re-saves.
"""

from __future__ import annotations

import json
import random
import struct
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FormatError
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.oracle.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotReader,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)
from util import random_failures_from, random_graph


def _random_cases(graph, seed: int, count: int):
    """Random (source, target, failures) with s == t and heavy cuts."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    edges = sorted((t, h) for t, h, _ in graph.edges())
    for index in range(count):
        source = rng.choice(nodes)
        target = source if index % 7 == 0 else rng.choice(nodes)
        # index % 5 == 0 draws a large failure set, which on a sparse
        # random graph regularly disconnects target — the infinity path.
        k = 12 if index % 5 == 0 else rng.randint(0, 4)
        failed = set(rng.sample(edges, min(k, len(edges) - 1))) if k else None
        yield source, target, failed


def _assert_snapshot_parity(oracle, graph, seed):
    """save -> mmap load -> every query bitwise equal to the original."""
    with tempfile.TemporaryDirectory() as tmp:
        path = save_snapshot(oracle, Path(tmp) / "o.dsosnap")
        loaded = load_snapshot(path)
        try:
            for source, target, failed in _random_cases(graph, seed, 30):
                expected = oracle.query(source, target, failed)
                got = loaded.query(source, target, failed)
                assert got == expected, (source, target, failed)
        finally:
            loaded._snapshot_reader.close()


class TestSnapshotParity:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=8, deadline=None)
    def test_diso_parity(self, seed):
        graph = random_graph(seed)
        frozen = DISO(graph, tau=3).freeze()
        _assert_snapshot_parity(frozen, graph, seed + 1)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=6, deadline=None)
    def test_adiso_parity(self, seed):
        graph = random_graph(seed)
        frozen = ADISO(graph, tau=3, seed=seed).freeze()
        _assert_snapshot_parity(frozen, graph, seed + 1)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=6, deadline=None)
    def test_diso_s_parity_with_fallback_sections(self, seed):
        graph = random_graph(seed, n=25, extra=90)
        frozen = DISOSparse(graph, beta=1.5, tau=3).freeze()
        assert frozen._fallback is not None
        _assert_snapshot_parity(frozen, graph, seed + 1)

    def test_self_loop_query_and_unknown_node(self):
        graph = random_graph(3)
        frozen = DISO(graph, tau=3).freeze()
        with tempfile.TemporaryDirectory() as tmp:
            path = save_snapshot(frozen, Path(tmp) / "o.dsosnap")
            loaded = load_snapshot(path)
            assert loaded.query(5, 5) == 0.0
            with pytest.raises(Exception):
                loaded.query(10**9, 5)
            loaded._snapshot_reader.close()


class TestSnapshotContainer:
    def test_save_rejects_dict_oracles(self, tmp_path):
        oracle = DISO(random_graph(1), tau=3)
        with pytest.raises(FormatError, match="frozen"):
            save_snapshot(oracle, tmp_path / "o.dsosnap")

    def test_resave_is_byte_identical(self, tmp_path):
        frozen = ADISO(random_graph(2), tau=3, seed=2).freeze()
        first = save_snapshot(frozen, tmp_path / "a.dsosnap")
        loaded = load_snapshot(first)
        second = save_snapshot(loaded, tmp_path / "b.dsosnap")
        assert first.read_bytes() == second.read_bytes()
        loaded._snapshot_reader.close()

    def test_sections_are_zero_copy_views(self, tmp_path):
        frozen = DISO(random_graph(4), tau=3).freeze()
        path = save_snapshot(frozen, tmp_path / "o.dsosnap")
        loaded = load_snapshot(path)
        reader = loaded._snapshot_reader
        for storage in (
            loaded.frozen._offsets,
            loaded.frozen._heads,
            loaded.frozen._weights,
            loaded.index.trees[0].order,
            loaded.index.trees[0].dist,
        ):
            assert isinstance(storage, memoryview)
            # .obj walks back to the buffer owner: the mapping itself.
            assert storage.obj is reader._mmap
        reader.close()

    def test_info_reads_header_without_restoring(self, tmp_path):
        frozen = DISO(random_graph(5), tau=3).freeze()
        path = save_snapshot(frozen, tmp_path / "o.dsosnap")
        info = snapshot_info(path)
        assert info["engine"] == "FrozenDISO"
        assert info["file_bytes"] == path.stat().st_size
        assert info["meta"]["num_nodes"] == 30
        names = {entry["name"] for entry in info["sections"]}
        assert "graph.offsets" in names and "trees.order" in names

    def test_verify_false_skips_checksum(self, tmp_path):
        frozen = DISO(random_graph(6), tau=3).freeze()
        path = save_snapshot(frozen, tmp_path / "o.dsosnap")
        loaded = load_snapshot(path, verify=False)
        assert loaded.query(0, 7) == frozen.query(0, 7)
        loaded._snapshot_reader.close()


class TestSnapshotCorruption:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        frozen = DISO(random_graph(7), tau=3).freeze()
        return save_snapshot(frozen, tmp_path / "o.dsosnap")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dsosnap"
        path.write_bytes(b"")
        with pytest.raises(FormatError, match="empty"):
            SnapshotReader(path)

    def test_bad_magic(self, snapshot_path):
        raw = bytearray(snapshot_path.read_bytes())
        raw[:8] = b"NOTASNAP"
        snapshot_path.write_bytes(bytes(raw))
        with pytest.raises(FormatError, match="magic"):
            load_snapshot(snapshot_path)

    def test_truncated_header(self, snapshot_path):
        snapshot_path.write_bytes(snapshot_path.read_bytes()[:10])
        with pytest.raises(FormatError, match="truncated"):
            load_snapshot(snapshot_path)

    def test_truncated_payload(self, snapshot_path):
        raw = snapshot_path.read_bytes()
        snapshot_path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(FormatError, match="truncated"):
            load_snapshot(snapshot_path)

    def test_version_mismatch(self, snapshot_path):
        raw = snapshot_path.read_bytes()
        (header_len,) = struct.unpack_from("<I", raw, 8)
        header = json.loads(raw[12 : 12 + header_len].decode("utf-8"))
        header["format_version"] = 99
        # Re-encoding may change the header length; rebuild the prefix
        # with correct padding so only the version is wrong.
        new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
        prefix_len = 8 + 4 + len(new_header)
        padding = b"\x00" * ((-prefix_len) % 8)
        old_payload_start = (12 + header_len + 7) & ~7
        snapshot_path.write_bytes(
            SNAPSHOT_MAGIC
            + struct.pack("<I", len(new_header))
            + new_header
            + padding
            + raw[old_payload_start:]
        )
        with pytest.raises(FormatError, match="version"):
            load_snapshot(snapshot_path)

    def test_checksum_mismatch(self, snapshot_path):
        info = snapshot_info(snapshot_path)
        raw = bytearray(snapshot_path.read_bytes())
        raw[info["payload_start"] + 8] ^= 0xFF
        snapshot_path.write_bytes(bytes(raw))
        with pytest.raises(FormatError, match="checksum"):
            load_snapshot(snapshot_path)

    def test_garbled_header_json(self, snapshot_path):
        raw = bytearray(snapshot_path.read_bytes())
        raw[14] = 0xFF  # inside the JSON header
        snapshot_path.write_bytes(bytes(raw))
        with pytest.raises(FormatError, match="corrupt|checksum"):
            load_snapshot(snapshot_path)
