"""Shortest-path machinery: Dijkstra variants, A*, SPTs, dynamic repair."""

from repro.pathing.astar import (
    astar_distance,
    astar_path,
    astar_search_stats,
    zero_heuristic,
)
from repro.pathing.bounded import (
    BoundedSearchResult,
    bounded_dijkstra,
    bounded_tree,
    in_access_nodes,
    out_access_nodes,
)
from repro.pathing.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    eccentricity,
    path_distance,
    reverse_dijkstra,
    shortest_distance,
    shortest_path,
    shortest_path_tree,
)
from repro.pathing.csr_bounded import CSRBoundedResult, csr_bounded_dijkstra
from repro.pathing.dynamic_spt import (
    affected_subtree_nodes,
    apply_failures,
    recompute_boundary_distances,
    recompute_distances,
)
from repro.pathing.heap import AddressableHeap
from repro.pathing.spt import INFINITY, ShortestPathTree

__all__ = [
    "AddressableHeap",
    "INFINITY",
    "ShortestPathTree",
    "dijkstra",
    "shortest_distance",
    "shortest_path",
    "shortest_path_tree",
    "path_distance",
    "bidirectional_dijkstra",
    "reverse_dijkstra",
    "eccentricity",
    "bounded_dijkstra",
    "BoundedSearchResult",
    "csr_bounded_dijkstra",
    "CSRBoundedResult",
    "bounded_tree",
    "out_access_nodes",
    "in_access_nodes",
    "recompute_distances",
    "recompute_boundary_distances",
    "apply_failures",
    "affected_subtree_nodes",
    "astar_distance",
    "astar_path",
    "astar_search_stats",
    "zero_heuristic",
]
