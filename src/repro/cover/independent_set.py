"""Algorithm 1 of the paper: density-aware greedy independent set.

``GetIS`` incrementally selects an independent set ``I`` of the current
distance graph ``D_i`` while tracking the *net contribution*

    sigma(v) = |NPair(v) \\ E_I|  -  (indeg_{D_i}(v) + outdeg_{D_i}(v))

of each candidate to the edge count of the next distance graph, where
``NPair(v) = n_in(v) x n_out(v)`` over ``D_i``.  A node is only eliminated
while ``sigma(v) <= theta``; the threshold ``theta`` is the paper's knob
controlling the sparsity of the resulting distance graph (Section 4.3.2).

Eliminating ``v`` from the working graph ``D_I`` replaces it by shortcut
edges between its in- and out-neighbours, exactly the node-contraction
step that turns a graph into the distance graph over the surviving nodes.

Implementation notes
--------------------
* ``sigma`` values are held in an addressable heap.  When eliminating a
  node adds shortcut edges ``(x, y)``, only candidates ``u`` with
  ``x ∈ n_in(u)`` and ``y ∈ n_out(u)`` — i.e. ``u ∈ out(x) ∩ in(y)`` on
  ``D_i`` — can see their sigma change, so exactly those are refreshed.
  This keeps the greedy selection exact (no lazy staleness).
* Independence is enforced on ``D_i``: neighbours of an eliminated node
  are evicted from the candidate heap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.pathing.heap import AddressableHeap


@dataclass
class IndependentSetResult:
    """Result of one ``GetIS`` round.

    Attributes
    ----------
    independent_set:
        The selected independent set ``I`` (the eliminated nodes).
    contracted:
        The working graph ``D_I`` after all eliminations — this *is*
        ``D_{i+1}``, the next distance-graph topology (Section 4.3.2:
        "D_I in Algorithm 1 becomes D_{i+1} after I is computed").
    """

    independent_set: set[int]
    contracted: DiGraph


def sigma(graph: DiGraph, working: DiGraph, node: int) -> int:
    """Compute ``sigma(node)`` of Algorithm 1.

    Parameters
    ----------
    graph:
        ``D_i`` — the round's input graph, fixing ``NPair`` and degrees.
    working:
        ``D_I`` — the evolving contracted graph, fixing ``E_I``.
    node:
        The candidate node.
    """
    in_neighbors = graph.predecessors(node)
    out_neighbors = graph.successors(node)
    missing = 0
    for x in in_neighbors:
        working_out_x = working.successors(x) if working.has_node(x) else {}
        for y in out_neighbors:
            if x == y or y == node or x == node:
                continue
            if y not in working_out_x:
                missing += 1
    return missing - (len(in_neighbors) + len(out_neighbors))


def get_independent_set(
    graph: DiGraph,
    theta: float,
) -> IndependentSetResult:
    """Run Algorithm 1 (``GetIS``) on ``graph`` with threshold ``theta``.

    Returns the independent set and the contracted graph ``D_{i+1}``.

    The loop invariant matches the paper: at every step the eliminated
    set is independent in ``graph``, and elimination stops when every
    remaining non-adjacent candidate has ``sigma > theta``.
    """
    working = graph.copy()
    independent: set[int] = set()
    blocked: set[int] = set()  # nodes adjacent to I on D_i

    heap: AddressableHeap[int] = AddressableHeap()
    for node in graph.nodes():
        heap.push(node, sigma(graph, working, node))

    while heap:
        node, _score = heap.pop()
        if node in blocked:
            continue
        # Scores are exact (local refresh), so the popped node is the
        # argmin of Algorithm 1 line 5; line 6-7 break when it exceeds
        # theta.
        if sigma(graph, working, node) > theta:
            break
        independent.add(node)

        # Block D_i-neighbours (independence constraint).
        for neighbor in graph.predecessors(node):
            if neighbor not in blocked and neighbor != node:
                blocked.add(neighbor)
                if neighbor in heap:
                    heap.remove(neighbor)
        for neighbor in graph.successors(node):
            if neighbor not in blocked and neighbor != node:
                blocked.add(neighbor)
                if neighbor in heap:
                    heap.remove(neighbor)

        # Eliminate from the working graph: remove node, add shortcuts.
        in_neighbors = [
            x for x in graph.predecessors(node) if working.has_node(x)
        ]
        out_neighbors = [
            y for y in graph.successors(node) if working.has_node(y)
        ]
        new_edges: list[tuple[int, int]] = []
        if working.has_node(node):
            working.remove_node(node)
        for x in in_neighbors:
            working_out_x = working.successors(x)
            for y in out_neighbors:
                if x == y:
                    continue
                if y not in working_out_x:
                    working.add_edge(x, y, 1.0)
                    new_edges.append((x, y))

        # Refresh sigma of candidates whose missing-pair count changed.
        touched: set[int] = set()
        for x, y in new_edges:
            # u sees (x, y) in NPair(u) iff x in n_in(u) and y in n_out(u)
            # on D_i, i.e. u in out(x) ∩ in(y).
            candidates = set(graph.successors(x)) & set(graph.predecessors(y))
            touched.update(candidates)
        for u in touched:
            if u in heap and u not in blocked:
                heap.update(u, sigma(graph, working, u))

    return IndependentSetResult(independent_set=independent, contracted=working)


def is_independent_set(graph: DiGraph, nodes: set[int]) -> bool:
    """Check that no two nodes of ``nodes`` are adjacent in ``graph``.

    Adjacency counts either direction, as in the paper's definition ("no
    two nodes in I are adjacent").
    """
    for node in nodes:
        if not graph.has_node(node):
            return False
        for other in graph.successors(node):
            if other != node and other in nodes:
                return False
        for other in graph.predecessors(node):
            if other != node and other in nodes:
                return False
    return True
