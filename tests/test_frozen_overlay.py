"""Frozen stitch plane tests: CSR compile, closure, kernels, serving.

The acceptance bar (ISSUE 9): the frozen plane must be bitwise-equal
to the PR 8 scalar stitcher — poison queries and error strings
included — at K in {2, 4}, under failure sets biased toward
border-incident and cross-shard edges.  Bitwise equality is meaningful
because every graph here has integer (or unit) weights, making float
addition exact regardless of association order (the closure fast
path's one re-association included).
"""

from __future__ import annotations

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.graph.digraph import DiGraph
from repro.graph.generators import grid_network
from repro.oracle.diso import DISO
from repro.oracle.snapshot import SectionWriter, pack_container
from repro.serving.sharded import ShardedQueryService
from repro.sharding import (
    MANIFEST_NAME,
    FrozenOverlay,
    ShardedOracle,
    build_sharded,
    compile_overlay_csr,
    compute_border_closure,
    load_frozen_overlay,
    save_sharded_snapshot,
)
from repro.sharding.oracle import INFINITY, stitch_over_borders
from repro.sharding.snapshot import SHARD_MAGIC, SHARD_VERSION
from test_sharding import GRAPHS, _assert_same, _query_mix
from util import exact_random_graph


def _build(graph, parts, seed=1):
    build = build_sharded(graph, parts, method="metis", seed=seed)
    return build, ShardedOracle.from_build(build)


# ----------------------------------------------------------------------
# CSR compile + snapshot roundtrip
# ----------------------------------------------------------------------
class TestCompile:
    def test_compile_deterministic(self):
        _, sharded = _build(grid_network(5, 5), 2)
        assert compile_overlay_csr(sharded.overlay) == compile_overlay_csr(
            sharded.overlay
        )

    def test_layout_invariants(self):
        _, sharded = _build(exact_random_graph(11, n=30, extra=60), 4)
        overlay = sharded.overlay
        csr = compile_overlay_csr(overlay)
        borders = sorted(
            node for shard in overlay.shard_borders for node in shard
        )
        assert csr["border_ids"] == borders
        assert len(csr["offsets"]) == len(borders) + 1
        assert csr["offsets"][-1] == len(csr["heads"]) == len(csr["weights"])
        # Row u = full-width type-2 segment (diagonal 0.0 at the node's
        # local index) followed by its cross edges.
        frozen = FrozenOverlay.from_overlay(overlay)
        for dense, node in enumerate(borders):
            shard = csr["border_shard"][dense]
            local = csr["border_local"][dense]
            start = csr["offsets"][dense]
            width = len(overlay.shard_borders[shard])
            assert overlay.shard_borders[shard][local] == node
            assert csr["weights"][start + local] == 0.0
            cross = csr["offsets"][dense + 1] - start - width
            assert cross == len(overlay.cross_adjacency.get(node, ()))
        assert frozen.num_borders == len(borders)

    def test_roundtrip_matches_in_memory_compile(self, tmp_path):
        graph = exact_random_graph(12, n=40, extra=70)
        build, sharded = _build(graph, 4)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        loaded = load_frozen_overlay(target)
        direct = FrozenOverlay.from_overlay(
            sharded.overlay, compute_closure=True
        )
        try:
            assert np.array_equal(loaded.border_ids, direct.border_ids)
            assert np.array_equal(loaded.border_shard, direct.border_shard)
            assert np.array_equal(loaded.border_local, direct.border_local)
            assert np.array_equal(loaded.offsets, direct.offsets)
            assert np.array_equal(loaded.heads, direct.heads)
            assert np.array_equal(loaded.weights, direct.weights)
            assert np.array_equal(loaded.closure, direct.closure)
            assert loaded.cross_slot == direct.cross_slot
        finally:
            loaded.close()

    def test_loaded_arrays_are_zero_copy_views(self, tmp_path):
        build, _ = _build(grid_network(4, 4), 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        loaded = load_frozen_overlay(target)
        try:
            assert loaded.reader is not None
            for lane in (loaded.heads, loaded.weights, loaded.closure):
                assert not lane.flags.owndata  # view into the mmap
        finally:
            loaded.close()
        assert loaded.reader is None

    def test_old_manifest_falls_back_to_compile(self, tmp_path):
        """Manifests predating the frozen.* sections still load."""
        graph = grid_network(4, 4)
        build, sharded = _build(graph, 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        # Re-pack the manifest with only the PR 8 sections.
        plan = build.plan
        writer = SectionWriter()
        nodes = sorted(plan.assignment)
        writer.add("assignment.nodes", "q", nodes)
        writer.add(
            "assignment.parts", "q", [plan.assignment[n] for n in nodes]
        )
        writer.add("borders.all", "q", plan.borders)
        for shard in range(plan.parts):
            writer.add(f"shard{shard}.borders", "q", plan.shard_borders[shard])
            writer.add(
                f"shard{shard}.matrix",
                "d",
                [w for row in build.border_matrices[shard] for w in row],
            )
        writer.add("cross.tails", "q", [e[0] for e in plan.cross_edges])
        writer.add("cross.heads", "q", [e[1] for e in plan.cross_edges])
        writer.add("cross.weights", "d", [e[2] for e in plan.cross_edges])
        meta = {
            "parts": plan.parts,
            "shard_files": [f"shard-{s:04d}.dsosnap" for s in range(2)],
        }
        (target / MANIFEST_NAME).write_bytes(
            pack_container(
                writer,
                magic=SHARD_MAGIC,
                version=SHARD_VERSION,
                engine="ShardedSnapshot",
                meta=meta,
            )
        )
        fallback = load_frozen_overlay(target)
        assert fallback.reader is None  # compiled, not mmapped
        direct = FrozenOverlay.from_overlay(
            sharded.overlay, compute_closure=True
        )
        assert np.array_equal(fallback.weights, direct.weights)
        assert np.array_equal(fallback.closure, direct.closure)


# ----------------------------------------------------------------------
# Closure matrix
# ----------------------------------------------------------------------
class TestClosure:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_closure_matches_scalar_walk(self, graph_name):
        """closure[i][j] == the scalar stitch from a zero seed, bitwise."""
        _, sharded = _build(GRAPHS[graph_name](), 2)
        overlay = sharded.overlay
        closure = compute_border_closure(overlay)
        borders = sorted(
            node for shard in overlay.shard_borders for node in shard
        )
        adjacency = overlay.adjacency()
        for i, source in enumerate(borders):
            for j, target in enumerate(borders):
                want = stitch_over_borders(
                    [(source, 0.0)], {target: 0.0}, adjacency
                )
                _assert_same(closure[i][j], want)

    def test_build_attaches_closure(self, tmp_path):
        graph = grid_network(5, 5)
        build, sharded = _build(graph, 3)
        assert build.border_closure == compute_border_closure(sharded.overlay)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        loaded = load_frozen_overlay(target)
        try:
            assert np.array_equal(
                loaded.closure, np.asarray(build.border_closure)
            )
        finally:
            loaded.close()

    def test_closure_answer_matches_scalar_stitch(self):
        graph = exact_random_graph(11, n=30, extra=60)
        build, sharded = _build(graph, 4)
        overlay = sharded.overlay
        frozen = FrozenOverlay.from_overlay(
            overlay, closure=build.border_closure
        )
        rng = random.Random(17)
        nodes = sorted(graph.nodes())
        adjacency = overlay.adjacency()
        checked = 0
        for _ in range(40):
            source, target = rng.choice(nodes), rng.choice(nodes)
            shard_s = overlay.assignment[source]
            shard_t = overlay.assignment[target]
            if shard_s == shard_t:
                continue
            oracle_s = sharded.shard_oracles[shard_s]
            oracle_t = sharded.shard_oracles[shard_t]
            sources = [
                (b, oracle_s.query(source, b))
                for b in overlay.shard_borders[shard_s]
            ]
            targets = [
                (b, oracle_t.query(b, target))
                for b in overlay.shard_borders[shard_t]
            ]
            want = stitch_over_borders(
                sources,
                {b: v for b, v in targets if v < INFINITY},
                adjacency,
            )
            _assert_same(frozen.closure_answer(sources, targets), want)
            checked += 1
        assert checked > 10

    def test_closure_answer_respects_upper_bound(self):
        build, sharded = _build(grid_network(4, 4), 2)
        frozen = FrozenOverlay.from_overlay(
            sharded.overlay, closure=build.border_closure
        )
        borders = [int(b) for b in frozen.border_ids]
        sources = [(borders[0], 0.0)]
        targets = [(borders[-1], 0.0)]
        unbounded = frozen.closure_answer(sources, targets)
        assert frozen.closure_answer(sources, targets, upper_bound=0.0) == 0.0
        assert frozen.closure_answer(sources, targets, 2 * unbounded + 1) \
            == unbounded
        # No finite leg on either side: the upper bound stands.
        assert frozen.closure_answer([], targets, 7.0) == 7.0
        assert frozen.closure_answer(
            [(borders[0], INFINITY)], targets, 7.0
        ) == 7.0


# ----------------------------------------------------------------------
# The batched stitch kernel
# ----------------------------------------------------------------------
def _legs_for(sharded, source, target, per_shard):
    overlay = sharded.overlay
    shard_s = overlay.assignment[source]
    shard_t = overlay.assignment[target]
    f_s = per_shard.get(shard_s, frozenset())
    f_t = per_shard.get(shard_t, frozenset())
    sources = [
        (b, sharded.shard_oracles[shard_s].query(source, b, f_s))
        for b in overlay.shard_borders[shard_s]
    ]
    targets = [
        (b, sharded.shard_oracles[shard_t].query(b, target, f_t))
        for b in overlay.shard_borders[shard_t]
    ]
    upper = INFINITY
    if shard_s == shard_t:
        upper = sharded.shard_oracles[shard_s].query(source, target, f_s)
    return sources, targets, upper


class TestStitchBatch:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("parts", [2, 4])
    def test_failure_free_batch_matches_scalar(self, graph_name, parts):
        graph = GRAPHS[graph_name]()
        _, sharded = _build(graph, parts)
        overlay = sharded.overlay
        frozen = FrozenOverlay.from_overlay(overlay)
        rng = random.Random(5)
        nodes = sorted(graph.nodes())
        batch = [
            _legs_for(sharded, rng.choice(nodes), rng.choice(nodes), {})
            for _ in range(25)
        ]
        stitched = frozen.stitch_batch(batch)
        adjacency = overlay.adjacency()
        for answer, (sources, targets, upper) in zip(stitched, batch):
            want = stitch_over_borders(
                sources,
                {b: v for b, v in targets if v < INFINITY},
                adjacency,
                upper_bound=upper,
            )
            _assert_same(float(answer), want)

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_patched_batch_matches_scalar(self, graph_name):
        """One repaired + cross-failed patch shared by a whole batch."""
        graph = GRAPHS[graph_name]()
        build, sharded = _build(graph, 4)
        overlay = sharded.overlay
        frozen = FrozenOverlay.from_overlay(overlay)
        rng = random.Random(9)
        # A failure set hitting border-incident intra-shard edges plus
        # cross-shard edges — the hard classes from the parity suite.
        failed = set(rng.sample(sorted(overlay.cross_keys), 2))
        border_set = {b for shard in overlay.shard_borders for b in shard}
        intra = [
            (tail, head)
            for tail, head, _ in graph.edges()
            if overlay.assignment[tail] == overlay.assignment[head]
            and (tail in border_set or head in border_set)
        ]
        failed.update(rng.sample(intra, min(len(intra), 3)))
        per_shard, cross_failed = overlay.split_failures(frozenset(failed))
        repaired = {
            shard: sharded.repair_rows(shard, per_shard[shard])
            for shard in overlay.shards_touched(per_shard)
        }
        assert repaired and cross_failed  # the patch is non-trivial
        nodes = sorted(graph.nodes())
        batch = [
            _legs_for(
                sharded, rng.choice(nodes), rng.choice(nodes), per_shard
            )
            for _ in range(20)
        ]
        stitched = frozen.stitch_batch(
            batch, repaired=repaired, cross_failed=cross_failed
        )
        adjacency = overlay.adjacency(repaired, cross_failed)
        for answer, (sources, targets, upper) in zip(stitched, batch):
            want = stitch_over_borders(
                sources,
                {b: v for b, v in targets if v < INFINITY},
                adjacency,
                upper_bound=upper,
            )
            _assert_same(float(answer), want)

    def test_patched_weights_shapes(self):
        build, sharded = _build(grid_network(5, 5), 2)
        overlay = sharded.overlay
        frozen = FrozenOverlay.from_overlay(overlay)
        # No patch: the shared base lane itself, untouched.
        assert frozen.patched_weights() is frozen.weights
        edge = sorted(overlay.cross_keys)[0]
        patched = frozen.patched_weights(cross_failed=[edge])
        assert patched is not frozen.weights
        assert patched[frozen.cross_slot[edge]] == INFINITY
        assert frozen.weights[frozen.cross_slot[edge]] < INFINITY
        # Unknown cross edges are ignored, like the scalar plane.
        assert np.array_equal(
            frozen.patched_weights(cross_failed=[(-1, -2)]), frozen.weights
        )

    def test_empty_batch_and_empty_seeds(self):
        _, sharded = _build(grid_network(4, 4), 2)
        frozen = FrozenOverlay.from_overlay(sharded.overlay)
        assert frozen.stitch_batch([]).size == 0
        borders = [int(b) for b in frozen.border_ids]
        # All-inf leads: the upper bound survives untouched.
        out = frozen.stitch_batch(
            [([(borders[0], INFINITY)], [(borders[1], 0.0)], 4.5)]
        )
        assert out.tolist() == [4.5]


# ----------------------------------------------------------------------
# Serving-level parity: frozen plane vs scalar plane
# ----------------------------------------------------------------------
class TestServingParity:
    @pytest.mark.parametrize(
        "graph_name,parts", [("grid6", 2), ("rand40", 4)]
    )
    def test_planes_agree_bitwise(self, graph_name, parts, tmp_path):
        """Same batch through both planes: answers and error strings
        byte-identical, poison queries included."""
        graph = GRAPHS[graph_name]()
        build, _ = _build(graph, parts)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        batch = list(_query_mix(graph, build.plan, seed=31, count=30))
        batch.append((999, 0, None))  # poison source
        batch.append((0, 999, None))  # poison target
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="scalar"
        ) as service:
            scalar = service.run(batch)
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="frozen"
        ) as service:
            frozen = service.run(batch)
        assert scalar.stitch_plane == "scalar"
        assert frozen.stitch_plane == "frozen"
        assert frozen.errors == scalar.errors
        for got, want in zip(frozen.answers, scalar.answers):
            _assert_same(got, want)
        # Failure-free cross-shard queries rode the closure fast path.
        assert frozen.closure_hits > 0
        assert scalar.closure_hits == 0
        assert frozen.stitch_seconds > 0.0

    def test_frozen_matches_reference_oracle(self, tmp_path):
        graph = grid_network(5, 5)
        build, _ = _build(graph, 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        reference = DISO(graph, tau=3).freeze()
        batch = list(_query_mix(graph, build.plan, seed=13, count=25))
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="frozen"
        ) as service:
            report = service.run(batch)
        for position, (source, target_node, failed) in enumerate(batch):
            assert report.errors[position] is None
            _assert_same(
                report.answers[position],
                reference.query(source, target_node, failed),
            )

    def test_invalid_plane_rejected(self, tmp_path):
        build, _ = _build(grid_network(3, 3), 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        with pytest.raises(ValueError):
            ShardedQueryService(target, stitch_plane="vectorized")

    def test_env_knob_selects_plane(self, tmp_path, monkeypatch):
        build, _ = _build(grid_network(3, 3), 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        monkeypatch.setenv("DSO_STITCH_PLANE", "scalar")
        service = ShardedQueryService(target)
        assert service.stitch_plane == "scalar"
        service.stop()


# ----------------------------------------------------------------------
# Repaired-row memoization across batches
# ----------------------------------------------------------------------
class TestRepairMemo:
    def _mixed_failure_batch(self, graph, build):
        """Cross-shard queries under two distinct intra-shard failure
        sets plus failure-free ones — three patch groups in one batch."""
        overlay = ShardedOracle.from_build(build).overlay
        border_set = {b for shard in overlay.shard_borders for b in shard}
        by_shard: dict[int, list[int]] = {}
        for node, shard in build.plan.assignment.items():
            by_shard.setdefault(shard, []).append(node)
        intra = [
            (tail, head)
            for tail, head, _ in graph.edges()
            if overlay.assignment[tail] == overlay.assignment[head]
            and tail in border_set
        ]
        f1 = (intra[0],)
        f2 = (intra[0], intra[1])
        source = sorted(by_shard[0])[0]
        target = sorted(by_shard[1])[0]
        return [
            (source, target, None),
            (source, target, f1),
            (target, source, f1),
            (source, target, f2),
            (target, source, f2),
        ]

    def test_second_batch_skips_repair_legs(self, tmp_path):
        graph = grid_network(6, 6)
        build, _ = _build(graph, 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        batch = self._mixed_failure_batch(graph, build)
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="frozen"
        ) as service:
            first = service.run(batch)
            assert len(service._repair_memo) > 0
            second = service.run(batch)
            # Repair legs resolved once: the second run plans strictly
            # fewer shard legs, and the answers do not move.
            assert sum(second.shard_loads) < sum(first.shard_loads)
            for got, want in zip(second.answers, first.answers):
                _assert_same(got, want)
            # Retiring any shard epoch drops the memo — the rows embed
            # answers from the retired snapshot generation.
            service.retire_snapshot_epoch()
            assert service._repair_memo == {}
            third = service.run(batch)
            assert sum(third.shard_loads) == sum(first.shard_loads)
            for got, want in zip(third.answers, first.answers):
                _assert_same(got, want)

    def test_memoized_batches_match_scalar_plane(self, tmp_path):
        graph = grid_network(6, 6)
        build, _ = _build(graph, 2)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        batch = self._mixed_failure_batch(graph, build)
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="scalar"
        ) as service:
            want = service.run(batch)
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="frozen"
        ) as service:
            service.run(batch)  # warm the memo
            got = service.run(batch)  # answered via memoized rows
        assert got.errors == want.errors
        for got_answer, want_answer in zip(got.answers, want.answers):
            _assert_same(got_answer, want_answer)


# ----------------------------------------------------------------------
# Zero-border and isolated-shard edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_single_shard_has_no_borders(self, tmp_path):
        graph = grid_network(4, 4)
        build = build_sharded(graph, 1, seed=0)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        loaded = load_frozen_overlay(target)
        try:
            assert loaded.num_borders == 0
            assert loaded.closure.shape == (0, 0)
            assert loaded.stitch_batch([([], [], 3.0)]).tolist() == [3.0]
        finally:
            loaded.close()
        reference = DISO(graph, tau=3).freeze()
        with ShardedQueryService(
            target, workers_per_shard=1, stitch_plane="frozen"
        ) as service:
            report = service.run([(0, 15, None), (15, 0, None)])
        assert report.closure_hits == 0  # nothing to stitch
        _assert_same(report.answers[0], reference.query(0, 15))
        _assert_same(report.answers[1], reference.query(15, 0))

    def test_disconnected_shards_stitch_to_infinity(self, tmp_path):
        graph = DiGraph()
        for base in (0, 10):
            for i in range(4):
                graph.add_edge(base + i, base + (i + 1) % 4, 1.0)
                graph.add_edge(base + (i + 1) % 4, base + i, 1.0)
        build = build_sharded(graph, 2, method="metis", seed=0)
        target = save_sharded_snapshot(build, tmp_path / "snap")
        batch = [(0, 12, None), (12, 0, None), (0, 3, None)]
        answers = {}
        for plane in ("scalar", "frozen"):
            with ShardedQueryService(
                target, workers_per_shard=1, stitch_plane=plane
            ) as service:
                answers[plane] = service.run(batch).answers
        for got, want in zip(answers["frozen"], answers["scalar"]):
            _assert_same(got, want)
        assert math.isinf(answers["frozen"][0])
        assert answers["frozen"][2] == 1.0
