"""Compressed sparse row (CSR) graph snapshots.

:class:`DiGraph` optimises for mutation (dict-of-dict adjacency); query
serving wants the opposite trade-off: an immutable snapshot laid out in
flat arrays, with integer-indexed nodes, contiguous adjacency slices,
and O(1) edge-id lookup.  :class:`FrozenGraph` provides that snapshot,
plus a Dijkstra specialised to it (:func:`csr_dijkstra`) that the
Dijkstra baseline can run ~1.5-2x faster than the dict version on large
batches — the closest a pure-Python implementation gets to the paper's
C++ memory layout.

Failed edges are passed as *edge ids* (``frozen.edge_id(u, v)``), which
makes the per-relaxation failure check a membership test against a
small integer set.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.digraph import DiGraph

INFINITY = float("inf")


class SearchArena:
    """Reusable, generation-stamped search state for one thread.

    Dijkstra-style searches need O(n) scratch state (distances, settled
    flags, parents).  Allocating it per query dominates small-query cost,
    and clearing it per query is just as bad.  The arena sidesteps both
    with the classic *generation stamp* trick: every array entry carries
    the generation that last wrote it, and :meth:`begin` invalidates the
    whole arena by incrementing a counter — O(1), no clearing.  An entry
    is live only while its stamp equals the current generation.

    One arena serves one thread; concurrent searches must use separate
    arenas (the frozen query engines keep one set per thread via
    ``threading.local``, preserving the paper's no-locking concurrency
    claim).

    Attributes
    ----------
    size:
        Number of addressable slots (``|V|`` of the search space).
    dist:
        Tentative distances; ``dist[i]`` is meaningful only when
        ``seen[i]`` equals the current generation.
    aux:
        A second float lane (A* costs); same validity rule as ``dist``.
    parent:
        Predecessor indices (``-1`` for roots); validity as ``dist``.
    seen:
        Generation stamp marking labelled slots.
    done:
        Generation stamp marking settled slots.
    """

    __slots__ = ("size", "dist", "aux", "parent", "seen", "done", "generation")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("arena size must be non-negative")
        self.size = size
        self.dist: list[float] = [INFINITY] * size
        self.aux: list[float] = [INFINITY] * size
        self.parent: list[int] = [-1] * size
        self.seen: list[int] = [0] * size
        self.done: list[int] = [0] * size
        self.generation = 0

    def begin(self) -> int:
        """Invalidate all state and return the fresh generation stamp."""
        self.generation += 1
        return self.generation

    def is_seen(self, index: int) -> bool:
        """Whether ``index`` was labelled in the current generation."""
        return self.seen[index] == self.generation

    def is_done(self, index: int) -> bool:
        """Whether ``index`` was settled in the current generation."""
        return self.done[index] == self.generation

    def distance(self, index: int) -> float:
        """Current-generation distance of ``index`` (``inf`` if unseen)."""
        if self.seen[index] == self.generation:
            return self.dist[index]
        return INFINITY

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.size}, "
            f"generation={self.generation})"
        )


class FrozenGraph:
    """An immutable CSR snapshot of a directed weighted graph.

    Attributes
    ----------
    node_ids:
        The original node labels, indexed by dense index.
    index_of:
        ``{original label -> dense index}``.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "_offsets",
        "_heads",
        "_weights",
        "_edge_index",
        "_adjacency",
        "_radjacency",
    )

    def __init__(
        self,
        node_ids: list[int],
        offsets: array,
        heads: array,
        weights: array,
    ) -> None:
        self.node_ids = node_ids
        self.index_of = {label: i for i, label in enumerate(node_ids)}
        self._offsets = offsets
        self._heads = heads
        self._weights = weights
        self._edge_index: dict[tuple[int, int], int] = {}
        # Pre-sliced (head, weight, edge_id) tuples per node: CPython
        # iterates a materialised tuple list markedly faster than it
        # indexes into arrays, so the search loops run over these while
        # the flat arrays remain the storage of record.
        self._adjacency: list[tuple[tuple[int, float, int], ...]] = []
        # Reverse adjacency mirrors the forward layout: per head, the
        # (tail, weight, edge_id) triples of all in-edges.  Edge ids are
        # the *forward* positions, so failure sets translate once and
        # work in both directions (backward bounded searches check the
        # same integer ids).
        reverse_rows: list[list[tuple[int, float, int]]] = [
            [] for _ in node_ids
        ]
        for tail in range(len(node_ids)):
            row = []
            for pos in range(offsets[tail], offsets[tail + 1]):
                head = heads[pos]
                weight = weights[pos]
                self._edge_index[(tail, head)] = pos
                row.append((head, weight, pos))
                reverse_rows[head].append((tail, weight, pos))
            self._adjacency.append(tuple(row))
        self._radjacency: list[tuple[tuple[int, float, int], ...]] = [
            tuple(row) for row in reverse_rows
        ]

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "FrozenGraph":
        """Snapshot ``graph`` into CSR form.

        Node labels are sorted for determinism; edges within a node are
        ordered by head label.
        """
        node_ids = sorted(graph.nodes())
        index_of = {label: i for i, label in enumerate(node_ids)}
        offsets = array("l", [0] * (len(node_ids) + 1))
        heads = array("l")
        weights = array("d")
        for i, label in enumerate(node_ids):
            successors = sorted(graph.successors(label).items())
            offsets[i + 1] = offsets[i] + len(successors)
            for head_label, weight in successors:
                heads.append(index_of[head_label])
                weights.append(weight)
        return cls(node_ids, offsets, heads, weights)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self.node_ids)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return len(self._heads)

    def out_degree(self, label: int) -> int:
        """Out-degree of the node with original ``label``."""
        index = self._require(label)
        return self._offsets[index + 1] - self._offsets[index]

    def successors(self, label: int) -> list[tuple[int, float]]:
        """``[(head_label, weight), ...]`` of the node with ``label``."""
        index = self._require(label)
        return [
            (self.node_ids[self._heads[pos]], self._weights[pos])
            for pos in range(self._offsets[index], self._offsets[index + 1])
        ]

    def in_degree(self, label: int) -> int:
        """In-degree of the node with original ``label``."""
        return len(self._radjacency[self._require(label)])

    def predecessors(self, label: int) -> list[tuple[int, float]]:
        """``[(tail_label, weight), ...]`` of the node with ``label``."""
        index = self._require(label)
        return [
            (self.node_ids[tail], weight)
            for tail, weight, _ in self._radjacency[index]
        ]

    def to_digraph(self) -> DiGraph:
        """Reconstruct a mutable :class:`DiGraph` with original labels.

        The inverse of :meth:`from_digraph` up to ordering: node and
        edge sets, labels, and weights round-trip exactly.  Used by the
        snapshot loader, which must hand restored oracles a ``DiGraph``
        for endpoint validation and node-failure expansion.
        """
        graph = DiGraph()
        graph.add_nodes(self.node_ids)
        node_ids = self.node_ids
        for tail, row in enumerate(self._adjacency):
            tail_label = node_ids[tail]
            for head, weight, _ in row:
                graph.add_edge(tail_label, node_ids[head], weight)
        return graph

    def edge_id(self, tail_label: int, head_label: int) -> int:
        """Dense edge id of ``(tail, head)``; the failure-set currency.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        tail = self._require(tail_label)
        head = self.index_of.get(head_label)
        if head is None:
            raise EdgeNotFoundError(tail_label, head_label)
        position = self._edge_index.get((tail, head))
        if position is None:
            raise EdgeNotFoundError(tail_label, head_label)
        return position

    def edge_ids(
        self, edges: set[tuple[int, int]] | frozenset[tuple[int, int]]
    ) -> frozenset[int]:
        """Translate an edge-label failure set to edge ids.

        Unknown edges are silently dropped, matching the oracles'
        treatment of failures naming non-existent edges.
        """
        ids: set[int] = set()
        for tail_label, head_label in edges:
            tail = self.index_of.get(tail_label)
            head = self.index_of.get(head_label)
            if tail is None or head is None:
                continue
            position = self._edge_index.get((tail, head))
            if position is not None:
                ids.add(position)
        return frozenset(ids)

    def _require(self, label: int) -> int:
        index = self.index_of.get(label)
        if index is None:
            raise NodeNotFoundError(label)
        return index


def csr_dijkstra(
    frozen: FrozenGraph,
    source_label: int,
    failed_edge_ids: frozenset[int] | None = None,
    target_label: int | None = None,
    arena: SearchArena | None = None,
) -> dict[int, float]:
    """Dijkstra over a CSR snapshot; distances keyed by original labels.

    The inner loop runs over flat arrays with local-variable aliases —
    the standard CPython micro-optimisation — and checks failures
    against an integer set.  Passing a :class:`SearchArena` (sized
    ``frozen.number_of_nodes()``) reuses its scratch arrays instead of
    allocating fresh O(n) state, which is what batch workloads want.

    Raises
    ------
    NodeNotFoundError
        If ``source_label`` (or ``target_label``) is not in the graph.
    ValueError
        If ``arena`` is sized for a different graph.
    """
    source = frozen._require(source_label)
    target = frozen._require(target_label) if target_label is not None else -1

    adjacency = frozen._adjacency
    n = len(frozen.node_ids)
    check_failed = bool(failed_edge_ids)
    push = heappush
    pop = heappop
    heap: list[tuple[float, int]] = [(0.0, source)]

    if arena is None:
        dist = [INFINITY] * n
        dist[source] = 0.0
        settled = bytearray(n)
        while heap:
            d, node = pop(heap)
            if settled[node]:
                continue
            settled[node] = 1
            if node == target:
                break
            for head, weight, pos in adjacency[node]:
                if settled[head]:
                    continue
                if check_failed and pos in failed_edge_ids:
                    continue
                candidate = d + weight
                if candidate < dist[head]:
                    dist[head] = candidate
                    push(heap, (candidate, head))
        node_ids = frozen.node_ids
        return {
            node_ids[i]: dist[i] for i in range(n) if dist[i] < INFINITY
        }

    if arena.size != n:
        raise ValueError(
            f"arena size {arena.size} does not match graph size {n}"
        )
    gen = arena.begin()
    dist = arena.dist
    seen = arena.seen
    done = arena.done
    touched = [source]
    seen[source] = gen
    dist[source] = 0.0
    while heap:
        d, node = pop(heap)
        if done[node] == gen:
            continue
        done[node] = gen
        if node == target:
            break
        for head, weight, pos in adjacency[node]:
            if done[head] == gen:
                continue
            if check_failed and pos in failed_edge_ids:
                continue
            candidate = d + weight
            if seen[head] != gen:
                seen[head] = gen
                dist[head] = candidate
                touched.append(head)
                push(heap, (candidate, head))
            elif candidate < dist[head]:
                dist[head] = candidate
                push(heap, (candidate, head))
    node_ids = frozen.node_ids
    return {node_ids[i]: dist[i] for i in touched}


def csr_distance(
    frozen: FrozenGraph,
    source_label: int,
    target_label: int,
    failed_edge_ids: frozenset[int] | None = None,
    arena: SearchArena | None = None,
) -> float:
    """Point-to-point distance over a CSR snapshot (``inf`` if cut off).

    With a :class:`SearchArena` the query allocates nothing but the
    heap, turning the per-query cost from O(n + search) into O(search).
    """
    source = frozen._require(source_label)
    target = frozen._require(target_label)
    adjacency = frozen._adjacency
    n = len(frozen.node_ids)
    check_failed = bool(failed_edge_ids)
    push = heappush
    pop = heappop
    heap: list[tuple[float, int]] = [(0.0, source)]

    if arena is None:
        dist = [INFINITY] * n
        dist[source] = 0.0
        settled = bytearray(n)
        while heap:
            d, node = pop(heap)
            if settled[node]:
                continue
            if node == target:
                return d
            settled[node] = 1
            for head, weight, pos in adjacency[node]:
                if settled[head]:
                    continue
                if check_failed and pos in failed_edge_ids:
                    continue
                candidate = d + weight
                if candidate < dist[head]:
                    dist[head] = candidate
                    push(heap, (candidate, head))
        return INFINITY

    if arena.size != n:
        raise ValueError(
            f"arena size {arena.size} does not match graph size {n}"
        )
    gen = arena.begin()
    dist = arena.dist
    seen = arena.seen
    done = arena.done
    seen[source] = gen
    dist[source] = 0.0
    while heap:
        d, node = pop(heap)
        if done[node] == gen:
            continue
        if node == target:
            return d
        done[node] = gen
        for head, weight, pos in adjacency[node]:
            if done[head] == gen:
                continue
            if check_failed and pos in failed_edge_ids:
                continue
            candidate = d + weight
            if seen[head] != gen:
                seen[head] = gen
                dist[head] = candidate
                push(heap, (candidate, head))
            elif candidate < dist[head]:
                dist[head] = candidate
                push(heap, (candidate, head))
    return INFINITY
