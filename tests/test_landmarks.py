"""Tests for landmark tables and all four selection strategies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import road_network
from repro.landmarks.base import LandmarkTable
from repro.landmarks.selection import (
    best_cover_landmarks,
    max_cover_landmarks,
    random_landmarks,
    sls_landmarks,
)
from repro.pathing.dijkstra import shortest_distance
from util import random_graph


class TestLandmarkTable:
    def test_len(self, small_road):
        table = LandmarkTable(small_road, [0, 1, 2])
        assert len(table) == 3

    def test_self_bound_is_zero(self, small_road):
        table = LandmarkTable(small_road, [0])
        assert table.lower_bound(5, 5) == 0.0

    def test_bound_from_landmark_itself_is_exact(self, small_road):
        table = LandmarkTable(small_road, [7])
        # l_7(7, v) = d(7, v) - d(7, 7) = d(7, v): exact at the landmark.
        assert table.lower_bound(7, 50) == pytest.approx(
            shortest_distance(small_road, 7, 50)
        )

    def test_landmark_bound_component(self, small_road):
        table = LandmarkTable(small_road, [3, 99])
        combined = table.lower_bound(10, 120)
        parts = [table.landmark_bound(i, 10, 120) for i in range(2)]
        assert combined == pytest.approx(max(parts))

    def test_heuristic_closure_matches_lower_bound(self, small_road):
        table = LandmarkTable(small_road, [0, 143])
        h = table.heuristic_to(120)
        for node in (0, 5, 90, 120):
            assert h(node) == pytest.approx(table.lower_bound(node, 120))

    def test_size_in_entries(self, small_road):
        table = LandmarkTable(small_road, [0, 1])
        n = small_road.number_of_nodes()
        assert table.size_in_entries() == 4 * n  # 2 dirs x 2 landmarks


class TestSelectors:
    def test_random_is_deterministic(self, small_road):
        a = random_landmarks(small_road, 5, seed=3)
        b = random_landmarks(small_road, 5, seed=3)
        assert a == b

    def test_random_count(self, small_road):
        assert len(random_landmarks(small_road, 7, seed=0)) == 7

    def test_random_all_nodes_when_count_exceeds(self):
        g = road_network(3, 3, seed=1)
        assert len(random_landmarks(g, 99)) == g.number_of_nodes()

    def test_sls_count_and_membership(self, small_road):
        landmarks = sls_landmarks(small_road, 6, seed=1)
        assert len(landmarks) == 6
        assert len(set(landmarks)) == 6
        for node in landmarks:
            assert small_road.has_node(node)

    def test_sls_deterministic(self, small_road):
        assert sls_landmarks(small_road, 4, seed=5) == sls_landmarks(
            small_road, 4, seed=5
        )

    def test_max_cover_count(self, small_road):
        landmarks = max_cover_landmarks(
            small_road, 5, seed=1, sample_pairs=60
        )
        assert len(landmarks) == 5
        assert len(set(landmarks)) == 5

    def test_best_cover_count(self, small_road):
        landmarks = best_cover_landmarks(small_road, 5, seed=1, sample_pairs=60)
        assert len(landmarks) == 5
        assert len(set(landmarks)) == 5

    def test_best_cover_prefers_path_nodes(self):
        # On a line every shortest path passes the middle: best-cover
        # must pick a central node first.
        from repro.graph.generators import path_network

        g = path_network(9)
        landmarks = best_cover_landmarks(g, 1, seed=0, sample_pairs=100)
        assert landmarks[0] in {2, 3, 4, 5, 6}


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    u=st.integers(min_value=0, max_value=29),
    v=st.integers(min_value=0, max_value=29),
)
def test_lower_bound_is_admissible(seed, u, v):
    """h(u, v) <= d(u, v) for all pairs — the ALT soundness property."""
    graph = random_graph(seed)
    table = LandmarkTable(graph, [0, 9, 21])
    bound = table.lower_bound(u, v)
    true = shortest_distance(graph, u, v)
    assert bound <= true + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_heuristic_is_consistent(seed):
    """h(u) <= w(u, v) + h(v) along every edge — required for settling."""
    graph = random_graph(seed)
    table = LandmarkTable(graph, [4, 18])
    h = table.heuristic_to(25)
    for tail, head, weight in graph.edges():
        assert h(tail) <= weight + h(head) + 1e-9
