"""Bench: endpoint caching on repeated-endpoint workloads (Example 1).

The paper's Example 1 workload — one commuter, many closure variants —
re-uses the same endpoints across queries.  CachingDISO serves the
access-node searches from cache whenever the failures stay outside the
endpoints' bounded regions; this bench quantifies the win over plain
DISO on exactly that workload.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_caching.py

runs the *serving-plane* variant of the same workload: the commuter
batch (with exact repeats, as real re-asked routes produce) served by
a process pool at 1/2/4 workers, with and without the dispatcher
result cache, merged into the repo-root ``BENCH_throughput.json``.
The pytest-benchmark tests above stay in-process and measure the
endpoint (bounded-search) cache instead — the two caches compose but
answer different questions.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.oracle.caching import CachingDISO
from repro.oracle.diso import DISO

from bench_util import SEED, dataset


@lru_cache(maxsize=None)
def commuter_workload():
    """One (s, t) pair, 30 closure variants away from the endpoints."""
    graph = dataset("NY")
    nodes = sorted(graph.nodes())
    source, target = nodes[0], nodes[-1]
    rng = random.Random(SEED)
    edges = sorted(graph.edge_set())
    # Closures sampled from the middle of the edge list: statistically
    # far from the two corner endpoints of the road grid.
    middle = edges[len(edges) // 3: 2 * len(edges) // 3]
    variants = [frozenset(rng.sample(middle, 4)) for _ in range(30)]
    return graph, source, target, variants


def _run(oracle, source, target, variants) -> float:
    total = 0.0
    for failed in variants:
        distance = oracle.query(source, target, failed)
        if distance != float("inf"):
            total += distance
    return total


def test_plain_diso_repeated_endpoints(benchmark):
    graph, source, target, variants = commuter_workload()
    oracle = DISO(graph, tau=4, theta=1.0)
    checksum = benchmark(_run, oracle, source, target, variants)
    assert checksum > 0


def test_caching_diso_repeated_endpoints(benchmark):
    graph, source, target, variants = commuter_workload()
    oracle = CachingDISO(graph, tau=4, theta=1.0)
    oracle.query(source, target)  # warm
    checksum = benchmark(_run, oracle, source, target, variants)
    assert checksum > 0
    assert oracle.cache_hits > 0


def test_answers_identical(benchmark):
    graph, source, target, variants = commuter_workload()
    plain = DISO(graph, tau=4, theta=1.0)
    cached = CachingDISO(graph, transit=plain.transit)

    def compare():
        mismatches = 0
        for failed in variants:
            a = plain.query(source, target, failed)
            b = cached.query(source, target, failed)
            if abs(a - b) > 1e-9:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert mismatches == 0


# ----------------------------------------------------------------------
# Standalone serving-plane row (not collected by pytest-benchmark)
# ----------------------------------------------------------------------
WORKER_COUNTS = (1, 2, 4)
CACHE_SIZE = 1024
ROUNDS = 3
#: Each closure variant is asked this many times — the commuter
#: re-asking the identical route while the same closures are in force.
REPEATS = 4


def run_serving(smoke: bool = False) -> dict:
    """Serve the commuter workload through the process pool, cached
    and uncached, at each pool size; return the merged-row payload."""
    import os
    import tempfile
    from pathlib import Path

    from repro.serving import QueryService

    graph, source, target, variants = commuter_workload()
    if smoke:
        variants = variants[:6]
    batch = [
        (source, target, tuple(sorted(failed)))
        for failed in variants
    ] * REPEATS
    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    expected_one = [
        oracle.query(source, target, failed) for failed in variants
    ]
    expected = expected_one * REPEATS

    result: dict = {
        "graph": "NY",
        "oracle": oracle.name,
        "workload": "commuter",
        "queries": len(batch),
        "unique_keys": len(variants),
        "cache_size": CACHE_SIZE,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "workers": {},
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
        path = Path(tmp) / "oracle.dsosnap"
        from repro.oracle.snapshot import save_snapshot

        save_snapshot(oracle, path)
        worker_counts = (2,) if smoke else WORKER_COUNTS
        for workers in worker_counts:
            rows = {}
            for label, knobs in (
                ("uncached", {}),
                ("cached", {"cache_size": CACHE_SIZE}),
            ):
                reports = []
                with QueryService(path, workers=workers, **knobs) as svc:
                    for _ in range(ROUNDS):
                        report = svc.run(batch)
                        assert report.answers == expected, (
                            f"{label} {workers}-worker commuter answers "
                            f"diverge from the frozen oracle"
                        )
                        assert report.error_count == 0
                        reports.append(report)
                best = max(reports, key=lambda r: r.queries_per_second)
                row = best.summary()
                row["cold_hit_ratio"] = round(
                    reports[0].cache_hit_ratio, 3
                )
                rows[label] = row
            rows["cached"]["speedup_vs_uncached"] = round(
                rows["cached"]["qps"] / rows["uncached"]["qps"], 3
            )
            result["workers"][f"{workers}w"] = rows
            print(
                f"NY commuter {workers} wkr: "
                f"uncached {rows['uncached']['qps']:>9.1f} qps  "
                f"cached {rows['cached']['qps']:>11.1f} qps  "
                f"({rows['cached']['speedup_vs_uncached']:.2f}x, "
                f"hit ratio {rows['cached']['cache_hit_ratio']:.3f})"
            )
    return result


def main() -> None:
    import argparse

    from bench_util import THROUGHPUT_JSON, merge_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="6 variants, 2 workers only, no files written",
    )
    args = parser.parse_args()
    result = run_serving(smoke=args.smoke)
    if args.smoke:
        row = result["workers"]["2w"]
        assert row["cached"]["cache_hit_ratio"] > 0.0
        assert row["cached"]["errors"] == 0
        print("smoke run OK (commuter workload hit the dispatcher cache)")
        return
    key = f"{result['oracle']}@{result['graph']}-commuter"
    path = merge_json({key: result}, THROUGHPUT_JSON)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
