"""Worker-process bootstrap for the query service.

Each worker maps the snapshot file exactly once at startup (sharing the
read-only pages with every sibling), keeps its warm per-thread
:class:`~repro.graph.csr.SearchArena` set through the restored engine,
and then answers query batches received over its pipe until told to
stop.  Queries travel as plain ``(source, target, failed_edges)``
tuples and answers as float lists — the index itself never crosses the
pipe.

Message protocol v2 (tuples, first element is the kind; the full
specification lives in DESIGN.md §8, the shared-memory result plane in
§11):

``("batch", batch_id, queries[, ring_spec])``
    ``batch_id`` is an ``(epoch, seq)`` pair stamped by the dispatcher;
    the worker treats ``epoch`` as opaque and echoes the id back.
    Answer ``queries`` (a list of ``(s, t, failed)`` with ``failed`` a
    tuple of edge pairs or ``None``).  When ``ring_spec`` is absent or
    ``None`` (the ``"pipe"`` result plane), reply ``("result",
    batch_id, worker_id, answers, latencies, busy_seconds, errors)``.
    When ``ring_spec`` is a :meth:`~repro.serving.ring.ResultRing.spec`
    triple (the default ``"shm"`` plane), write ``answers`` and
    ``latencies`` into ring slot ``seq`` — stamped with ``(epoch, seq,
    count)`` so the dispatcher can fence stale writes — and reply only
    the completion record ``("result_shm", batch_id, worker_id,
    busy_seconds, errors)``; if the ring cannot be attached or written
    (platform without ``/dev/shm``, ring already gone) the worker falls
    back to the full ``("result", ...)`` reply for that batch.  Either
    way a query that raises does **not** kill the worker: its answer
    slot carries the :data:`QUERY_ERROR` sentinel (NaN, which travels
    the float plane unchanged) and ``errors`` lists ``(position,
    "ExcType: message")`` for every failed position — the per-query
    error channel.
``("ping",)``
    Reply ``("pong", worker_id)`` — liveness probe.  A worker blocked
    inside a query (hung or genuinely slow past the dispatcher's
    deadline) cannot answer it and is presumed dead.
``("crash",)``
    Exit immediately without replying (test hook for the dispatcher's
    worker-replacement path).
``("stop",)``
    Close the pipe and exit cleanly.

Unknown kinds get ``("error", worker_id, message)`` back, which the
dispatcher treats as a protocol failure and raises on.

``worker_main`` optionally carries a
:class:`~repro.serving.faults.FaultPlan` plus the slot's spawn
``generation`` so the fault-injection rig can misbehave
deterministically (see :mod:`repro.serving.faults`).
"""

from __future__ import annotations

import os
import time

#: Answer slot sentinel for a query that raised inside the worker.
QUERY_ERROR = float("nan")


def answer_batch(
    oracle, queries, injector=None
) -> tuple[list[float], list[float], list[tuple[int, str]]]:
    """Answer ``queries`` on ``oracle``; return (answers, latencies, errors).

    A query that raises contributes :data:`QUERY_ERROR` to ``answers``
    (its latency still measured) and a ``(position, message)`` entry to
    the sparse ``errors`` list — the batch always completes and the
    worker survives.  ``injector`` is an optional
    :class:`~repro.serving.faults.FaultInjector` whose ``before_query``
    hook runs inside the per-query try block, so an injected raise is
    indistinguishable from a poison query.

    Oracles exposing ``answer_many`` (the frozen engines' vectorized
    batch path, same NaN + ``(position, "ExcType: message")`` error
    channel) answer the whole batch in one call — the sharded plane's
    border legs ride this path.  The batch then has one wall-clock
    measurement, reported as a uniform per-query mean; fault injection
    forces the scalar loop so ``before_query`` keeps firing per query.
    """
    answer_many = getattr(oracle, "answer_many", None)
    if injector is None and answer_many is not None:
        started = time.perf_counter()
        answers, errors = answer_many(queries)
        mean = (
            (time.perf_counter() - started) / len(queries)
            if queries
            else 0.0
        )
        return list(answers), [mean] * len(queries), list(errors)
    answers: list[float] = []
    latencies: list[float] = []
    errors: list[tuple[int, str]] = []
    query = oracle.query
    perf = time.perf_counter
    for position, (source, target, failed) in enumerate(queries):
        started = perf()
        try:
            if injector is not None:
                injector.before_query()
            value = query(
                source, target, frozenset(failed) if failed else None
            )
        except Exception as exc:
            value = QUERY_ERROR
            errors.append((position, f"{type(exc).__name__}: {exc}"))
        answers.append(value)
        latencies.append(perf() - started)
    return answers, latencies, errors


def worker_main(
    snapshot_path: str,
    conn,
    worker_id: int,
    fault_plan=None,
    generation: int = 0,
) -> None:
    """Run one worker: map the snapshot, then serve batches until stop."""
    from repro.oracle.snapshot import load_snapshot

    injector = None
    if fault_plan:
        from repro.serving.faults import FaultInjector

        injector = FaultInjector(fault_plan, worker_id, generation)

    try:
        started = time.perf_counter()
        oracle = load_snapshot(snapshot_path)
        load_seconds = time.perf_counter() - started
    except Exception as exc:  # surface load failures to the dispatcher
        try:
            conn.send(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    conn.send(
        (
            "ready",
            worker_id,
            {
                "pid": os.getpid(),
                "load_seconds": load_seconds,
                "oracle": oracle.name,
                "generation": generation,
            },
        )
    )
    ring = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                batch_id, queries = message[1], message[2]
                ring_spec = message[3] if len(message) > 3 else None
                if injector is not None:
                    injector.on_batch(conn, batch_id)
                tick = time.perf_counter()
                answers, latencies, errors = answer_batch(
                    oracle, queries, injector
                )
                busy = time.perf_counter() - tick
                ring = _current_ring(ring, ring_spec)
                reply = None
                if ring_spec is not None and ring is not None:
                    epoch, seq = batch_id
                    try:
                        ring.write(seq, epoch, seq, answers, latencies, busy)
                    except Exception:  # dsolint: disable=DSO402 -- ring write failure falls through to the full pipe reply below; nothing is swallowed
                        reply = None
                    else:
                        reply = (
                            "result_shm", batch_id, worker_id, busy, errors,
                        )
                if reply is None:
                    reply = (
                        "result",
                        batch_id,
                        worker_id,
                        answers,
                        latencies,
                        busy,
                        errors,
                    )
                if injector is not None:
                    reply = injector.outgoing_reply(batch_id, reply)
                if reply is not None:
                    conn.send(reply)
            elif kind == "ping":
                conn.send(("pong", worker_id))
            elif kind == "crash":
                os._exit(13)
            elif kind == "stop":
                break
            else:
                conn.send(("error", worker_id, f"unknown message {kind!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # dsolint: disable=DSO403 -- dispatcher pipe is gone; no channel left to report on
        pass
    finally:
        if ring is not None:
            ring.close()
        conn.close()


def _current_ring(ring, ring_spec):
    """Keep the worker mapped to the batch's ring (one live at a time).

    Rings are per-``run()``: when a batch references a new ring name the
    previous mapping is dropped first.  An attach failure (the run that
    owned the ring already unlinked it, or the platform has no usable
    shared memory) returns ``None`` and the caller replies over the
    pipe instead — the dispatcher accepts either reply kind.
    """
    if ring_spec is None:
        return ring
    if ring is not None and ring.name == ring_spec[0]:
        return ring
    from repro.serving.ring import ResultRing

    if ring is not None:
        ring.close()
    try:
        return ResultRing.attach(ring_spec)
    except Exception:  # dsolint: disable=DSO402 -- attach failure routes the batch to the pipe fallback, which the dispatcher reports normally
        return None
