"""Worker-process bootstrap for the query service.

Each worker maps the snapshot file exactly once at startup (sharing the
read-only pages with every sibling), keeps its warm per-thread
:class:`~repro.graph.csr.SearchArena` set through the restored engine,
and then answers query batches received over its pipe until told to
stop.  Queries travel as plain ``(source, target, failed_edges)``
tuples and answers as float lists — the index itself never crosses the
pipe.

Message protocol (tuples, first element is the kind):

``("batch", batch_id, queries)``
    Answer ``queries`` (a list of ``(s, t, failed)`` with ``failed`` a
    tuple of edge pairs or ``None``); reply
    ``("result", batch_id, worker_id, answers, latencies, busy_seconds)``.
``("ping",)``
    Reply ``("pong", worker_id)`` — liveness probe.
``("crash",)``
    Exit immediately without replying (test hook for the dispatcher's
    worker-replacement path).
``("stop",)``
    Close the pipe and exit cleanly.
"""

from __future__ import annotations

import os
import time


def answer_batch(oracle, queries) -> tuple[list[float], list[float]]:
    """Answer ``queries`` on ``oracle``; return (answers, latencies)."""
    answers: list[float] = []
    latencies: list[float] = []
    query = oracle.query
    perf = time.perf_counter
    for source, target, failed in queries:
        started = perf()
        answers.append(
            query(source, target, frozenset(failed) if failed else None)
        )
        latencies.append(perf() - started)
    return answers, latencies


def worker_main(snapshot_path: str, conn, worker_id: int) -> None:
    """Run one worker: map the snapshot, then serve batches until stop."""
    from repro.oracle.snapshot import load_snapshot

    try:
        started = time.perf_counter()
        oracle = load_snapshot(snapshot_path)
        load_seconds = time.perf_counter() - started
    except Exception as exc:  # surface load failures to the dispatcher
        try:
            conn.send(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    conn.send(
        (
            "ready",
            worker_id,
            {
                "pid": os.getpid(),
                "load_seconds": load_seconds,
                "oracle": oracle.name,
            },
        )
    )
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                _, batch_id, queries = message
                tick = time.perf_counter()
                answers, latencies = answer_batch(oracle, queries)
                busy = time.perf_counter() - tick
                conn.send(
                    ("result", batch_id, worker_id, answers, latencies, busy)
                )
            elif kind == "ping":
                conn.send(("pong", worker_id))
            elif kind == "crash":
                os._exit(13)
            elif kind == "stop":
                break
            else:
                conn.send(("error", worker_id, f"unknown message {kind!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()
