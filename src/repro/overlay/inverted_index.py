"""The inverted tree index — second-level index part two (Definition 4.3).

Maps every input-graph edge to the list of bounded shortest path trees
containing it.  Given a failed edge set ``F`` the union of the mapped
tree roots is exactly the set of *affected nodes* — the transit nodes
whose distance-graph out-edge weights may have changed — which the query
algorithm finds in ``O(|F|)`` dictionary lookups instead of scanning all
``|T|`` trees (Section 4.1.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graph.digraph import Edge
from repro.pathing.spt import ShortestPathTree


class InvertedTreeIndex:
    """In-memory map from graph edges to the trees containing them."""

    __slots__ = ("_index", "_tree_count")

    def __init__(self) -> None:
        self._index: dict[Edge, set[int]] = {}
        self._tree_count = 0

    @classmethod
    def from_trees(
        cls,
        trees: Mapping[int, ShortestPathTree],
    ) -> "InvertedTreeIndex":
        """Build the index from ``{root: bounded_tree}``.

        Every tree edge ``(parent, child)`` of ``G_u`` is an edge of
        ``G``, so the index key space is a subset of ``E``.
        """
        index = cls()
        for root, tree in trees.items():
            index.add_tree(root, tree)
        return index

    def add_tree(self, root: int, tree: ShortestPathTree) -> None:
        """Register all edges of ``tree`` under ``root``."""
        store = self._index
        for edge in tree.tree_edges():
            members = store.get(edge)
            if members is None:
                store[edge] = {root}
            else:
                members.add(root)
        self._tree_count += 1

    def remove_tree(self, root: int, tree: ShortestPathTree) -> None:
        """Unregister all edges of ``tree`` (used by maintenance)."""
        store = self._index
        for edge in tree.tree_edges():
            members = store.get(edge)
            if members is not None:
                members.discard(root)
                if not members:
                    del store[edge]
        self._tree_count -= 1

    def trees_containing(self, edge: Edge) -> frozenset[int]:
        """Return the roots of all trees containing ``edge``."""
        return frozenset(self._index.get(edge, ()))

    def affected_nodes(self, failed: Iterable[Edge]) -> set[int]:
        """Return all transit nodes whose tree contains a failed edge.

        This is the affected-node set ``A`` of the query algorithm: the
        out-edge weights of exactly these nodes on the distance graph may
        change under ``failed``.
        """
        affected: set[int] = set()
        store = self._index
        for edge in failed:
            members = store.get(edge)
            if members:
                affected.update(members)
        return affected

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._index

    def __len__(self) -> int:
        """Number of distinct indexed edges."""
        return len(self._index)

    @property
    def tree_count(self) -> int:
        """Number of registered trees."""
        return self._tree_count

    def entry_count(self) -> int:
        """Total number of (edge, tree) entries, for index sizing."""
        return sum(len(members) for members in self._index.values())
