"""Quickstart: build a distance sensitivity oracle and query it.

Builds a synthetic road network, preprocesses a DISO index, and answers
distance queries with and without failed edges — all through the public
API.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DISO, DijkstraOracle, road_network


def main() -> None:
    # A 20x20 road-like grid: ~400 junctions, travel-time weights.
    graph = road_network(20, 20, seed=42)
    print(f"graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    # Preprocess the oracle once.  tau controls the transit-set density
    # (the transit nodes form a 2^tau-path cover); theta controls the
    # overlay sparsity.
    oracle = DISO(graph, tau=4, theta=1.0)
    print(f"index: {len(oracle.transit)} transit nodes, "
          f"{oracle.distance_graph.num_edges} overlay edges, "
          f"built in {oracle.preprocess_seconds:.2f}s")

    source, target = 0, 399

    # 1. A failure-free query.
    base = oracle.query(source, target)
    print(f"\nd({source}, {target}) = {base:.3f}")

    # 2. The same trip avoiding failed roads on the current route.
    from repro.pathing.dijkstra import shortest_path

    route = shortest_path(graph, source, target)
    failed = {route[0], route[len(route) // 2]}
    detour = oracle.query(source, target, failed=failed)
    print(f"d({source}, {target}, F={sorted(failed)}) = {detour:.3f}")
    assert detour >= base

    # 3. Answers are exact: cross-check against plain Dijkstra.
    reference = DijkstraOracle(graph)
    assert abs(detour - reference.query(source, target, failed)) < 1e-9
    print("matches Dijkstra ground truth: OK")

    # 4. Inspect per-query instrumentation.
    result = oracle.query_detailed(source, target, failed=failed)
    print(f"\nquery took {result.stats.total_seconds * 1000:.2f} ms, "
          f"{result.stats.affected_count} affected transit nodes, "
          f"{result.stats.recomputed_nodes} lazily recomputed")


if __name__ == "__main__":
    main()
