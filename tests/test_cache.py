"""The dispatcher cache must never change an answer — only skip work.

Three components share this suite because they gate the same dispatch
path (DESIGN.md §12): the epoch-scoped :class:`ResultCache`, the
:class:`HotPairTracker` skew observer, and :class:`DeadlineAdmission`
load shedding.  The load-bearing properties:

* **Bitwise parity** — a cached serving run returns ``==``-equal
  answers to an uncached run, across every oracle family
  (DISO/ADISO/DISO-S/ADISO-P) and including failure-set queries.
* **Epoch invalidation is falsifiable** — after ``swap_snapshot`` to a
  same-shaped graph with *different weights*, the cached answers must
  match the NEW oracle.  Remove the epoch check and this test fails.
* **Sheds are honest** — a shed query is NaN + status ``"shed"``, not
  an error and never a stale answer.
"""

from __future__ import annotations

import math
import tempfile
from pathlib import Path

import pytest

from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.base import canonical_failure_key
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.oracle.snapshot import save_snapshot
from repro.serving import (
    DeadlineAdmission,
    HotPairTracker,
    QueryService,
    ResultCache,
    canonical_query_key,
)
from repro.workload.queries import generate_queries
from util import random_failures_from, random_graph

from test_serving import make_service


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKeys:
    def test_failure_key_is_order_independent(self):
        assert canonical_failure_key({(3, 4), (1, 2)}) == ((1, 2), (3, 4))
        assert canonical_failure_key([(3, 4), (1, 2)]) == ((1, 2), (3, 4))
        assert canonical_failure_key(None) == ()
        assert canonical_failure_key(set()) == ()

    def test_query_key_identical_for_equivalent_spellings(self):
        spellings = [
            canonical_query_key(1, 9, {(5, 6), (2, 3)}),
            canonical_query_key(1, 9, frozenset({(2, 3), (5, 6)})),
            canonical_query_key(1, 9, [(5, 6), (2, 3)]),
            canonical_query_key(1, 9, ((2, 3), (5, 6))),
        ]
        assert len(set(spellings)) == 1

    def test_query_key_distinguishes_direction_and_failures(self):
        assert canonical_query_key(1, 9, None) != canonical_query_key(
            9, 1, None
        )
        assert canonical_query_key(1, 9, {(2, 3)}) != canonical_query_key(
            1, 9, None
        )


# ----------------------------------------------------------------------
# ResultCache unit behaviour
# ----------------------------------------------------------------------
class TestResultCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = ResultCache(8)
        key = canonical_query_key(1, 2, None)
        assert cache.get(key, epoch=1) is None
        assert cache.put(key, 3.5, epoch=1)
        answer, precomputed = cache.get(key, epoch=1)
        assert answer == 3.5 and precomputed is False
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["inserts"] == 1

    def test_nan_is_never_admitted(self):
        cache = ResultCache(8)
        key = canonical_query_key(1, 2, None)
        assert not cache.put(key, float("nan"), epoch=1)
        assert len(cache) == 0
        assert cache.get(key, epoch=1) is None

    def test_infinity_is_cacheable(self):
        # Disconnection is a real, stable answer — unlike NaN errors.
        cache = ResultCache(8)
        key = canonical_query_key(1, 2, ((3, 4),))
        assert cache.put(key, float("inf"), epoch=1)
        assert cache.get(key, epoch=1)[0] == float("inf")

    def test_stale_epoch_entry_is_refused_and_evicted(self):
        cache = ResultCache(8)
        key = canonical_query_key(1, 2, None)
        cache.put(key, 3.5, epoch=1)
        assert cache.get(key, epoch=2) is None
        assert len(cache) == 0
        assert cache.stats()["stale_drops"] == 1
        # And it is gone even when asked at the old epoch again.
        assert cache.get(key, epoch=1) is None

    def test_retire_older_than_sweeps_eagerly(self):
        cache = ResultCache(8)
        for node in range(4):
            cache.put(canonical_query_key(node, 9, None), 1.0, epoch=1)
        cache.put(canonical_query_key(7, 9, None), 2.0, epoch=2)
        cache.retire_older_than(2)
        assert len(cache) == 1
        assert cache.entry_epochs() == {2}

    def test_lru_eviction_keeps_recent(self):
        cache = ResultCache(2)
        a = canonical_query_key(1, 9, None)
        b = canonical_query_key(2, 9, None)
        c = canonical_query_key(3, 9, None)
        cache.put(a, 1.0, epoch=1)
        cache.put(b, 2.0, epoch=1)
        cache.get(a, epoch=1)  # refresh a; b is now least-recent
        cache.put(c, 3.0, epoch=1)
        assert cache.get(b, epoch=1) is None
        assert cache.get(a, epoch=1)[0] == 1.0
        assert cache.get(c, epoch=1)[0] == 3.0
        assert cache.stats()["evictions"] == 1

    def test_precomputed_flag_roundtrips(self):
        cache = ResultCache(4)
        key = canonical_query_key(5, 6, None)
        cache.put(key, 1.5, epoch=1, precomputed=True)
        answer, precomputed = cache.get(key, epoch=1)
        assert precomputed is True
        assert cache.stats()["precomputed_hits"] == 1


# ----------------------------------------------------------------------
# HotPairTracker
# ----------------------------------------------------------------------
class TestHotPairTracker:
    def test_top_ranks_by_frequency(self):
        tracker = HotPairTracker()
        hot = canonical_query_key(1, 2, None)
        warm = canonical_query_key(3, 4, None)
        cold = canonical_query_key(5, 6, None)
        for _ in range(10):
            tracker.observe(hot)
        for _ in range(3):
            tracker.observe(warm)
        tracker.observe(cold)
        assert tracker.top(2) == [hot, warm]

    def test_top_is_deterministic_under_ties(self):
        tracker = HotPairTracker()
        keys = [canonical_query_key(node, 9, None) for node in (3, 1, 2)]
        for key in keys:
            tracker.observe(key)
        # Equal scores break ties on the key itself: sorted order.
        assert tracker.top(3) == sorted(keys)

    def test_exclude_filters_already_cached(self):
        tracker = HotPairTracker()
        a = canonical_query_key(1, 2, None)
        b = canonical_query_key(3, 4, None)
        for _ in range(5):
            tracker.observe(a)
        tracker.observe(b)
        assert tracker.top(2, exclude=lambda key: key == a) == [b]

    def test_decay_forgets_old_traffic(self):
        tracker = HotPairTracker(decay=0.5, decay_every=8)
        stale = canonical_query_key(1, 2, None)
        fresh = canonical_query_key(3, 4, None)
        for _ in range(4):
            tracker.observe(stale)
        # 100 observations of fresh trigger many decay rounds; stale's
        # score halves each round and is eventually pruned entirely.
        for _ in range(100):
            tracker.observe(fresh)
        assert tracker.top(2) == [fresh]

    def test_capacity_bound_holds(self):
        tracker = HotPairTracker(capacity=16, decay_every=8)
        for node in range(1000):
            tracker.observe(canonical_query_key(node, 0, None))
        assert len(tracker) <= 16


# ----------------------------------------------------------------------
# DeadlineAdmission
# ----------------------------------------------------------------------
class TestDeadlineAdmission:
    def test_admits_everything_under_generous_deadline(self):
        admission = DeadlineAdmission(deadline_ms=1000.0, workers=2)
        assert admission.admit(100) == 100
        assert admission.stats()["shed"] == 0

    def test_sheds_beyond_capacity(self):
        admission = DeadlineAdmission(
            deadline_ms=1.0, workers=1, initial_query_us=1000.0
        )
        # Budget 1 ms at 1 ms/query -> capacity 1.
        assert admission.admit(10) == 1
        assert admission.stats()["shed"] == 9

    def test_observe_adapts_the_estimate(self):
        admission = DeadlineAdmission(
            deadline_ms=10.0, workers=1, initial_query_us=1.0
        )
        before = admission.capacity()
        # Evidence: queries actually take 10 ms each, 10000x slower.
        for _ in range(50):
            admission.observe(queries=10, busy_seconds=0.1)
        assert admission.estimated_query_us > 1000.0
        assert admission.capacity() < before

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeadlineAdmission(deadline_ms=0.0, workers=1)
        with pytest.raises(ValueError):
            DeadlineAdmission(deadline_ms=5.0, workers=0)


# ----------------------------------------------------------------------
# Serving-plane integration: parity, epochs, sheds, precompute
# ----------------------------------------------------------------------
FAMILIES = [
    pytest.param(lambda g: DISO(g, tau=3), id="DISO"),
    pytest.param(lambda g: ADISO(g, tau=3), id="ADISO"),
    pytest.param(lambda g: DISOSparse(g, tau=3), id="DISO-S"),
    pytest.param(lambda g: ADISOPartial(g, tau=3), id="ADISO-P"),
]


@pytest.mark.parametrize("build", FAMILIES)
def test_cached_serving_parity_all_families(build, tmp_path):
    """Cold run, warm run, uncached run: three-way bitwise parity."""
    graph = random_graph(21, n=36, extra=80)
    frozen = build(graph).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    batch = generate_queries(graph, 18, f_gen=3, p=0.01, seed=5)
    # Double the batch so the cold cached run already dedups repeats.
    batch = batch + batch[:9]
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    with make_service(path, workers=2) as plain:
        uncached = plain.run(batch).answers
    with make_service(path, workers=2, cache_size=256) as service:
        cold = service.run(batch)
        warm = service.run(batch)
    assert uncached == expected
    assert cold.answers == expected
    assert warm.answers == expected
    assert cold.cache_hits >= 9  # within-batch duplicates
    assert warm.cache_hits == len(batch)
    assert warm.errors == [None] * len(batch)


def test_swap_snapshot_retires_cached_answers(tmp_path):
    """The falsifiability test: remove epoch invalidation and this
    fails, because the old snapshot's cached answers differ from the
    new snapshot's correct ones."""
    graph_a = random_graph(31, n=30, extra=60)
    # Same node ids and edges, different weights: every key collides,
    # every answer differs.  (Built fresh: ``add_edge`` on an existing
    # edge keeps the minimum weight, so raising weights in a copy is a
    # no-op.)
    from repro.graph.digraph import DiGraph

    graph_b = DiGraph()
    for tail, head, weight in graph_a.edges():
        graph_b.add_edge(tail, head, weight * 3.0 + 1.0)
    frozen_a = DISO(graph_a, tau=3).freeze()
    frozen_b = DISO(graph_b, tau=3).freeze()
    path_a = save_snapshot(frozen_a, tmp_path / "a.dsosnap")
    path_b = save_snapshot(frozen_b, tmp_path / "b.dsosnap")
    batch = generate_queries(graph_a, 12, f_gen=2, p=0.01, seed=9)
    expected_a = [frozen_a.query(q.source, q.target, q.failed) for q in batch]
    expected_b = [frozen_b.query(q.source, q.target, q.failed) for q in batch]
    assert expected_a != expected_b  # the swap must be observable
    with make_service(path_a, workers=2, cache_size=256) as service:
        first = service.run(batch)
        assert first.answers == expected_a
        warm = service.run(batch)
        assert warm.cache_hits == len(batch)
        old_epoch = service.snapshot_epoch
        new_epoch = service.swap_snapshot(path_b)
        assert new_epoch == old_epoch + 1
        after = service.run(batch)
        # Every answer reflects the NEW snapshot; nothing stale leaked.
        assert after.answers == expected_b
        assert after.cache_hits == 0
        # And entries re-cached after the swap carry the new epoch only.
        assert service._cache.entry_epochs() <= {new_epoch}


def test_retire_epoch_alone_invalidates_without_restart(tmp_path):
    graph = random_graph(33, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    batch = generate_queries(graph, 10, f_gen=2, p=0.01, seed=3)
    with make_service(path, workers=1, cache_size=64) as service:
        service.run(batch)
        assert len(service._cache) > 0
        service.retire_snapshot_epoch()
        assert len(service._cache) == 0
        rerun = service.run(batch)
        assert rerun.cache_hits == 0
        assert rerun.errors == [None] * len(batch)


def test_error_answers_are_never_cached(tmp_path):
    graph = random_graph(35, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    poison = (10**9, 0, None)  # node id not in the graph
    with make_service(path, workers=1, cache_size=64) as service:
        first = service.run([poison])
        assert first.error_count == 1
        assert len(service._cache) == 0
        # The repeat is a fresh miss that fails again — not a NaN hit.
        second = service.run([poison])
        assert second.error_count == 1
        assert second.cache_hits == 0


def test_deadline_shedding_reports_shed_not_error(tmp_path):
    graph = random_graph(37, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    batch = generate_queries(graph, 16, f_gen=2, p=0.01, seed=7)
    with make_service(
        path, workers=1, deadline_ms=1e-6
    ) as service:  # impossible budget: everything sheds
        report = service.run(batch)
    assert report.shed_count == len(batch)
    assert report.shed_rate == pytest.approx(1.0)
    assert all(math.isnan(answer) for answer in report.answers)
    assert report.error_count == 0
    assert set(report.statuses) == {"shed"}


def test_shed_then_cache_still_consistent(tmp_path):
    """Shed queries must not poison the cache; a later unconstrained
    run answers them correctly."""
    graph = random_graph(39, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    batch = generate_queries(graph, 10, f_gen=2, p=0.01, seed=2)
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    with make_service(
        path, workers=1, cache_size=64,
        deadline_ms=1e-6,
    ) as service:
        shed_run = service.run(batch)
        assert shed_run.shed_count == len(batch)
        assert len(service._cache) == 0
        # Lift the deadline: the same service answers everything.
        service._admission = None
        full = service.run(batch)
    assert full.answers == expected
    assert full.shed_count == 0


def test_hot_pair_precompute_serves_next_run(tmp_path):
    graph = random_graph(41, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    nodes = sorted(graph.nodes())
    hot_query = (nodes[0], nodes[5], None)
    batch = [hot_query] * 6 + [(nodes[1], nodes[7], None)]
    with make_service(
        path, workers=1, cache_size=64, hot_pairs=4
    ) as service:
        first = service.run(batch)
        # Within-batch dedup: 5 duplicate hot queries hit immediately.
        assert first.cache_hits >= 5
        # After the run the tracker refreshed hot pairs; everything in
        # the batch is cached, so a cold *distinct* pair drawn from the
        # tracker would have been warmed.  Warm run: all hits.
        warm = service.run(batch)
        assert warm.cache_hits == len(batch)
        stats = service.cache_stats()
        assert stats is not None and stats["hits"] > 0


def test_refresh_hot_pairs_precomputes_unseen_answers(tmp_path):
    """Drive the tracker directly so refresh targets *uncached* keys,
    then verify hits on them are flagged precomputed."""
    graph = random_graph(43, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    nodes = sorted(graph.nodes())
    failed = frozenset(random_failures_from(graph, 1, 2))
    target_query = (nodes[2], nodes[9], tuple(sorted(failed)))
    expected = frozen.query(nodes[2], nodes[9], failed)
    with make_service(
        path, workers=1, cache_size=64, hot_pairs=2
    ) as service:
        service.start()
        key = canonical_query_key(*target_query)
        for _ in range(8):
            service._hot.observe(key)
        stored = service.refresh_hot_pairs()
        assert stored == 1
        assert service.precomputed_total == 1
        report = service.run([target_query])
        assert report.answers == [expected]
        assert report.cache_hits == 1
        assert report.precomputed_hits == 1


def test_refresh_hot_pairs_with_shm_plane(tmp_path):
    """``refresh_hot_pairs`` under ``result_plane="shm"`` must not touch
    (or leak) any ring slot: refresh batches are tiny and run over the
    pipe plane, while real runs before and after keep the shm plane."""
    graph = random_graph(44, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    nodes = sorted(graph.nodes())
    target_query = (nodes[3], nodes[11], None)
    expected = frozen.query(nodes[3], nodes[11])
    with make_service(
        path, workers=1, cache_size=64, hot_pairs=2, result_plane="shm"
    ) as service:
        service.start()
        warmup = service.run([(nodes[0], nodes[1], None)])
        assert warmup.result_plane == "shm"
        assert service._ring is None  # ring lives exactly one run
        key = canonical_query_key(*target_query)
        for _ in range(8):
            service._hot.observe(key)
        stored = service.refresh_hot_pairs()
        assert stored == 1
        assert service.precomputed_total == 1
        # Ring-less refresh: no slot allocated, nothing left behind.
        assert service._ring is None
        # Pair the precomputed key with a cold query: the cold one
        # dispatches over the shm ring, the hot one is served from the
        # cache and attributed as a precomputed hit.
        cold_query = (nodes[5], nodes[20], None)
        report = service.run([target_query, cold_query])
        assert report.result_plane == "shm"
        assert report.answers[0] == expected
        assert report.answers[1] == frozen.query(nodes[5], nodes[20])
        assert report.cache_hits == 1
        assert report.precomputed_hits == 1
        assert service._ring is None


def test_cache_knob_validation():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "o.dsosnap"
        with pytest.raises(ValueError):
            QueryService(path, workers=1, cache_size=-1)
        with pytest.raises(ValueError):
            QueryService(path, workers=1, deadline_ms=-2.0)
        with pytest.raises(ValueError, match="hot_pairs"):
            QueryService(path, workers=1, hot_pairs=4)  # no cache


def test_stats_accessors_none_when_disabled(tmp_path):
    graph = random_graph(45, n=20, extra=30)
    frozen = DISO(graph, tau=3).freeze()
    path = save_snapshot(frozen, tmp_path / "o.dsosnap")
    with make_service(path, workers=1) as service:
        service.run(generate_queries(graph, 4, f_gen=1, p=0.0, seed=1))
        assert service.cache_stats() is None
        assert service.admission_stats() is None
