"""Bench: process-pool serving throughput over a frozen-index snapshot.

Freezes a DISO over the paper's standard road-network scale, saves the
index as a binary snapshot (:mod:`repro.oracle.snapshot`), and measures
aggregate query throughput three ways:

* sequential — the in-memory frozen oracle answering the batch alone
  (the single-core reference);
* ``QueryService`` at 1, 2, and 4 workers — each worker a separate
  process mapping the same snapshot read-only — under **both** result
  planes (``shm`` ring and ``pipe`` pickle), so the dispatch cost of
  each channel is directly comparable at equal worker counts.

Every pool run first asserts exact answer parity with the sequential
baseline.  Each row serves the batch ``ROUNDS`` times through one
service (qps from the best round, dispatch overhead the median across
rounds — a single run's per-batch decode cost is scheduler-noise-bound
on small chunk counts) and records its ``result_plane``, the
dispatcher-side ``dispatch_overhead_us`` per accepted batch (unpickle
plus ring memcpy plus splice; the OS wait for the pipe is excluded)
and ``pipe_bytes_per_batch`` (the pickled result traffic that actually
crossed the pipe) — the shm rows carry only tiny completion records
where the pipe rows carry the full answer payload.
Results merge into the repo-root ``BENCH_throughput.json``, where
``merge_json`` stamps ``git_rev`` + ``cpu_count`` into every entry
centrally; ``cpu_count`` matters here because process-level speed-up is
physically bounded by the cores actually present — on a single-core
container the 4-worker row documents dispatch overhead, not scaling.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py --smoke

``--smoke`` serves a tiny graph with 2 workers only — a CI-sized
end-to-end check of snapshot, worker bootstrap, sharding, and parity
(no files written, no speedup asserted).
"""

from __future__ import annotations

import argparse
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.graph.generators import grid_network, road_network, scale_free_network
from repro.oracle.diso import DISO
from repro.oracle.parallel import latency_percentile
from repro.oracle.snapshot import save_snapshot, snapshot_info
from repro.serving import QueryService, ShardedQueryService
from repro.sharding import build_sharded, save_sharded_snapshot, sharded_snapshot_info
from repro.workload.queries import generate_queries, generate_zipf_queries

from bench_util import THROUGHPUT_JSON, merge_json, write_result

SEED = 7
QUERY_COUNT = 600
WORKER_COUNTS = (1, 2, 4)
RESULT_PLANES = ("shm", "pipe")
#: Serve rounds per row: qps is best-of, dispatch overhead the median.
ROUNDS = 5
#: Dispatcher result-cache capacity for the cached zipf rows.
CACHE_SIZE = 4096
HOT_PAIRS = 32

GRAPH_NAME = "road2k"

#: Shard counts for the sharded-serving comparison.
SHARD_COUNTS = (2, 4)
#: Workers per shard for the sharded rows (total = shards * this).
SHARD_WORKER_COUNTS = (1, 2)

#: Graphs for the zipf-skewed serving comparison (name, builder).
ZIPF_GRAPHS = (
    ("road2k", lambda: road_network(48, 48, seed=SEED)),
    ("scalefree1k5", lambda: scale_free_network(1500, seed=SEED)),
)


def build_graph(smoke: bool):
    if smoke:
        return road_network(8, 8, seed=SEED)
    return road_network(48, 48, seed=SEED)


def sequential_row(oracle, batch) -> dict:
    """Time the in-memory frozen oracle answering the batch alone."""
    latencies = []
    answers = []
    started = time.perf_counter()
    for query in batch:
        tick = time.perf_counter()
        answers.append(oracle.query(query.source, query.target, query.failed))
        latencies.append(time.perf_counter() - tick)
    wall = time.perf_counter() - started
    return {
        "answers": answers,
        "qps": round(len(batch) / wall, 2) if wall > 0 else float("inf"),
        "p50_us": round(1e6 * latency_percentile(latencies, 0.50), 3),
        "p99_us": round(1e6 * latency_percentile(latencies, 0.99), 3),
    }


def run(smoke: bool = False, query_count: int | None = None) -> dict:
    """Snapshot a frozen DISO, serve it at each pool size, return rows."""
    graph = build_graph(smoke)
    count = query_count or (20 if smoke else QUERY_COUNT)
    worker_counts = (2,) if smoke else WORKER_COUNTS

    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    batch = generate_queries(graph, count, f_gen=5, p=0.0005, seed=SEED)

    result: dict = {
        "graph": GRAPH_NAME if not smoke else "road-smoke",
        "oracle": oracle.name,
        "queries": count,
        "cpu_count": os.cpu_count(),
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
        path = Path(tmp) / "oracle.dsosnap"
        save_snapshot(oracle, path)
        result["snapshot_bytes"] = snapshot_info(path)["file_bytes"]

        seq = sequential_row(oracle, batch)
        expected = seq.pop("answers")
        result["sequential"] = seq
        print(
            f"{'sequential':>12}: qps {seq['qps']:>9.1f}  "
            f"p50 {seq['p50_us']:>7.1f}us  p99 {seq['p99_us']:>7.1f}us"
        )

        result["workers"] = {}
        rounds = 1 if smoke else ROUNDS
        for workers in worker_counts:
            for plane in RESULT_PLANES:
                reports = []
                with QueryService(
                    path, workers=workers, result_plane=plane
                ) as service:
                    for _ in range(rounds):
                        report = service.run(batch)
                        assert report.answers == expected, (
                            f"{workers}-worker {plane} answers diverge "
                            f"from sequential baseline"
                        )
                        assert report.error_count == 0, (
                            f"{workers}-worker {plane} run reported "
                            f"per-query errors on a clean workload: "
                            f"{report.error_indices[:5]}"
                        )
                        reports.append(report)
                best = max(reports, key=lambda r: r.queries_per_second)
                row = best.summary()
                row["rounds"] = rounds
                row["dispatch_overhead_us"] = round(
                    statistics.median(
                        r.dispatch_overhead_us for r in reports
                    ),
                    3,
                )
                row["speedup_vs_sequential"] = round(
                    best.queries_per_second / seq["qps"], 3
                )
                result["workers"][f"{workers}w-{plane}"] = row
                print(
                    f"{workers:>4} wkr {plane:>4}: qps {row['qps']:>9.1f}  "
                    f"p50 {row['p50_us']:>7.1f}us  "
                    f"p99 {row['p99_us']:>7.1f}us  "
                    f"speedup {row['speedup_vs_sequential']:.2f}x  "
                    f"dispatch {row['dispatch_overhead_us']:>7.1f}us  "
                    f"pipe {row['pipe_bytes_per_batch']:>8.1f}B/batch  "
                    f"errors {row['errors']}  restarts {row['restarts']}"
                )
    return result


def _serve_rounds(path, batch, expected, workers, rounds, **knobs):
    """Serve ``batch`` ``rounds`` times through one service; return
    the reports (parity and zero-errors asserted every round)."""
    reports = []
    with QueryService(path, workers=workers, **knobs) as service:
        for _ in range(rounds):
            report = service.run(batch)
            assert report.answers == expected, (
                f"{workers}-worker answers diverge from sequential "
                f"baseline (knobs {knobs})"
            )
            assert report.error_count == 0, (
                f"{workers}-worker run reported per-query errors on a "
                f"clean workload: {report.error_indices[:5]}"
            )
            reports.append(report)
    return reports


def run_zipf(smoke: bool = False, query_count: int | None = None) -> dict:
    """The skewed-workload serving comparison: cached vs uncached.

    For each graph, serves the same seeded zipf batch (repeated pairs
    with recurring failure variants — the commuter workload of the
    paper's Example 1) through a plain dispatcher and through one with
    the result cache + hot-pair precomputation enabled, at each pool
    size.  Warm rounds answer hot keys from the dispatcher dict, so the
    cached qps measures what workload skew is worth end to end.
    """
    count = query_count or (60 if smoke else QUERY_COUNT)
    worker_counts = (2,) if smoke else WORKER_COUNTS
    rounds = 2 if smoke else ROUNDS
    graphs = (
        (("road-smoke", lambda: road_network(8, 8, seed=SEED)),)
        if smoke
        else ZIPF_GRAPHS
    )

    results: dict = {}
    for name, build in graphs:
        graph = build()
        oracle = DISO(graph, tau=4, theta=1.0).freeze()
        batch = generate_zipf_queries(graph, count, seed=SEED)
        unique = {(q.source, q.target, q.failed) for q in batch}
        result: dict = {
            "graph": name,
            "oracle": oracle.name,
            "workload": "zipf",
            "queries": count,
            "unique_keys": len(unique),
            "cache_size": CACHE_SIZE,
            "hot_pairs": HOT_PAIRS,
            "rounds": rounds,
            "cpu_count": os.cpu_count(),
        }
        with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
            path = Path(tmp) / "oracle.dsosnap"
            save_snapshot(oracle, path)
            seq = sequential_row(oracle, batch)
            expected = seq.pop("answers")
            result["sequential"] = seq
            result["workers"] = {}
            for workers in worker_counts:
                plain = _serve_rounds(
                    path, batch, expected, workers, rounds
                )
                cached = _serve_rounds(
                    path, batch, expected, workers, rounds,
                    cache_size=CACHE_SIZE, hot_pairs=HOT_PAIRS,
                )
                best_plain = max(
                    plain, key=lambda r: r.queries_per_second
                )
                best_cached = max(
                    cached, key=lambda r: r.queries_per_second
                )
                uncached_row = best_plain.summary()
                cached_row = best_cached.summary()
                # The warm ratio is the steady-state number; the cold
                # (first-round) ratio shows what within-batch dedup
                # alone buys before any entry is reused across runs.
                cached_row["cold_hit_ratio"] = round(
                    cached[0].cache_hit_ratio, 3
                )
                cached_row["speedup_vs_uncached"] = round(
                    best_cached.queries_per_second
                    / best_plain.queries_per_second,
                    3,
                )
                result["workers"][f"{workers}w"] = {
                    "uncached": uncached_row,
                    "cached": cached_row,
                }
                print(
                    f"{name:>14} {workers} wkr: "
                    f"uncached {uncached_row['qps']:>9.1f} qps  "
                    f"cached {cached_row['qps']:>11.1f} qps  "
                    f"({cached_row['speedup_vs_uncached']:.2f}x, "
                    f"hit ratio {cached_row['cache_hit_ratio']:.3f}, "
                    f"cold {cached_row['cold_hit_ratio']:.3f})"
                )
        results[name] = result
    return results


def run_sharded(smoke: bool = False, query_count: int | None = None) -> dict:
    """The sharded serving plane: K per-shard pools plus stitching.

    Serves the same batch through :class:`ShardedQueryService` at each
    ``(workers_per_shard, shards)`` combination, asserting *bitwise*
    answer parity with the sequential unsharded oracle every round.
    The graph is a unit-weight grid so float addition is exact and the
    stitched sums cannot drift.  Each row stamps the shard count, the
    batch's cross-shard ratio, per-shard routing loads, and the
    per-shard snapshot file sizes (the memory a shard worker maps).
    """
    rows_cols = 8 if smoke else 20
    graph = grid_network(rows_cols, rows_cols)
    graph_name = f"grid{rows_cols}x{rows_cols}" + ("-smoke" if smoke else "")
    count = query_count or (20 if smoke else QUERY_COUNT)
    worker_counts = (1,) if smoke else SHARD_WORKER_COUNTS
    shard_counts = (2,) if smoke else SHARD_COUNTS
    rounds = 1 if smoke else ROUNDS

    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    batch = generate_queries(graph, count, f_gen=5, p=0.0005, seed=SEED)
    seq = sequential_row(oracle, batch)
    expected = seq.pop("answers")

    result: dict = {
        "graph": graph_name,
        "oracle": "DISO-SHARD",
        "queries": count,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "sequential": seq,
        "workers": {},
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-shard-") as tmp:
        for shards in shard_counts:
            build = build_sharded(graph, shards, method="metis", seed=SEED)
            target = save_sharded_snapshot(
                build, Path(tmp) / f"sharded-{shards}"
            )
            info = sharded_snapshot_info(target)
            shard_bytes = info["shard_file_bytes"]
            for workers in worker_counts:
                reports = []
                with ShardedQueryService(
                    target, workers_per_shard=workers
                ) as service:
                    for _ in range(rounds):
                        report = service.run(batch)
                        assert report.answers == expected, (
                            f"{workers}w-{shards}shard answers diverge "
                            f"from the unsharded sequential baseline"
                        )
                        assert report.error_count == 0, (
                            f"{workers}w-{shards}shard run reported "
                            f"per-query errors on a clean workload: "
                            f"{report.error_indices[:5]}"
                        )
                        reports.append(report)
                best = max(reports, key=lambda r: r.queries_per_second)
                row = best.summary()
                row["rounds"] = rounds
                row["shard_loads"] = list(best.shard_loads)
                row["per_shard_bytes"] = shard_bytes
                row["manifest_bytes"] = info["manifest_bytes"]
                row["speedup_vs_sequential"] = round(
                    best.queries_per_second / seq["qps"], 3
                )
                result["workers"][f"{workers}w-{shards}shard"] = row
                print(
                    f"{workers:>2}w x {shards} shards: "
                    f"qps {row['qps']:>9.1f}  "
                    f"p50 {row['p50_us']:>7.1f}us  "
                    f"cross {row['cross_shard_ratio']:.3f}  "
                    f"loads {row['shard_loads']}  "
                    f"errors {row['errors']}"
                )
    return result


def format_sharded_result(result: dict) -> str:
    lines = [
        "Sharded serving: per-shard pools + border stitching",
        f"graph={result['graph']}  queries={result['queries']}  "
        f"rounds(best-of)={result['rounds']}  "
        f"cpu_count={result['cpu_count']}  "
        f"sequential qps={result['sequential']['qps']:.1f}",
        f"{'backend':>12} {'qps':>10} {'p50 us':>9} {'speedup':>8} "
        f"{'cross':>6} {'shards':>7} {'manifest B':>11}",
    ]
    for backend, row in result["workers"].items():
        lines.append(
            f"{backend:>12} {row['qps']:>10.1f} {row['p50_us']:>9.1f} "
            f"{row['speedup_vs_sequential']:>8.2f} "
            f"{row['cross_shard_ratio']:>6.3f} {row['shards']:>7} "
            f"{row['manifest_bytes']:>11}"
        )
    return "\n".join(lines)


def format_zipf_result(results: dict) -> str:
    lines = [
        "Zipf-skewed serving: dispatcher cache + hot pairs vs plain",
        f"queries={next(iter(results.values()))['queries']}  "
        f"cache={CACHE_SIZE}  hot_pairs={HOT_PAIRS}  rounds(best-of)="
        f"{next(iter(results.values()))['rounds']}",
        f"{'graph':>14} {'workers':>8} {'uncached qps':>13} "
        f"{'cached qps':>12} {'speedup':>8} {'hit ratio':>10} "
        f"{'cold ratio':>11} {'shed':>5}",
    ]
    for name, result in results.items():
        for backend, row in result["workers"].items():
            cached = row["cached"]
            lines.append(
                f"{name:>14} {backend:>8} "
                f"{row['uncached']['qps']:>13.1f} "
                f"{cached['qps']:>12.1f} "
                f"{cached['speedup_vs_uncached']:>8.2f} "
                f"{cached['cache_hit_ratio']:>10.3f} "
                f"{cached['cold_hit_ratio']:>11.3f} "
                f"{cached['shed_rate']:>5.2f}"
            )
    return "\n".join(lines)


def format_result(result: dict) -> str:
    lines = [
        "Process-pool serving throughput over a frozen-index snapshot",
        f"graph={result['graph']}  oracle={result['oracle']}  "
        f"queries={result['queries']}  cpu_count={result['cpu_count']}  "
        f"snapshot={result['snapshot_bytes']}B",
        f"{'backend':>12} {'qps':>10} {'p50 us':>9} {'p99 us':>9} "
        f"{'speedup':>8} {'dispatch us':>12} {'pipe B/batch':>13}",
        f"{'sequential':>12} {result['sequential']['qps']:>10.1f} "
        f"{result['sequential']['p50_us']:>9.1f} "
        f"{result['sequential']['p99_us']:>9.1f} {'1.00':>8} "
        f"{'-':>12} {'-':>13}",
    ]
    for backend, row in result["workers"].items():
        lines.append(
            f"{backend:>12} {row['qps']:>10.1f} "
            f"{row['p50_us']:>9.1f} {row['p99_us']:>9.1f} "
            f"{row['speedup_vs_sequential']:>8.2f} "
            f"{row['dispatch_overhead_us']:>12.1f} "
            f"{row['pipe_bytes_per_batch']:>13.1f}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graph, 2 workers only, no files written",
    )
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args()
    result = run(smoke=args.smoke, query_count=args.queries)
    zipf = run_zipf(smoke=args.smoke, query_count=args.queries)
    sharded = run_sharded(smoke=args.smoke, query_count=args.queries)
    if args.smoke:
        # The smoke contract for the caching plane: a skewed workload
        # must actually hit the cache, with zero errors anywhere.
        for graph_result in zipf.values():
            for row in graph_result["workers"].values():
                assert row["cached"]["cache_hit_ratio"] > 0.0, (
                    "zipf smoke run produced no cache hits"
                )
                assert row["cached"]["errors"] == 0
                assert row["uncached"]["errors"] == 0
        # ... and for the sharded plane: bitwise parity already held
        # inside run_sharded; the routing stats must be sane.
        for row in sharded["workers"].values():
            assert row["shards"] >= 2
            assert 0.0 <= row["cross_shard_ratio"] <= 1.0
            assert row["errors"] == 0
        print(
            "smoke run OK (parity held, zipf hit the cache, "
            "sharded stitching matched bitwise)"
        )
        return
    write_result("throughput", format_result(result))
    write_result("throughput_zipf", format_zipf_result(zipf))
    write_result("throughput_sharded", format_sharded_result(sharded))
    entries = {f"{result['oracle']}@{result['graph']}": result}
    for name, graph_result in zipf.items():
        entries[f"{graph_result['oracle']}@{name}-zipf"] = graph_result
    entries[f"{sharded['oracle']}@{sharded['graph']}"] = sharded
    path = merge_json(entries, THROUGHPUT_JSON)
    print(f"wrote {path}")
    print(format_result(result))
    print(format_zipf_result(zipf))
    print(format_sharded_result(sharded))


# ----------------------------------------------------------------------
# pytest entry point (small scale; the standalone main is the real run)
# ----------------------------------------------------------------------
def test_throughput_smoke():
    result = run(smoke=True)
    for plane in RESULT_PLANES:
        row = result["workers"][f"2w-{plane}"]
        assert row["queries"] == result["queries"]
        assert row["qps"] > 0.0
        assert row["result_plane"] == plane
        assert row["pipe_bytes_per_batch"] > 0.0
    # The whole point of the shm plane: answers stop crossing the pipe.
    assert (
        result["workers"]["2w-shm"]["pipe_bytes_per_batch"]
        < result["workers"]["2w-pipe"]["pipe_bytes_per_batch"]
    )


def test_zipf_cache_smoke():
    results = run_zipf(smoke=True)
    row = results["road-smoke"]["workers"]["2w"]
    # Skewed traffic must hit the dispatcher cache — already in the
    # cold round (within-batch dedup), fully in the warm best round —
    # and caching must never introduce errors or sheds.
    assert row["cached"]["cache_hit_ratio"] > 0.0
    assert row["cached"]["cold_hit_ratio"] > 0.0
    assert row["cached"]["errors"] == 0
    assert row["cached"]["shed_rate"] == 0.0
    assert row["uncached"]["errors"] == 0
    assert row["uncached"]["cache_hits"] == 0


def test_sharded_smoke():
    result = run_sharded(smoke=True)
    row = result["workers"]["1w-2shard"]
    # Parity with the unsharded oracle is asserted inside run_sharded
    # (bitwise — the grid's unit weights make float addition exact);
    # here: the routing stats and per-shard memory must be stamped.
    assert row["shards"] == 2
    assert 0.0 <= row["cross_shard_ratio"] <= 1.0
    assert len(row["shard_loads"]) == 2
    assert len(row["per_shard_bytes"]) == 2
    assert all(size > 0 for size in row["per_shard_bytes"].values())
    assert row["manifest_bytes"] > 0
    assert row["errors"] == 0


if __name__ == "__main__":
    main()
