"""Figure 5 — landmark selection methods across N_L on a road graph.

The paper sweeps the number of landmarks on USA and compares SLS
(theirs) against RAND, max-cover, and best-cover in ADISO query time
and landmark-selection preprocessing time.  Expected shape: SLS beats
max-cover in query time at a fraction of its preprocessing cost, beats
best-cover in query time at comparable preprocessing, and beats RAND in
stability.
"""

from __future__ import annotations

import time

from repro.experiments.harness import exact_answers, run_batch
from repro.experiments.report import render_series
from repro.landmarks.selection import (
    best_cover_landmarks,
    max_cover_landmarks,
    random_landmarks,
    sls_landmarks,
)
from repro.oracle.adiso import ADISO
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries

#: Landmark selectors compared in Figure 5.
LANDMARK_METHODS = ("SLS", "RAND", "max-cover", "best-cover")


def _select(method: str, graph, count: int, alpha: float, seed: int):
    if method == "SLS":
        return sls_landmarks(graph, count, seed=seed, alpha=alpha)
    if method == "RAND":
        return random_landmarks(graph, count, seed=seed)
    if method == "max-cover":
        return max_cover_landmarks(graph, count, seed=seed, alpha=alpha)
    if method == "best-cover":
        return best_cover_landmarks(graph, count, seed=seed)
    raise ValueError(f"unknown landmark method {method!r}")


def run_figure5(
    dataset: str = "USA",
    scale: float = 0.3,
    landmark_counts: tuple[int, ...] = (5, 10, 15),
    query_count: int = 15,
    seed: int = 7,
    methods: tuple[str, ...] = LANDMARK_METHODS,
) -> dict[str, object]:
    """Sweep N_L; returns ADISO query time and selection time series."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    queries = generate_queries(graph, query_count, f_gen=5, p=0.0005, seed=seed)
    truth = exact_answers(graph, queries)
    query_series: dict[str, list[float]] = {m: [] for m in methods}
    select_series: dict[str, list[float]] = {m: [] for m in methods}
    for count in landmark_counts:
        for method in methods:
            started = time.perf_counter()
            landmarks = _select(method, graph, count, spec.alpha, seed)
            select_seconds = time.perf_counter() - started
            oracle = ADISO(
                graph,
                tau=spec.tau_adiso,
                theta=spec.theta,
                landmarks=landmarks,
            )
            batch = run_batch(oracle, queries, truth)
            query_series[method].append(batch.query_ms)
            select_series[method].append(select_seconds)
    return {
        "dataset": dataset,
        "landmark_counts": list(landmark_counts),
        "query_ms": query_series,
        "selection_seconds": select_series,
    }


def format_figure5(data: dict[str, object]) -> str:
    """Render the Figure 5 sweep as two text series."""
    counts = data["landmark_counts"]
    parts = [
        render_series(
            f"Figure 5a: ADISO query time (ms) vs N_L ({data['dataset']})",
            "N_L",
            counts,
            data["query_ms"],
        ),
        render_series(
            f"Figure 5b: landmark selection time (s) vs N_L "
            f"({data['dataset']})",
            "N_L",
            counts,
            data["selection_seconds"],
            fmt=lambda v: f"{v:.3f}",
        ),
    ]
    return "\n\n".join(parts)
