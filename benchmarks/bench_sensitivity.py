"""Bench: supplemental parameter sensitivity sweeps.

Covers the paper's supplemental-material tuning experiments (theta,
alpha, affected-node counts) plus the throughput-scaling measurement
behind the no-stall motivation.  Results land in
``results/sensitivity_*.txt``.
"""

from __future__ import annotations

from repro.experiments.sensitivity import (
    format_affected_nodes_sweep,
    format_alpha_sweep,
    format_theta_sweep,
    format_throughput_scaling,
    run_affected_nodes_sweep,
    run_alpha_sweep,
    run_theta_sweep,
    run_throughput_scaling,
)

from bench_util import SCALE, SEED, write_result


def test_theta_sweep(benchmark):
    data = benchmark.pedantic(
        lambda: run_theta_sweep(
            dataset="DBLP", scale=SCALE, query_count=10, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    write_result("sensitivity_theta", format_theta_sweep(data))
    # Larger theta can only shrink the cover (more eliminations allowed).
    sizes = data["cover_sizes"]
    assert sizes == sorted(sizes, reverse=True)


def test_alpha_sweep(benchmark):
    data = benchmark.pedantic(
        lambda: run_alpha_sweep(
            dataset="NY", scale=SCALE, query_count=10, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    write_result("sensitivity_alpha", format_alpha_sweep(data))
    assert all(v > 0 for v in data["query_ms"])


def test_affected_nodes_sweep(benchmark):
    data = benchmark.pedantic(
        lambda: run_affected_nodes_sweep(
            dataset="NY", scale=SCALE, query_count=10, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    write_result("sensitivity_affected", format_affected_nodes_sweep(data))
    affected = data["affected_avg"]
    # More random failures touch more trees, monotonically on average.
    assert affected[0] <= affected[-1]


def test_astar_heuristics_unhelpful_on_social(benchmark):
    """Supplemental claim: "the A* heuristics are not much helpful for
    the social networks" — ADISO does not beat DISO there.

    Small-diameter scale-free graphs give landmark bounds little room:
    most distances are a couple of hops, so the heuristic prunes little
    while costing per-relaxation work.
    """
    from repro.experiments.harness import exact_answers, run_batch
    from repro.oracle.adiso import ADISO
    from repro.oracle.diso import DISO
    from repro.workload.datasets import load_dataset
    from repro.workload.queries import generate_queries

    def measure():
        graph = load_dataset("DBLP", scale=SCALE, seed=SEED)
        queries = generate_queries(
            graph, 12, f_gen=5, p=0.0005, seed=SEED
        )
        truth = exact_answers(graph, queries)
        diso = DISO(graph, tau=3, theta=16.0)
        adiso = ADISO(
            graph, transit=diso.transit, alpha=0.25, seed=SEED
        )
        return (
            run_batch(diso, queries, truth).query_ms,
            run_batch(adiso, queries, truth).query_ms,
        )

    diso_ms, adiso_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        "sensitivity_social_astar",
        "A* heuristics on a scale-free graph (DBLP-like)\n"
        f"DISO  : {diso_ms:.3f} ms/query\n"
        f"ADISO : {adiso_ms:.3f} ms/query\n"
        "(the heuristic does not pay for itself on small-diameter "
        "graphs, as the paper's supplemental reports)",
    )
    # ADISO must not dramatically beat DISO here (the supplemental's
    # point); allow noise either way but catch a reproduction breakage
    # where the social heuristic suddenly dominates.
    assert adiso_ms > diso_ms * 0.8


def test_throughput_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: run_throughput_scaling(
            dataset="NY", scale=SCALE, query_count=30, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    write_result("sensitivity_throughput", format_throughput_scaling(data))
    assert all(qps > 0 for qps in data["queries_per_second"])
