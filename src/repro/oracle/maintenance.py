"""Maintenance strategies for permanent graph updates (supplemental).

Distance sensitivity queries handle *temporary* failures without any
index change; this module handles *permanent* updates — an edge really
being deleted, inserted, or re-weighted — by repairing the DISO/ADISO
index in place.  The strategies follow the paper's supplemental
material's outline, reconstructed from the main text:

* Only the bounded shortest path trees that can see the change are
  rebuilt.  For a deletion or weight increase of ``(a, b)`` these are
  the trees containing ``(a, b)`` as a tree edge (found via the
  inverted tree index).  For an insertion or weight decrease these are
  the trees containing the tail ``a`` as an *expandable* node — found as
  the trees containing any surviving in-edge of ``a``, plus ``a``'s own
  tree when ``a`` is a transit node (a bounded tree can only gain a path
  through ``a`` if it could already reach ``a``).
* Each rebuilt tree refreshes its root's out-edges on the distance graph
  and its entries in the inverted tree index.
* Landmark tables (ADISO) are refreshed per affected landmark, because a
  permanent update invalidates the triangle bounds (unlike temporary
  query failures, which only ever lengthen distances *relative to the
  stored table's graph*).

The transit set is left unchanged: a smaller graph keeps the k-path
cover property under deletions; insertions can degrade the cover's
``k`` guarantee, which affects performance only, never correctness —
Definition 4.1 and Lemma 1 hold for *any* transit set.  Callers doing
bulk insertions should periodically rebuild the oracle.
"""

from __future__ import annotations

from repro.exceptions import EdgeNotFoundError, GraphError
from repro.landmarks.base import LandmarkTable
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra


class OracleMaintainer:
    """In-place maintenance of a DISO (or ADISO) index under updates.

    Parameters
    ----------
    oracle:
        The oracle to maintain.  Its ``graph`` is mutated by the update
        operations; for ADISO the landmark table is refreshed as well.

    Examples
    --------
    >>> # doctest setup omitted; see examples/maintenance_demo.py
    """

    def __init__(self, oracle: DISO) -> None:
        self.oracle = oracle
        self.rebuilt_trees = 0
        self.landmark_refreshes = 0

    # ------------------------------------------------------------------
    # Public update operations
    # ------------------------------------------------------------------
    def delete_edge(self, tail: int, head: int) -> None:
        """Permanently delete edge ``(tail, head)`` and repair the index.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        graph = self.oracle.graph
        if not graph.has_edge(tail, head):
            raise EdgeNotFoundError(tail, head)
        self._drop_derived_caches()
        affected = self.oracle.inverted_index.trees_containing((tail, head))
        graph.remove_edge(tail, head)
        self._rebuild_trees(affected)
        self._refresh_landmarks()

    def insert_edge(self, tail: int, head: int, weight: float) -> None:
        """Permanently insert edge ``(tail, head)`` and repair the index.

        Raises
        ------
        GraphError
            If the edge already exists (use :meth:`change_weight`).
        """
        graph = self.oracle.graph
        if graph.has_edge(tail, head):
            raise GraphError(
                f"edge ({tail}, {head}) already exists; use change_weight"
            )
        self._drop_derived_caches()
        graph.add_edge(tail, head, weight)
        graph.add_node(tail)
        graph.add_node(head)
        affected = self._trees_seeing_tail(tail)
        self._rebuild_trees(affected)
        self._refresh_landmarks()

    def change_weight(self, tail: int, head: int, weight: float) -> None:
        """Permanently change the weight of ``(tail, head)`` and repair.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        graph = self.oracle.graph
        old = graph.weight(tail, head)
        self._drop_derived_caches()
        graph.set_weight(tail, head, weight)
        if weight > old:
            # Increase: only trees whose shortest paths used the edge.
            affected = self.oracle.inverted_index.trees_containing(
                (tail, head)
            )
        else:
            # Decrease: any tree that can expand through the tail.
            affected = self._trees_seeing_tail(tail)
        self._rebuild_trees(affected)
        self._refresh_landmarks()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _trees_seeing_tail(self, tail: int) -> frozenset[int]:
        """Roots whose bounded region contains ``tail`` expandably.

        A bounded tree can route new paths through ``tail`` only when it
        already reaches ``tail`` as a non-boundary node: either ``tail``
        is the root itself, or some tree edge ends at ``tail`` — looked
        up as the trees containing any in-edge of ``tail``.  Boundary
        transit leaves are never expanded, so their trees are unaffected.
        """
        oracle = self.oracle
        roots: set[int] = set()
        if tail in oracle.transit:
            roots.add(tail)
        graph = oracle.graph
        index = oracle.inverted_index
        if graph.has_node(tail) and tail not in oracle.transit:
            for pred in graph.predecessors(tail):
                roots.update(index.trees_containing((pred, tail)))
        return frozenset(roots)

    def _drop_derived_caches(self) -> None:
        """Invalidate per-endpoint caches derived from the old graph.

        CachingDISO (and any subclass exposing ``invalidate_cache``)
        holds bounded-search results for the pre-update graph; every
        permanent update drops them, whether or not any tree changed.
        """
        invalidate = getattr(self.oracle, "invalidate_cache", None)
        if callable(invalidate):
            invalidate()

    def _rebuild_trees(self, roots: frozenset[int]) -> None:
        """Rebuild each tree, its overlay out-edges, and index entries."""
        oracle = self.oracle
        graph = oracle.graph
        overlay = oracle.distance_graph.graph
        for root in roots:
            old_tree = oracle.trees.tree(root)
            oracle.inverted_index.remove_tree(root, old_tree)
            result = bounded_dijkstra(graph, root, oracle.transit, None, "out")
            new_tree = result.to_tree()
            oracle.trees.replace_tree(root, new_tree)
            oracle.inverted_index.add_tree(root, new_tree)
            # Refresh the overlay out-edges of this root.
            for head in list(overlay.successors(root)):
                overlay.remove_edge(root, head)
            for head, distance in result.access.items():
                if head != root:
                    overlay.add_edge(root, head, distance)
            self.rebuilt_trees += 1

    def _refresh_landmarks(self) -> None:
        """Recompute the landmark table for ADISO-family oracles.

        Permanent updates can both lengthen and shorten true distances,
        so stale triangle bounds would no longer be admissible.  The
        simple strategy (full re-run of the landmark Dijkstras) keeps
        query answers exact; incremental repair is possible but not
        needed at library scale.
        """
        oracle = self.oracle
        if isinstance(oracle, ADISO):
            oracle.landmarks = LandmarkTable(
                oracle.graph, oracle.landmarks.landmarks
            )
            self.landmark_refreshes += 1
