"""Smoke tests for the supplemental maintenance experiment harness."""

from __future__ import annotations

from repro.experiments.maintenance_exp import (
    format_maintenance_experiment,
    run_maintenance_experiment,
)


class TestMaintenanceExperiment:
    def test_runs_and_formats(self):
        data = run_maintenance_experiment(
            dataset="NY",
            scale=0.25,
            operations_per_kind=2,
            query_count=4,
            seed=7,
        )
        assert set(data["update_ms"]) == {
            "delete",
            "insert",
            "increase",
            "decrease",
        }
        assert all(ms >= 0 for ms in data["update_ms"].values())
        assert data["rebuilt_trees"] >= 0
        text = format_maintenance_experiment(data)
        assert "maintenance update cost" in text
        assert "fresh rebuild" in text

    def test_maintained_index_stays_exact(self):
        data = run_maintenance_experiment(
            dataset="NY",
            scale=0.25,
            operations_per_kind=3,
            query_count=5,
            seed=11,
        )
        assert data["maintained_error_pct"] < 1e-6
